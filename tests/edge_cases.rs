//! Degenerate-configuration integration tests: single tiles, single
//! processors, unit tiles, tiny spaces — the framework must stay correct at
//! every boundary of its parameter space.

use std::sync::Arc;
use tilecc::matrices;
use tilecc_cluster::MachineModel;
use tilecc_linalg::IMat;
use tilecc_loopnest::{kernels, Algorithm, Kernel, LoopNest};
use tilecc_parcode::{execute, ExecMode, ParallelPlan};
use tilecc_polytope::Polyhedron;
use tilecc_tiling::TilingTransform;

fn verify(alg: Algorithm, t: TilingTransform, m: Option<usize>) -> usize {
    let seq = alg.execute_sequential();
    let plan = Arc::new(ParallelPlan::new(alg, t, m).unwrap());
    let procs = plan.num_procs();
    let res = execute(plan, MachineModel::fast_ethernet_p3(), ExecMode::Full);
    assert_eq!(seq.diff(res.data.as_ref().unwrap()), None);
    procs
}

#[test]
fn one_tile_covers_the_whole_space() {
    // Tile larger than the space: exactly one tile, one processor, no
    // communication.
    let alg = kernels::adi(4, 5);
    let t = TilingTransform::rectangular(&[100, 100, 100]).unwrap();
    let procs = verify(alg, t, Some(0));
    assert_eq!(procs, 1);
}

#[test]
fn single_processor_chain() {
    // Grid dims fully covered by one tile each; only the chain dimension is
    // split: one processor, many tiles, all dependencies intra-chain.
    let alg = kernels::adi(12, 5);
    let t = TilingTransform::rectangular(&[2, 100, 100]).unwrap();
    let procs = verify(alg, t, Some(0));
    assert_eq!(procs, 1);
}

#[test]
fn unit_tiles_maximize_communication() {
    // v = (1,1,1): every iteration is its own tile; heavy messaging.
    let alg = kernels::adi(3, 4);
    let t = TilingTransform::rectangular(&[1, 1, 1]).unwrap();
    let procs = verify(alg, t, Some(0));
    assert_eq!(procs, 16);
}

#[test]
fn single_point_space() {
    struct One;
    impl Kernel for One {
        fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
            reads[0] + 1.0
        }
        fn initial(&self, _j: &[i64]) -> f64 {
            41.0
        }
    }
    let space = Polyhedron::from_box(&[5, 5], &[5, 5]);
    let deps = IMat::from_rows(&[&[1], &[0]]);
    let alg = Algorithm::new("one", LoopNest::new(space, deps), Arc::new(One));
    let seq = alg.execute_sequential();
    assert_eq!(seq.get(&[5, 5]), Some(42.0));
    let t = TilingTransform::rectangular(&[3, 3]).unwrap();
    let plan = Arc::new(ParallelPlan::new(alg, t, Some(0)).unwrap());
    assert_eq!(plan.num_procs(), 1);
    let res = execute(plan, MachineModel::fast_ethernet_p3(), ExecMode::Full);
    assert_eq!(res.total_iterations, 1);
    assert_eq!(res.data.unwrap().get(&[5, 5]), Some(42.0));
}

#[test]
fn chain_of_length_one_per_processor() {
    // The mapping dimension has exactly one tile: the "chains" degenerate to
    // single tiles and all communication is inter-processor.
    let alg = kernels::adi(2, 8);
    let t = TilingTransform::rectangular(&[4, 2, 2]).unwrap();
    // i, j ∈ [1, 8] with edge 2 ⇒ tile indices 0..=4 (5 per dim, the first
    // and last partially filled).
    let procs = verify(alg, t, Some(0));
    assert_eq!(procs, 25);
}

#[test]
fn asymmetric_extreme_aspect_ratio_tiles() {
    let alg = kernels::sor_skewed(4, 10, 1.1);
    for sizes in [[1, 30, 2], [8, 1, 40], [40, 40, 1]] {
        let t = TilingTransform::rectangular(&sizes).unwrap();
        verify(alg.clone(), t, None);
    }
}

#[test]
fn zero_comm_model_single_tile_speedup_is_one() {
    let alg = kernels::adi(4, 5);
    let t = TilingTransform::rectangular(&[100, 100, 100]).unwrap();
    let plan = Arc::new(ParallelPlan::new(alg, t, Some(0)).unwrap());
    let model = MachineModel::zero_comm(1e-6);
    let res = execute(plan, model, ExecMode::TimingOnly);
    let speedup = res.speedup(&model);
    assert!((speedup - 1.0).abs() < 1e-9, "speedup = {speedup}");
}

#[test]
fn non_rectangular_unit_determinant_tiles() {
    // A cone tiling with tile size 1 — every lattice cell is one iteration.
    let alg = kernels::adi(3, 4);
    let t = TilingTransform::new(matrices::adi_nr3(1, 1, 1)).unwrap();
    assert_eq!(t.tile_size(), 1);
    verify(alg, t, Some(0));
}
