//! Integration checks of the paper's *scheduling* claims (§4): with equal
//! tile size, communication volume and processor count, tilings drawn from
//! the tiling cone complete earlier than rectangular ones, and the
//! simulated makespans follow the analytic wavefront orderings.

use tilecc::{measure, Variant, Workload};
use tilecc_cluster::MachineModel;

fn model() -> MachineModel {
    MachineModel::fast_ethernet_p3()
}

#[test]
fn sor_non_rect_beats_rect_across_tile_sizes() {
    let w = Workload::Sor { m: 40, n: 60 };
    for z in [6, 10, 16, 26] {
        let r = measure(w, Variant::Rect, (11, 26, z), model());
        let nr = measure(w, Variant::NonRect, (11, 26, z), model());
        assert_eq!(r.procs, nr.procs, "controlled comparison needs equal procs");
        assert!(
            nr.makespan < r.makespan,
            "z={z}: nr {:.5}s not faster than rect {:.5}s",
            nr.makespan,
            r.makespan
        );
        assert!(nr.predicted_steps < r.predicted_steps);
    }
}

#[test]
fn jacobi_non_rect_beats_rect_across_tile_sizes() {
    let w = Workload::Jacobi {
        t: 24,
        i: 40,
        j: 40,
    };
    for x in [3, 6, 12] {
        let r = measure(w, Variant::Rect, (x, 16, 16), model());
        let nr = measure(w, Variant::NonRect, (x, 16, 16), model());
        assert_eq!(r.procs, nr.procs);
        assert!(
            nr.makespan <= r.makespan,
            "x={x}: nr {:.5}s slower than rect {:.5}s",
            nr.makespan,
            r.makespan
        );
    }
}

#[test]
fn adi_cone_surface_ordering() {
    // t_nr3 < t_nr1 ≈ t_nr2 < t_r (paper §4.3–4.4).
    let w = Workload::Adi { t: 40, n: 64 };
    for x in [4, 8] {
        let pts: Vec<_> = [
            Variant::Rect,
            Variant::AdiNr1,
            Variant::AdiNr2,
            Variant::AdiNr3,
        ]
        .into_iter()
        .map(|v| measure(w, v, (x, 17, 17), model()))
        .collect();
        let (r, n1, n2, n3) = (&pts[0], &pts[1], &pts[2], &pts[3]);
        assert!(n3.makespan < r.makespan, "x={x}: nr3 not faster than rect");
        assert!(n1.makespan < r.makespan && n2.makespan < r.makespan);
        assert!(n3.makespan <= n1.makespan.min(n2.makespan) + 1e-12);
        // nr1 and nr2 are symmetric with equal y and z factors.
        let rel = (n1.makespan - n2.makespan).abs() / n1.makespan;
        assert!(
            rel < 0.05,
            "nr1 and nr2 should be near-equal, rel diff {rel}"
        );
    }
}

#[test]
fn speedup_bounded_by_processor_count_without_comm_cost() {
    let w = Workload::Adi { t: 24, n: 32 };
    let m = MachineModel::zero_comm(1e-6);
    for v in [Variant::Rect, Variant::AdiNr3] {
        let p = measure(w, v, (4, 9, 9), m);
        assert!(
            p.speedup <= p.procs as f64 + 1e-9,
            "{v:?}: {} > {}",
            p.speedup,
            p.procs
        );
        assert!(p.speedup > 1.0, "{v:?} shows no parallelism");
    }
}

#[test]
fn controlled_comparison_holds_tile_size_and_volume_equal() {
    // The paper's §4.1 argument: common factors ⇒ equal tile sizes; with the
    // first two rows shared (SOR), communication volume and processor count
    // match, so measured differences are purely scheduling.
    let w = Workload::Sor { m: 40, n: 60 };
    let r = measure(w, Variant::Rect, (11, 26, 8), model());
    let nr = measure(w, Variant::NonRect, (11, 26, 8), model());
    assert_eq!(r.tile_size, nr.tile_size);
    assert_eq!(r.procs, nr.procs);
    assert_eq!(r.sequential_time, nr.sequential_time);
    // Communication volume matches closely (boundary tiles may differ).
    let rel = (r.bytes as f64 - nr.bytes as f64).abs() / r.bytes as f64;
    assert!(
        rel < 0.15,
        "communication volumes diverge: {} vs {}",
        r.bytes,
        nr.bytes
    );
}

#[test]
fn makespan_tracks_predicted_steps_within_a_sweep() {
    // Within one variant, more wavefront steps (finer chain tiles) should
    // not reduce the startup-dominated part: check rank correlation between
    // predicted steps and makespan across a coarse-to-fine sweep under a
    // latency-dominated model (where the wavefront term dominates).
    let w = Workload::Sor { m: 40, n: 60 };
    let lat_model = MachineModel {
        compute_per_iter: 1e-9,
        send_overhead: 200e-6,
        recv_overhead: 200e-6,
        wire_latency: 200e-6,
        per_byte: 0.0,
    };
    let mut pts: Vec<_> = [4, 8, 16, 26]
        .into_iter()
        .map(|z| measure(w, Variant::Rect, (11, 26, z), lat_model))
        .collect();
    pts.sort_by(|a, b| a.predicted_steps.total_cmp(&b.predicted_steps));
    for pair in pts.windows(2) {
        assert!(
            pair[0].makespan <= pair[1].makespan * 1.05,
            "makespan should grow with wavefront steps under latency domination"
        );
    }
}
