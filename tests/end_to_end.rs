//! End-to-end integration: for every kernel × tiling × space combination,
//! the generated data-parallel program must produce *bitwise* the same data
//! space as the sequential reference execution, conserve the iteration
//! count, and locate every iteration consistently (`loc`/`loc⁻¹`).

use std::sync::Arc;
use tilecc::{matrices, Pipeline};
use tilecc_cluster::MachineModel;
use tilecc_linalg::{IMat, RMat, Rational};
use tilecc_loopnest::{kernels, Algorithm, Kernel, LoopNest};
use tilecc_parcode::{execute, ExecMode, ParallelPlan};
use tilecc_polytope::{Constraint, Polyhedron};
use tilecc_tiling::TilingTransform;

fn verify(alg: Algorithm, h: RMat, m: Option<usize>) {
    let name = alg.name.clone();
    let seq = alg.execute_sequential();
    let plan = Arc::new(ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), m).unwrap());
    let total = plan.total_iterations();
    let res = execute(
        plan.clone(),
        MachineModel::fast_ethernet_p3(),
        ExecMode::Full,
    );
    assert_eq!(
        res.total_iterations as usize, total,
        "{name}: iteration conservation"
    );
    let par = res.data.expect("full mode returns data");
    assert_eq!(seq.diff(&par), None, "{name}: parallel result differs");
    // Every iteration has a unique, invertible storage location.
    for j in plan.tiled.space_bounds().points() {
        let (pid, addr) = plan.loc(&j);
        assert_eq!(plan.loc_inv(&pid, &addr), j, "{name}: loc round trip");
    }
}

#[test]
fn sor_all_tilings() {
    for (h, m) in [
        (matrices::rect(2, 3, 4), Some(2)),
        (matrices::sor_nr(2, 3, 4), Some(2)),
        (matrices::sor_nr(3, 3, 3), Some(2)),
        (matrices::rect(4, 4, 2), None),
    ] {
        verify(kernels::sor_skewed(5, 7, 1.3), h, m);
    }
}

#[test]
fn jacobi_all_tilings() {
    for (h, m) in [
        (matrices::rect(2, 4, 4), Some(0)),
        (matrices::jacobi_nr(2, 4, 4), Some(0)),
        (matrices::jacobi_nr(3, 6, 4), Some(0)),
    ] {
        verify(kernels::jacobi_skewed(5, 8, 8), h, m);
    }
}

#[test]
fn adi_all_four_tilings() {
    for h in [
        matrices::rect(2, 4, 4),
        matrices::adi_nr1(2, 4, 4),
        matrices::adi_nr2(2, 4, 4),
        matrices::adi_nr3(2, 4, 4),
    ] {
        verify(kernels::adi(6, 9), h, Some(0));
    }
}

#[test]
fn mapping_along_every_dimension_is_correct() {
    for m in 0..3 {
        verify(kernels::adi(5, 8), matrices::rect(2, 3, 3), Some(m));
        verify(
            kernels::sor_skewed(4, 6, 1.1),
            matrices::sor_nr(2, 3, 3),
            Some(m),
        );
    }
}

/// A tiling whose `H'` is non-unimodular: the TTIS lattice is sparse and
/// the HNF strides are non-trivial (c = (1,2,1) here).
#[test]
fn non_unit_stride_lattice_end_to_end() {
    let h = RMat::from_fractions(&[
        &[(1, 4), (1, 8), (0, 1)],
        &[(0, 1), (1, 4), (0, 1)],
        &[(0, 1), (0, 1), (1, 4)],
    ]);
    let t = TilingTransform::new(h.clone()).unwrap();
    assert!(
        t.strides().iter().any(|&c| c > 1),
        "strides = {:?}",
        t.strides()
    );
    verify(kernels::adi(6, 8), h, Some(0));
}

/// Dependence vectors longer than a tile edge produce tile-dependence
/// components of 2 — exercising multi-hop receives and the deep halo.
#[test]
fn long_dependencies_span_multiple_tiles() {
    struct LongDep;
    impl Kernel for LongDep {
        fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
            0.5 * reads[0] + 0.25 * reads[1] + 1.0
        }
        fn initial(&self, j: &[i64]) -> f64 {
            (j[0] * 3 + j[1]) as f64 * 0.01
        }
    }
    let space = Polyhedron::from_box(&[0, 0], &[14, 14]);
    // d = (3,0) and (1,2): tile edges 2×3 ⇒ d^S components up to 2.
    let deps = IMat::from_rows(&[&[3, 1], &[0, 2]]);
    let alg = Algorithm::new("longdep", LoopNest::new(space, deps), Arc::new(LongDep));
    verify(alg, matrices_2d(2, 3), Some(1));
    // Also with the long direction mapped.
    let alg = Algorithm::new(
        "longdep2",
        LoopNest::new(
            Polyhedron::from_box(&[0, 0], &[14, 14]),
            IMat::from_rows(&[&[3, 1], &[0, 2]]),
        ),
        Arc::new(LongDep),
    );
    verify(alg, matrices_2d(2, 3), Some(0));
}

fn matrices_2d(x: i64, y: i64) -> RMat {
    RMat::from_fn(2, 2, |i, j| {
        if i == j {
            Rational::new(1, [x, y][i] as i128)
        } else {
            Rational::ZERO
        }
    })
}

/// General convex (non-box) iteration space: a clipped prism.
#[test]
fn general_convex_space_end_to_end() {
    struct Sum;
    impl Kernel for Sum {
        fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
            reads[0] + reads[1] + reads[2] + 1.0
        }
        fn initial(&self, _j: &[i64]) -> f64 {
            0.25
        }
    }
    let mut space = Polyhedron::from_box(&[1, 1, 1], &[10, 12, 12]);
    space.add(Constraint::new(vec![0, -1, -1], 18)); // i + j <= 18
    space.add(Constraint::new(vec![-1, 1, 0], 8)); // i <= t + 8
    let deps = IMat::from_rows(&[&[1, 1, 1], &[0, 1, 0], &[0, 0, 1]]);
    let alg = Algorithm::new("prism", LoopNest::new(space, deps), Arc::new(Sum));
    verify(alg.clone(), matrices::rect(3, 4, 4), Some(0));
    verify(alg, matrices::adi_nr3(3, 4, 4), Some(0));
}

/// Timing-only and full modes must agree on all virtual-time quantities.
#[test]
fn timing_only_equals_full_timing() {
    let alg = kernels::jacobi_skewed(5, 8, 8);
    let plan = Arc::new(
        ParallelPlan::new(
            alg,
            TilingTransform::new(matrices::jacobi_nr(2, 4, 4)).unwrap(),
            Some(0),
        )
        .unwrap(),
    );
    let model = MachineModel::fast_ethernet_p3();
    let full = execute(plan.clone(), model, ExecMode::Full);
    let fast = execute(plan, model, ExecMode::TimingOnly);
    assert_eq!(full.makespan(), fast.makespan());
    assert_eq!(full.total_iterations, fast.total_iterations);
    assert_eq!(full.report.total_messages(), fast.report.total_messages());
    assert_eq!(full.report.total_bytes(), fast.report.total_bytes());
    for (a, b) in full.report.local_times.iter().zip(&fast.report.local_times) {
        assert_eq!(a, b);
    }
}

/// The same plan must produce identical results and virtual times across
/// repeated runs (functional determinism of the threaded engine).
#[test]
fn repeated_runs_are_deterministic() {
    let mk = || {
        let alg = kernels::sor_skewed(4, 6, 1.1);
        Pipeline::compile(alg, matrices::sor_nr(2, 3, 3), Some(2)).unwrap()
    };
    let model = MachineModel::fast_ethernet_p3();
    let (s1, d1) = mk().run_verified(model);
    let (s2, d2) = mk().run_verified(model);
    assert_eq!(d1.diff(&d2), None);
    assert_eq!(s1.makespan, s2.makespan);
    assert_eq!(s1.bytes, s2.bytes);
}

/// 2-D nest (heat-1D): the framework is not 3-D specific.
#[test]
fn heat1d_two_dimensional_end_to_end() {
    for m in [Some(0), Some(1), None] {
        let alg = kernels::heat1d_skewed(8, 12, 0.2);
        let seq = alg.execute_sequential();
        let plan = Arc::new(
            ParallelPlan::new(alg, TilingTransform::rectangular(&[3, 4]).unwrap(), m).unwrap(),
        );
        let res = execute(plan, MachineModel::fast_ethernet_p3(), ExecMode::Full);
        assert_eq!(seq.diff(res.data.as_ref().unwrap()), None);
    }
    // Non-rectangular 2-D tiling with the second row parallel to the
    // heat-1D tiling-cone ray (2,−1).
    let alg = kernels::heat1d_skewed(8, 12, 0.2);
    let seq = alg.execute_sequential();
    let h = RMat::from_fractions(&[&[(1, 3), (0, 1)], &[(1, 4), (-1, 8)]]);
    let plan = Arc::new(ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), Some(1)).unwrap());
    let res = execute(plan, MachineModel::fast_ethernet_p3(), ExecMode::Full);
    assert_eq!(seq.diff(res.data.as_ref().unwrap()), None);
}

/// 4-D nest: rectangular and skewed tilings over a 4-D wavefront.
#[test]
fn wave4d_four_dimensional_end_to_end() {
    let alg = kernels::wave4d(4, 5);
    let seq = alg.execute_sequential();
    for h in [
        RMat::from_fractions(&[
            &[(1, 2), (0, 1), (0, 1), (0, 1)],
            &[(0, 1), (1, 3), (0, 1), (0, 1)],
            &[(0, 1), (0, 1), (1, 3), (0, 1)],
            &[(0, 1), (0, 1), (0, 1), (1, 3)],
        ]),
        // First row on the 4-D tiling cone: (1,−1,−1,−1)/2.
        RMat::from_fractions(&[
            &[(1, 2), (-1, 2), (-1, 2), (-1, 2)],
            &[(0, 1), (1, 3), (0, 1), (0, 1)],
            &[(0, 1), (0, 1), (1, 3), (0, 1)],
            &[(0, 1), (0, 1), (0, 1), (1, 3)],
        ]),
    ] {
        let plan = Arc::new(
            ParallelPlan::new(alg.clone(), TilingTransform::new(h).unwrap(), Some(0)).unwrap(),
        );
        let total = plan.total_iterations();
        let res = execute(plan, MachineModel::fast_ethernet_p3(), ExecMode::Full);
        assert_eq!(res.total_iterations as usize, total);
        assert_eq!(seq.diff(res.data.as_ref().unwrap()), None);
    }
}

/// The faithful Table-3 ADI (two written arrays X and B plus the read-only
/// coefficient array A) through the full parallel pipeline: the paper calls
/// its single-array model "only a notational restriction" — this is the
/// multi-array case, bitwise verified.
#[test]
fn adi_paper_multi_array_end_to_end() {
    for h in [
        matrices::rect(2, 4, 4),
        matrices::adi_nr3(2, 4, 4),
        matrices::adi_nr1(3, 3, 4),
    ] {
        let alg = kernels::adi_paper(6, 8);
        assert_eq!(alg.width(), 2);
        let seq = alg.execute_sequential();
        let plan =
            Arc::new(ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), Some(0)).unwrap());
        let res = execute(
            plan.clone(),
            MachineModel::fast_ethernet_p3(),
            ExecMode::Full,
        );
        assert_eq!(
            seq.diff(res.data.as_ref().unwrap()),
            None,
            "multi-array mismatch"
        );
        // Message sizes double with the component count.
        assert!(res.report.total_bytes() > 0);
        // Tiled sequential reordering also matches.
        let tiled_seq = tilecc_parcode::execute_tiled_sequential(&plan);
        assert_eq!(seq.diff(&tiled_seq), None);
    }
}

/// Regression: non-monotone message consumption. With tile-dependence
/// m-components of {0, 2} (here `d' = (6,1,0)` against tile edge 3), the
/// minimum-successor rule consumes a sender's messages out of send order
/// (e.g. preds 9, 11, 10, 12), so FIFO channels alone mis-pair messages —
/// MPI-style tag matching in the substrate restores correctness. Found by
/// randomized property testing.
#[test]
fn non_monotone_minsucc_needs_message_tags() {
    struct K2;
    impl Kernel for K2 {
        fn compute(&self, j: &[i64], reads: &[f64]) -> f64 {
            let mut acc = 0.125 * (j[0] % 5) as f64;
            for (i, r) in reads.iter().enumerate() {
                acc += (0.2 + 0.1 * i as f64) * r;
            }
            acc
        }
        fn initial(&self, j: &[i64]) -> f64 {
            ((j.iter().sum::<i64>()).rem_euclid(97)) as f64 / 97.0
        }
    }
    let mut space = Polyhedron::from_box(&[1, 1, 1], &[10, 10, 12]);
    space.add(Constraint::new(vec![0, 1, 1], -5));
    space.add(Constraint::new(vec![1, 0, 1], -9));
    // Columns: (2,0,1), (0,2,1), (0,2,0), (1,2,0).
    let deps = IMat::from_rows(&[&[2, 0, 0, 1], &[0, 2, 2, 2], &[1, 1, 0, 0]]);
    // Tiling-cone rows (−2,1,4), (0,0,1), (1,0,0) scaled by 1/3: the first
    // transformed dependence component reaches 6 = 2 tile edges.
    let h = RMat::from_fractions(&[
        &[(-2, 3), (1, 3), (4, 3)],
        &[(0, 1), (0, 1), (1, 3)],
        &[(1, 3), (0, 1), (0, 1)],
    ]);
    let alg = Algorithm::new("tagcase", LoopNest::new(space, deps), Arc::new(K2));
    let seq = alg.execute_sequential();
    let plan = Arc::new(ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), Some(0)).unwrap());
    assert!(
        plan.comm.tile_deps.iter().any(|d| d[0] >= 2),
        "precondition: a tile dependence must hop two tiles along m"
    );
    let res = execute(plan, MachineModel::fast_ethernet_p3(), ExecMode::Full);
    assert_eq!(seq.diff(res.data.as_ref().unwrap()), None);
}
