//! Property-based end-to-end testing: random convex iteration spaces,
//! random dependence sets, and random legal tilings (rows scaled from the
//! computed tiling cone) must all yield parallel executions that match the
//! sequential reference bitwise.

use proptest::prelude::*;
use std::sync::Arc;
use tilecc_cluster::MachineModel;
use tilecc_linalg::{IMat, RMat, Rational};
use tilecc_loopnest::{Algorithm, Kernel, LoopNest};
use tilecc_parcode::{execute, execute_tiled_sequential, ExecMode, ParallelPlan};
use tilecc_polytope::{Constraint, Polyhedron};
use tilecc_tiling::{tiling_cone_rays, TilingTransform};

/// Generic stencil whose coefficients depend on the dependence count.
struct GenericStencil {
    weights: Vec<f64>,
}

impl Kernel for GenericStencil {
    fn compute(&self, j: &[i64], reads: &[f64]) -> f64 {
        let mut acc = 0.125 * (j[0] % 5) as f64;
        for (w, r) in self.weights.iter().zip(reads) {
            acc += w * r;
        }
        acc
    }
    fn initial(&self, j: &[i64]) -> f64 {
        let mut h: i64 = 23;
        for &v in j {
            h = h.wrapping_mul(37).wrapping_add(v);
        }
        (h.rem_euclid(997)) as f64 / 997.0
    }
}

/// Random 2-D or 3-D dependence matrices with lexicographically positive,
/// small columns (first entry ≥ 0 keeps a tiling cone non-degenerate).
fn deps_strategy(n: usize) -> impl Strategy<Value = IMat> {
    let col = proptest::collection::vec(0i64..=2, n).prop_filter("lex positive", |c| {
        tilecc_linalg::vecops::is_lex_positive(c)
    });
    proptest::collection::vec(col, 2..=4).prop_map(move |cols| {
        let mut m = IMat::zeros(n, cols.len());
        for (q, c) in cols.iter().enumerate() {
            for k in 0..n {
                m[(k, q)] = c[k];
            }
        }
        m
    })
}

/// A random bounded convex space: a box plus up to two extra half-spaces
/// guaranteed to keep a witness region non-empty.
fn space_strategy(n: usize) -> impl Strategy<Value = Polyhedron> {
    let extents = proptest::collection::vec(5i64..=12, n);
    let cuts = proptest::collection::vec(
        (proptest::collection::vec(-1i64..=1, n), 0i64..=10),
        0..=2,
    );
    (extents, cuts).prop_map(move |(ext, cuts)| {
        let lo = vec![1i64; n];
        let hi: Vec<i64> = ext.clone();
        let mut p = Polyhedron::from_box(&lo, &hi);
        for (coeffs, slack) in cuts {
            if coeffs.iter().all(|&c| c == 0) {
                continue;
            }
            // a·x + b >= 0 with b chosen so the box midpoint satisfies it.
            let mid_val: i64 = coeffs
                .iter()
                .zip(&ext)
                .map(|(&c, &e)| c * ((1 + e) / 2))
                .sum();
            p.add(Constraint::new(coeffs, -mid_val + slack));
        }
        p
    })
}

/// Build a legal tiling for `deps`: pick rows from the tiling cone (extreme
/// rays, falling back to the all-positive combination) scaled by random
/// factors; reject if singular or with non-integral sides.
fn tiling_for(deps: &IMat, factors: &[i64], use_cone: bool) -> Option<TilingTransform> {
    let n = deps.rows();
    let h = if use_cone {
        let rays = tiling_cone_rays(deps);
        if rays.len() < n {
            return None;
        }
        // Pick n rays forming a non-singular matrix.
        let mut chosen: Vec<Vec<i64>> = Vec::new();
        for ray in &rays {
            let mut candidate = chosen.clone();
            candidate.push(ray.clone());
            let rank_ok = {
                let mut m = IMat::zeros(candidate.len(), n);
                for (i, r) in candidate.iter().enumerate() {
                    for k in 0..n {
                        m[(i, k)] = r[k];
                    }
                }
                // Full row rank test via determinant of a square completion.
                candidate.len() < n || {
                    let mut sq = IMat::zeros(n, n);
                    for (i, r) in candidate.iter().enumerate() {
                        for k in 0..n {
                            sq[(i, k)] = r[k];
                        }
                    }
                    sq.det() != 0
                }
            };
            if rank_ok {
                chosen = candidate;
            }
            if chosen.len() == n {
                break;
            }
        }
        if chosen.len() < n {
            return None;
        }
        RMat::from_fn(n, n, |i, j| {
            Rational::new(chosen[i][j] as i128, factors[i] as i128)
        })
    } else {
        RMat::from_fn(n, n, |i, j| {
            if i == j {
                Rational::new(1, factors[i] as i128)
            } else {
                Rational::ZERO
            }
        })
    };
    TilingTransform::new(h).ok().filter(|t| t.validate_for(deps).is_ok())
}

fn run_case(space: Polyhedron, deps: IMat, factors: Vec<i64>, use_cone: bool, m: usize) {
    let n = deps.rows();
    let Some(transform) = tiling_for(&deps, &factors, use_cone) else {
        return; // rejected tiling shape; nothing to test
    };
    let q = deps.cols();
    let weights: Vec<f64> = (0..q).map(|i| 0.2 + 0.1 * i as f64).collect();
    let alg = Algorithm::new(
        "prop",
        LoopNest::new(space, deps),
        Arc::new(GenericStencil { weights }),
    );
    let seq = alg.execute_sequential();
    let plan = match ParallelPlan::new(alg, transform, Some(m % n)) {
        Ok(p) => Arc::new(p),
        Err(_) => return,
    };
    // Tiled sequential reordering must match.
    let tiled_seq = execute_tiled_sequential(&plan);
    assert_eq!(seq.diff(&tiled_seq), None, "tiled sequential mismatch");
    // Parallel execution must match bitwise and conserve iterations.
    let total = plan.total_iterations();
    let res = execute(plan, MachineModel::fast_ethernet_p3(), ExecMode::Full);
    assert_eq!(res.total_iterations as usize, total, "iteration conservation");
    assert_eq!(seq.diff(res.data.as_ref().unwrap()), None, "parallel mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_2d_rectangular_tilings(
        space in space_strategy(2),
        deps in deps_strategy(2),
        factors in proptest::collection::vec(2i64..=5, 2),
        m in 0usize..2,
    ) {
        run_case(space, deps, factors, false, m);
    }

    #[test]
    fn random_3d_rectangular_tilings(
        space in space_strategy(3),
        deps in deps_strategy(3),
        factors in proptest::collection::vec(2i64..=4, 3),
        m in 0usize..3,
    ) {
        run_case(space, deps, factors, false, m);
    }

    #[test]
    fn random_3d_cone_tilings(
        space in space_strategy(3),
        deps in deps_strategy(3),
        factors in proptest::collection::vec(2i64..=4, 3),
        m in 0usize..3,
    ) {
        run_case(space, deps, factors, true, m);
    }
}
