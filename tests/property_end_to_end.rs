//! Property-based end-to-end testing: random convex iteration spaces,
//! random dependence sets, and random legal tilings (rows scaled from the
//! computed tiling cone) must all yield parallel executions that match the
//! sequential reference bitwise.
//!
//! Cases are generated with a seeded xorshift generator, so every run
//! exercises the same inputs — a failure message's `case` index is enough to
//! reproduce it exactly.

use std::sync::Arc;
use tilecc_cluster::MachineModel;
use tilecc_linalg::{IMat, RMat, Rational};
use tilecc_loopnest::{Algorithm, Kernel, LoopNest};
use tilecc_parcode::{execute, execute_tiled_sequential, ExecMode, ParallelPlan};
use tilecc_polytope::{Constraint, Polyhedron};
use tilecc_tiling::{tiling_cone_rays, TilingTransform};

/// xorshift64* — deterministic case generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `lo..=hi`.
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

/// Generic stencil whose coefficients depend on the dependence count.
struct GenericStencil {
    weights: Vec<f64>,
}

impl Kernel for GenericStencil {
    fn compute(&self, j: &[i64], reads: &[f64]) -> f64 {
        let mut acc = 0.125 * (j[0] % 5) as f64;
        for (w, r) in self.weights.iter().zip(reads) {
            acc += w * r;
        }
        acc
    }
    fn initial(&self, j: &[i64]) -> f64 {
        let mut h: i64 = 23;
        for &v in j {
            h = h.wrapping_mul(37).wrapping_add(v);
        }
        (h.rem_euclid(997)) as f64 / 997.0
    }
}

/// Random dependence matrix with lexicographically positive, small columns
/// (first entry ≥ 0 keeps a tiling cone non-degenerate).
fn random_deps(rng: &mut Rng, n: usize) -> IMat {
    let q = rng.int(2, 4) as usize;
    let mut cols: Vec<Vec<i64>> = Vec::with_capacity(q);
    while cols.len() < q {
        let c: Vec<i64> = (0..n).map(|_| rng.int(0, 2)).collect();
        if tilecc_linalg::vecops::is_lex_positive(&c) {
            cols.push(c);
        }
    }
    let mut m = IMat::zeros(n, q);
    for (qi, c) in cols.iter().enumerate() {
        for k in 0..n {
            m[(k, qi)] = c[k];
        }
    }
    m
}

/// A random bounded convex space: a box plus up to two extra half-spaces
/// guaranteed to keep a witness region non-empty.
fn random_space(rng: &mut Rng, n: usize) -> Polyhedron {
    let ext: Vec<i64> = (0..n).map(|_| rng.int(5, 12)).collect();
    let lo = vec![1i64; n];
    let mut p = Polyhedron::from_box(&lo, &ext);
    for _ in 0..rng.int(0, 2) {
        let coeffs: Vec<i64> = (0..n).map(|_| rng.int(-1, 1)).collect();
        let slack = rng.int(0, 10);
        if coeffs.iter().all(|&c| c == 0) {
            continue;
        }
        // a·x + b >= 0 with b chosen so the box midpoint satisfies it.
        let mid_val: i64 = coeffs
            .iter()
            .zip(&ext)
            .map(|(&c, &e)| c * ((1 + e) / 2))
            .sum();
        p.add(Constraint::new(coeffs, -mid_val + slack));
    }
    p
}

/// Build a legal tiling for `deps`: pick rows from the tiling cone (extreme
/// rays, falling back to the all-positive combination) scaled by random
/// factors; reject if singular or with non-integral sides.
fn tiling_for(deps: &IMat, factors: &[i64], use_cone: bool) -> Option<TilingTransform> {
    let n = deps.rows();
    let h = if use_cone {
        let rays = tiling_cone_rays(deps);
        if rays.len() < n {
            return None;
        }
        // Pick n rays forming a non-singular matrix.
        let mut chosen: Vec<Vec<i64>> = Vec::new();
        for ray in &rays {
            let mut candidate = chosen.clone();
            candidate.push(ray.clone());
            let rank_ok = {
                // Full row rank test via determinant of a square completion.
                candidate.len() < n || {
                    let mut sq = IMat::zeros(n, n);
                    for (i, r) in candidate.iter().enumerate() {
                        for k in 0..n {
                            sq[(i, k)] = r[k];
                        }
                    }
                    sq.det() != 0
                }
            };
            if rank_ok {
                chosen = candidate;
            }
            if chosen.len() == n {
                break;
            }
        }
        if chosen.len() < n {
            return None;
        }
        RMat::from_fn(n, n, |i, j| {
            Rational::new(chosen[i][j] as i128, factors[i] as i128)
        })
    } else {
        RMat::from_fn(n, n, |i, j| {
            if i == j {
                Rational::new(1, factors[i] as i128)
            } else {
                Rational::ZERO
            }
        })
    };
    TilingTransform::new(h)
        .ok()
        .filter(|t| t.validate_for(deps).is_ok())
}

fn run_case(
    case: usize,
    space: Polyhedron,
    deps: IMat,
    factors: Vec<i64>,
    use_cone: bool,
    m: usize,
) {
    let n = deps.rows();
    let Some(transform) = tiling_for(&deps, &factors, use_cone) else {
        return; // rejected tiling shape; nothing to test
    };
    let q = deps.cols();
    let weights: Vec<f64> = (0..q).map(|i| 0.2 + 0.1 * i as f64).collect();
    let alg = Algorithm::new(
        "prop",
        LoopNest::new(space, deps),
        Arc::new(GenericStencil { weights }),
    );
    let seq = alg.execute_sequential();
    let plan = match ParallelPlan::new(alg, transform, Some(m % n)) {
        Ok(p) => Arc::new(p),
        Err(_) => return,
    };
    // Tiled sequential reordering must match.
    let tiled_seq = execute_tiled_sequential(&plan);
    assert_eq!(
        seq.diff(&tiled_seq),
        None,
        "case {case}: tiled sequential mismatch"
    );
    // Parallel execution must match bitwise and conserve iterations.
    let total = plan.total_iterations();
    let res = execute(plan, MachineModel::fast_ethernet_p3(), ExecMode::Full);
    assert_eq!(
        res.total_iterations as usize, total,
        "case {case}: iteration conservation"
    );
    assert_eq!(
        seq.diff(res.data.as_ref().unwrap()),
        None,
        "case {case}: parallel mismatch"
    );
}

const CASES: usize = 24;

#[test]
fn random_2d_rectangular_tilings() {
    let mut rng = Rng::new(0xE2E_0001);
    for case in 0..CASES {
        let space = random_space(&mut rng, 2);
        let deps = random_deps(&mut rng, 2);
        let factors: Vec<i64> = (0..2).map(|_| rng.int(2, 5)).collect();
        let m = rng.int(0, 1) as usize;
        run_case(case, space, deps, factors, false, m);
    }
}

#[test]
fn random_3d_rectangular_tilings() {
    let mut rng = Rng::new(0xE2E_0002);
    for case in 0..CASES {
        let space = random_space(&mut rng, 3);
        let deps = random_deps(&mut rng, 3);
        let factors: Vec<i64> = (0..3).map(|_| rng.int(2, 4)).collect();
        let m = rng.int(0, 2) as usize;
        run_case(case, space, deps, factors, false, m);
    }
}

#[test]
fn random_3d_cone_tilings() {
    let mut rng = Rng::new(0xE2E_0003);
    for case in 0..CASES {
        let space = random_space(&mut rng, 3);
        let deps = random_deps(&mut rng, 3);
        let factors: Vec<i64> = (0..3).map(|_| rng.int(2, 4)).collect();
        let m = rng.int(0, 2) as usize;
        run_case(case, space, deps, factors, true, m);
    }
}
