/root/repo/target/release/deps/tilecc_polytope-3f6000a3b6e177ff.d: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs

/root/repo/target/release/deps/libtilecc_polytope-3f6000a3b6e177ff.rlib: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs

/root/repo/target/release/deps/libtilecc_polytope-3f6000a3b6e177ff.rmeta: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs

crates/polytope/src/lib.rs:
crates/polytope/src/constraint.rs:
crates/polytope/src/polyhedron.rs:
