/root/repo/target/release/deps/tilecc_parcode-1f88fdb6e03f0bec.d: crates/parcode/src/lib.rs crates/parcode/src/emitter.rs crates/parcode/src/emitter_full.rs crates/parcode/src/executor.rs crates/parcode/src/plan.rs crates/parcode/src/seqtiled.rs

/root/repo/target/release/deps/libtilecc_parcode-1f88fdb6e03f0bec.rlib: crates/parcode/src/lib.rs crates/parcode/src/emitter.rs crates/parcode/src/emitter_full.rs crates/parcode/src/executor.rs crates/parcode/src/plan.rs crates/parcode/src/seqtiled.rs

/root/repo/target/release/deps/libtilecc_parcode-1f88fdb6e03f0bec.rmeta: crates/parcode/src/lib.rs crates/parcode/src/emitter.rs crates/parcode/src/emitter_full.rs crates/parcode/src/executor.rs crates/parcode/src/plan.rs crates/parcode/src/seqtiled.rs

crates/parcode/src/lib.rs:
crates/parcode/src/emitter.rs:
crates/parcode/src/emitter_full.rs:
crates/parcode/src/executor.rs:
crates/parcode/src/plan.rs:
crates/parcode/src/seqtiled.rs:
