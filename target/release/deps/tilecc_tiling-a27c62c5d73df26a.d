/root/repo/target/release/deps/tilecc_tiling-a27c62c5d73df26a.d: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs

/root/repo/target/release/deps/libtilecc_tiling-a27c62c5d73df26a.rlib: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs

/root/repo/target/release/deps/libtilecc_tiling-a27c62c5d73df26a.rmeta: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs

crates/tiling/src/lib.rs:
crates/tiling/src/comm.rs:
crates/tiling/src/cone.rs:
crates/tiling/src/lds.rs:
crates/tiling/src/mapping.rs:
crates/tiling/src/tile_space.rs:
crates/tiling/src/transform.rs:
