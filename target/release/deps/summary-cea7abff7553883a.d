/root/repo/target/release/deps/summary-cea7abff7553883a.d: crates/bench/src/bin/summary.rs

/root/repo/target/release/deps/summary-cea7abff7553883a: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
