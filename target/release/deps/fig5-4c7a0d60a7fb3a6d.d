/root/repo/target/release/deps/fig5-4c7a0d60a7fb3a6d.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-4c7a0d60a7fb3a6d: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
