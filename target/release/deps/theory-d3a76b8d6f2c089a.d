/root/repo/target/release/deps/theory-d3a76b8d6f2c089a.d: crates/bench/src/bin/theory.rs

/root/repo/target/release/deps/theory-d3a76b8d6f2c089a: crates/bench/src/bin/theory.rs

crates/bench/src/bin/theory.rs:
