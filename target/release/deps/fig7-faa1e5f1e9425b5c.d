/root/repo/target/release/deps/fig7-faa1e5f1e9425b5c.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-faa1e5f1e9425b5c: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
