/root/repo/target/release/deps/timeline-da425837c1c26434.d: crates/bench/src/bin/timeline.rs

/root/repo/target/release/deps/timeline-da425837c1c26434: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
