/root/repo/target/release/deps/tilecc-16c60c32186bf07a.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs

/root/repo/target/release/deps/libtilecc-16c60c32186bf07a.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs

/root/repo/target/release/deps/libtilecc-16c60c32186bf07a.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/experiments.rs:
crates/core/src/matrices.rs:
crates/core/src/pipeline.rs:
crates/core/src/predictor.rs:
