/root/repo/target/release/deps/fig6-228615506d860b76.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-228615506d860b76: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
