/root/repo/target/release/deps/tilecc_linalg-83fdb675e044e361.d: crates/linalg/src/lib.rs crates/linalg/src/hnf.rs crates/linalg/src/imat.rs crates/linalg/src/lattice.rs crates/linalg/src/rational.rs crates/linalg/src/rmat.rs crates/linalg/src/snf.rs crates/linalg/src/vecops.rs

/root/repo/target/release/deps/libtilecc_linalg-83fdb675e044e361.rlib: crates/linalg/src/lib.rs crates/linalg/src/hnf.rs crates/linalg/src/imat.rs crates/linalg/src/lattice.rs crates/linalg/src/rational.rs crates/linalg/src/rmat.rs crates/linalg/src/snf.rs crates/linalg/src/vecops.rs

/root/repo/target/release/deps/libtilecc_linalg-83fdb675e044e361.rmeta: crates/linalg/src/lib.rs crates/linalg/src/hnf.rs crates/linalg/src/imat.rs crates/linalg/src/lattice.rs crates/linalg/src/rational.rs crates/linalg/src/rmat.rs crates/linalg/src/snf.rs crates/linalg/src/vecops.rs

crates/linalg/src/lib.rs:
crates/linalg/src/hnf.rs:
crates/linalg/src/imat.rs:
crates/linalg/src/lattice.rs:
crates/linalg/src/rational.rs:
crates/linalg/src/rmat.rs:
crates/linalg/src/snf.rs:
crates/linalg/src/vecops.rs:
