/root/repo/target/release/deps/ablation-c777a6c327e1f188.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-c777a6c327e1f188: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
