/root/repo/target/release/deps/tilecc_bench-531d8cc9ca33b3e3.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtilecc_bench-531d8cc9ca33b3e3.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtilecc_bench-531d8cc9ca33b3e3.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
