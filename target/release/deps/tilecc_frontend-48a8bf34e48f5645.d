/root/repo/target/release/deps/tilecc_frontend-48a8bf34e48f5645.d: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/release/deps/libtilecc_frontend-48a8bf34e48f5645.rlib: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/release/deps/libtilecc_frontend-48a8bf34e48f5645.rmeta: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

crates/frontend/src/lib.rs:
crates/frontend/src/ast.rs:
crates/frontend/src/lexer.rs:
crates/frontend/src/lower.rs:
crates/frontend/src/parser.rs:
