/root/repo/target/release/deps/tilecc-71ca2cc54c378409.d: crates/cli/src/bin/tilecc.rs

/root/repo/target/release/deps/tilecc-71ca2cc54c378409: crates/cli/src/bin/tilecc.rs

crates/cli/src/bin/tilecc.rs:
