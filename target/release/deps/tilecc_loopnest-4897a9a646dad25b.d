/root/repo/target/release/deps/tilecc_loopnest-4897a9a646dad25b.d: crates/loopnest/src/lib.rs crates/loopnest/src/data.rs crates/loopnest/src/kernel.rs crates/loopnest/src/kernels.rs crates/loopnest/src/nest.rs

/root/repo/target/release/deps/libtilecc_loopnest-4897a9a646dad25b.rlib: crates/loopnest/src/lib.rs crates/loopnest/src/data.rs crates/loopnest/src/kernel.rs crates/loopnest/src/kernels.rs crates/loopnest/src/nest.rs

/root/repo/target/release/deps/libtilecc_loopnest-4897a9a646dad25b.rmeta: crates/loopnest/src/lib.rs crates/loopnest/src/data.rs crates/loopnest/src/kernel.rs crates/loopnest/src/kernels.rs crates/loopnest/src/nest.rs

crates/loopnest/src/lib.rs:
crates/loopnest/src/data.rs:
crates/loopnest/src/kernel.rs:
crates/loopnest/src/kernels.rs:
crates/loopnest/src/nest.rs:
