/root/repo/target/release/deps/fig9-f373e7f7510d8552.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-f373e7f7510d8552: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
