/root/repo/target/release/deps/tilecc_cli-e87f9103f3f98b12.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libtilecc_cli-e87f9103f3f98b12.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libtilecc_cli-e87f9103f3f98b12.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
