/root/repo/target/release/deps/fig8-27ecb8d482417b1d.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-27ecb8d482417b1d: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
