/root/repo/target/release/deps/fuzz-483b9749c5ea6a21.d: crates/bench/src/bin/fuzz.rs

/root/repo/target/release/deps/fuzz-483b9749c5ea6a21: crates/bench/src/bin/fuzz.rs

crates/bench/src/bin/fuzz.rs:
