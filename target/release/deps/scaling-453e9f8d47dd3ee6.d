/root/repo/target/release/deps/scaling-453e9f8d47dd3ee6.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-453e9f8d47dd3ee6: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
