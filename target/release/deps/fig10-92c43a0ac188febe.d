/root/repo/target/release/deps/fig10-92c43a0ac188febe.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-92c43a0ac188febe: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
