/root/repo/target/release/deps/figures-34e61f8e6c4f8a37.d: crates/bench/benches/figures.rs

/root/repo/target/release/deps/figures-34e61f8e6c4f8a37: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
