/root/repo/target/release/deps/tilecc_cluster-d215e95eac0cc616.d: crates/cluster/src/lib.rs crates/cluster/src/comm.rs crates/cluster/src/error.rs crates/cluster/src/fault.rs crates/cluster/src/model.rs crates/cluster/src/threaded.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libtilecc_cluster-d215e95eac0cc616.rlib: crates/cluster/src/lib.rs crates/cluster/src/comm.rs crates/cluster/src/error.rs crates/cluster/src/fault.rs crates/cluster/src/model.rs crates/cluster/src/threaded.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libtilecc_cluster-d215e95eac0cc616.rmeta: crates/cluster/src/lib.rs crates/cluster/src/comm.rs crates/cluster/src/error.rs crates/cluster/src/fault.rs crates/cluster/src/model.rs crates/cluster/src/threaded.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fault.rs:
crates/cluster/src/model.rs:
crates/cluster/src/threaded.rs:
crates/cluster/src/trace.rs:
