/root/repo/target/debug/examples/custom_kernel-85520653603d20f1.d: crates/core/../../examples/custom_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_kernel-85520653603d20f1.rmeta: crates/core/../../examples/custom_kernel.rs Cargo.toml

crates/core/../../examples/custom_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
