/root/repo/target/debug/examples/cone_explorer-838d32dfc198e338.d: crates/core/../../examples/cone_explorer.rs

/root/repo/target/debug/examples/cone_explorer-838d32dfc198e338: crates/core/../../examples/cone_explorer.rs

crates/core/../../examples/cone_explorer.rs:
