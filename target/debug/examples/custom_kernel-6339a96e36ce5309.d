/root/repo/target/debug/examples/custom_kernel-6339a96e36ce5309.d: crates/core/../../examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-6339a96e36ce5309: crates/core/../../examples/custom_kernel.rs

crates/core/../../examples/custom_kernel.rs:
