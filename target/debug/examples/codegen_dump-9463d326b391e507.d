/root/repo/target/debug/examples/codegen_dump-9463d326b391e507.d: crates/core/../../examples/codegen_dump.rs Cargo.toml

/root/repo/target/debug/examples/libcodegen_dump-9463d326b391e507.rmeta: crates/core/../../examples/codegen_dump.rs Cargo.toml

crates/core/../../examples/codegen_dump.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
