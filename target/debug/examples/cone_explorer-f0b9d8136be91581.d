/root/repo/target/debug/examples/cone_explorer-f0b9d8136be91581.d: crates/core/../../examples/cone_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcone_explorer-f0b9d8136be91581.rmeta: crates/core/../../examples/cone_explorer.rs Cargo.toml

crates/core/../../examples/cone_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
