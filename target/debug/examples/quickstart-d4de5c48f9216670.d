/root/repo/target/debug/examples/quickstart-d4de5c48f9216670.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d4de5c48f9216670: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
