/root/repo/target/debug/examples/tile_shape_comparison-a49d497da79900fa.d: crates/core/../../examples/tile_shape_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libtile_shape_comparison-a49d497da79900fa.rmeta: crates/core/../../examples/tile_shape_comparison.rs Cargo.toml

crates/core/../../examples/tile_shape_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
