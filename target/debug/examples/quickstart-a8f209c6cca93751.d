/root/repo/target/debug/examples/quickstart-a8f209c6cca93751.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a8f209c6cca93751.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
