/root/repo/target/debug/examples/codegen_dump-5f26a17d771f8ed8.d: crates/core/../../examples/codegen_dump.rs

/root/repo/target/debug/examples/codegen_dump-5f26a17d771f8ed8: crates/core/../../examples/codegen_dump.rs

crates/core/../../examples/codegen_dump.rs:
