/root/repo/target/debug/examples/tile_shape_comparison-f0866efb04e7c04d.d: crates/core/../../examples/tile_shape_comparison.rs

/root/repo/target/debug/examples/tile_shape_comparison-f0866efb04e7c04d: crates/core/../../examples/tile_shape_comparison.rs

crates/core/../../examples/tile_shape_comparison.rs:
