/root/repo/target/debug/deps/fuzz-60697792a2b24c9b.d: crates/bench/src/bin/fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz-60697792a2b24c9b.rmeta: crates/bench/src/bin/fuzz.rs Cargo.toml

crates/bench/src/bin/fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
