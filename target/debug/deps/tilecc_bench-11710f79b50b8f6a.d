/root/repo/target/debug/deps/tilecc_bench-11710f79b50b8f6a.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtilecc_bench-11710f79b50b8f6a.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtilecc_bench-11710f79b50b8f6a.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
