/root/repo/target/debug/deps/scaling-f51dda0f5219410d.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-f51dda0f5219410d.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
