/root/repo/target/debug/deps/fig5-986a1cb8b4ef1d3d.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-986a1cb8b4ef1d3d: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
