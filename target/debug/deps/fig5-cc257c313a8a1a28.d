/root/repo/target/debug/deps/fig5-cc257c313a8a1a28.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-cc257c313a8a1a28.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
