/root/repo/target/debug/deps/summary-325fcbffc23e2efd.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-325fcbffc23e2efd: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
