/root/repo/target/debug/deps/summary-2f5af050d3a8c305.d: crates/bench/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-2f5af050d3a8c305.rmeta: crates/bench/src/bin/summary.rs Cargo.toml

crates/bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
