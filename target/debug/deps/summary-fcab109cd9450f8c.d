/root/repo/target/debug/deps/summary-fcab109cd9450f8c.d: crates/bench/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-fcab109cd9450f8c.rmeta: crates/bench/src/bin/summary.rs Cargo.toml

crates/bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
