/root/repo/target/debug/deps/fig10-739cd7c061cc129a.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-739cd7c061cc129a: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
