/root/repo/target/debug/deps/fig7-227f1462f64736df.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-227f1462f64736df.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
