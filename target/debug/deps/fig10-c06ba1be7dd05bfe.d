/root/repo/target/debug/deps/fig10-c06ba1be7dd05bfe.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-c06ba1be7dd05bfe.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
