/root/repo/target/debug/deps/nest_files-c0becad6c82f3cbb.d: crates/cli/tests/nest_files.rs Cargo.toml

/root/repo/target/debug/deps/libnest_files-c0becad6c82f3cbb.rmeta: crates/cli/tests/nest_files.rs Cargo.toml

crates/cli/tests/nest_files.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/cli
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
