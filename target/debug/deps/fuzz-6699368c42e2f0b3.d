/root/repo/target/debug/deps/fuzz-6699368c42e2f0b3.d: crates/bench/src/bin/fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz-6699368c42e2f0b3.rmeta: crates/bench/src/bin/fuzz.rs Cargo.toml

crates/bench/src/bin/fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
