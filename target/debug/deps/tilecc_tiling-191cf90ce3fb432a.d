/root/repo/target/debug/deps/tilecc_tiling-191cf90ce3fb432a.d: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_tiling-191cf90ce3fb432a.rmeta: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs Cargo.toml

crates/tiling/src/lib.rs:
crates/tiling/src/comm.rs:
crates/tiling/src/cone.rs:
crates/tiling/src/lds.rs:
crates/tiling/src/mapping.rs:
crates/tiling/src/tile_space.rs:
crates/tiling/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
