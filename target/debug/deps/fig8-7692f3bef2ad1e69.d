/root/repo/target/debug/deps/fig8-7692f3bef2ad1e69.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-7692f3bef2ad1e69: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
