/root/repo/target/debug/deps/tilecc-977211b8c16b8c1e.d: crates/cli/src/bin/tilecc.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc-977211b8c16b8c1e.rmeta: crates/cli/src/bin/tilecc.rs Cargo.toml

crates/cli/src/bin/tilecc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
