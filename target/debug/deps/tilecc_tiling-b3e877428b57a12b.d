/root/repo/target/debug/deps/tilecc_tiling-b3e877428b57a12b.d: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs

/root/repo/target/debug/deps/libtilecc_tiling-b3e877428b57a12b.rlib: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs

/root/repo/target/debug/deps/libtilecc_tiling-b3e877428b57a12b.rmeta: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs

crates/tiling/src/lib.rs:
crates/tiling/src/comm.rs:
crates/tiling/src/cone.rs:
crates/tiling/src/lds.rs:
crates/tiling/src/mapping.rs:
crates/tiling/src/tile_space.rs:
crates/tiling/src/transform.rs:
