/root/repo/target/debug/deps/tag_matching-c0da64dfc547f92f.d: crates/cluster/tests/tag_matching.rs Cargo.toml

/root/repo/target/debug/deps/libtag_matching-c0da64dfc547f92f.rmeta: crates/cluster/tests/tag_matching.rs Cargo.toml

crates/cluster/tests/tag_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
