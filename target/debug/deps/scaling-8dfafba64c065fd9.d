/root/repo/target/debug/deps/scaling-8dfafba64c065fd9.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-8dfafba64c065fd9: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
