/root/repo/target/debug/deps/summary-51b9e38ce4aa8c59.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-51b9e38ce4aa8c59: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
