/root/repo/target/debug/deps/micro-daaf4212ac18145c.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-daaf4212ac18145c: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
