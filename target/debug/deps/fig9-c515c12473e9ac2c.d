/root/repo/target/debug/deps/fig9-c515c12473e9ac2c.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-c515c12473e9ac2c: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
