/root/repo/target/debug/deps/timeline-6d69b52b0ea9757b.d: crates/bench/src/bin/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libtimeline-6d69b52b0ea9757b.rmeta: crates/bench/src/bin/timeline.rs Cargo.toml

crates/bench/src/bin/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
