/root/repo/target/debug/deps/tilecc_cluster-0f4aaf55fbcb31c0.d: crates/cluster/src/lib.rs crates/cluster/src/comm.rs crates/cluster/src/error.rs crates/cluster/src/fault.rs crates/cluster/src/model.rs crates/cluster/src/threaded.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/tilecc_cluster-0f4aaf55fbcb31c0: crates/cluster/src/lib.rs crates/cluster/src/comm.rs crates/cluster/src/error.rs crates/cluster/src/fault.rs crates/cluster/src/model.rs crates/cluster/src/threaded.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fault.rs:
crates/cluster/src/model.rs:
crates/cluster/src/threaded.rs:
crates/cluster/src/trace.rs:
