/root/repo/target/debug/deps/fig7-40a456ab9296d271.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-40a456ab9296d271: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
