/root/repo/target/debug/deps/timeline-a1978dd60d0d072c.d: crates/bench/src/bin/timeline.rs

/root/repo/target/debug/deps/timeline-a1978dd60d0d072c: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
