/root/repo/target/debug/deps/tilecc_polytope-d03c0f65d07869a0.d: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs

/root/repo/target/debug/deps/libtilecc_polytope-d03c0f65d07869a0.rlib: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs

/root/repo/target/debug/deps/libtilecc_polytope-d03c0f65d07869a0.rmeta: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs

crates/polytope/src/lib.rs:
crates/polytope/src/constraint.rs:
crates/polytope/src/polyhedron.rs:
