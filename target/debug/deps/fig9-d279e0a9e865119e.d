/root/repo/target/debug/deps/fig9-d279e0a9e865119e.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-d279e0a9e865119e.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
