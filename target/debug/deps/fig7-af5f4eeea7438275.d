/root/repo/target/debug/deps/fig7-af5f4eeea7438275.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-af5f4eeea7438275: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
