/root/repo/target/debug/deps/proptests-96ccdf870fea9e9c.d: crates/linalg/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-96ccdf870fea9e9c.rmeta: crates/linalg/tests/proptests.rs Cargo.toml

crates/linalg/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
