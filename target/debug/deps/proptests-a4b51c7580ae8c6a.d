/root/repo/target/debug/deps/proptests-a4b51c7580ae8c6a.d: crates/linalg/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a4b51c7580ae8c6a: crates/linalg/tests/proptests.rs

crates/linalg/tests/proptests.rs:
