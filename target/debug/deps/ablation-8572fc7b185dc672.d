/root/repo/target/debug/deps/ablation-8572fc7b185dc672.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-8572fc7b185dc672.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
