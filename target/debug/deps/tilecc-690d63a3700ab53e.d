/root/repo/target/debug/deps/tilecc-690d63a3700ab53e.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs

/root/repo/target/debug/deps/libtilecc-690d63a3700ab53e.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs

/root/repo/target/debug/deps/libtilecc-690d63a3700ab53e.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/experiments.rs:
crates/core/src/matrices.rs:
crates/core/src/pipeline.rs:
crates/core/src/predictor.rs:
