/root/repo/target/debug/deps/figures-be9695ecc42b5c6b.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-be9695ecc42b5c6b: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
