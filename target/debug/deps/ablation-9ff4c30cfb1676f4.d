/root/repo/target/debug/deps/ablation-9ff4c30cfb1676f4.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-9ff4c30cfb1676f4: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
