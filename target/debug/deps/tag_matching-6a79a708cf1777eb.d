/root/repo/target/debug/deps/tag_matching-6a79a708cf1777eb.d: crates/cluster/tests/tag_matching.rs

/root/repo/target/debug/deps/tag_matching-6a79a708cf1777eb: crates/cluster/tests/tag_matching.rs

crates/cluster/tests/tag_matching.rs:
