/root/repo/target/debug/deps/tilecc-a07071a2cf668f14.d: crates/cli/src/bin/tilecc.rs

/root/repo/target/debug/deps/tilecc-a07071a2cf668f14: crates/cli/src/bin/tilecc.rs

crates/cli/src/bin/tilecc.rs:
