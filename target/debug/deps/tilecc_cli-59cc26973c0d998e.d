/root/repo/target/debug/deps/tilecc_cli-59cc26973c0d998e.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/tilecc_cli-59cc26973c0d998e: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
