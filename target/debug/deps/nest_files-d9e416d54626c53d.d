/root/repo/target/debug/deps/nest_files-d9e416d54626c53d.d: crates/cli/tests/nest_files.rs

/root/repo/target/debug/deps/nest_files-d9e416d54626c53d: crates/cli/tests/nest_files.rs

crates/cli/tests/nest_files.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/cli
