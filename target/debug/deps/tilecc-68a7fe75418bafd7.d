/root/repo/target/debug/deps/tilecc-68a7fe75418bafd7.d: crates/cli/src/bin/tilecc.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc-68a7fe75418bafd7.rmeta: crates/cli/src/bin/tilecc.rs Cargo.toml

crates/cli/src/bin/tilecc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
