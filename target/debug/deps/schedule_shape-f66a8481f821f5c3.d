/root/repo/target/debug/deps/schedule_shape-f66a8481f821f5c3.d: crates/core/../../tests/schedule_shape.rs

/root/repo/target/debug/deps/schedule_shape-f66a8481f821f5c3: crates/core/../../tests/schedule_shape.rs

crates/core/../../tests/schedule_shape.rs:
