/root/repo/target/debug/deps/fuzz-5cdf6301194a20d1.d: crates/bench/src/bin/fuzz.rs

/root/repo/target/debug/deps/fuzz-5cdf6301194a20d1: crates/bench/src/bin/fuzz.rs

crates/bench/src/bin/fuzz.rs:
