/root/repo/target/debug/deps/scaling-a701ba6df5522174.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-a701ba6df5522174.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
