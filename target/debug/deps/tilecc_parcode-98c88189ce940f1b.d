/root/repo/target/debug/deps/tilecc_parcode-98c88189ce940f1b.d: crates/parcode/src/lib.rs crates/parcode/src/emitter.rs crates/parcode/src/emitter_full.rs crates/parcode/src/executor.rs crates/parcode/src/plan.rs crates/parcode/src/seqtiled.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_parcode-98c88189ce940f1b.rmeta: crates/parcode/src/lib.rs crates/parcode/src/emitter.rs crates/parcode/src/emitter_full.rs crates/parcode/src/executor.rs crates/parcode/src/plan.rs crates/parcode/src/seqtiled.rs Cargo.toml

crates/parcode/src/lib.rs:
crates/parcode/src/emitter.rs:
crates/parcode/src/emitter_full.rs:
crates/parcode/src/executor.rs:
crates/parcode/src/plan.rs:
crates/parcode/src/seqtiled.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
