/root/repo/target/debug/deps/fig8-c852a73af6290df1.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-c852a73af6290df1: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
