/root/repo/target/debug/deps/property_end_to_end-e00b6ad7bf2ea018.d: crates/core/../../tests/property_end_to_end.rs

/root/repo/target/debug/deps/property_end_to_end-e00b6ad7bf2ea018: crates/core/../../tests/property_end_to_end.rs

crates/core/../../tests/property_end_to_end.rs:
