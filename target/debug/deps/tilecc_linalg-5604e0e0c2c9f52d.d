/root/repo/target/debug/deps/tilecc_linalg-5604e0e0c2c9f52d.d: crates/linalg/src/lib.rs crates/linalg/src/hnf.rs crates/linalg/src/imat.rs crates/linalg/src/lattice.rs crates/linalg/src/rational.rs crates/linalg/src/rmat.rs crates/linalg/src/snf.rs crates/linalg/src/vecops.rs

/root/repo/target/debug/deps/tilecc_linalg-5604e0e0c2c9f52d: crates/linalg/src/lib.rs crates/linalg/src/hnf.rs crates/linalg/src/imat.rs crates/linalg/src/lattice.rs crates/linalg/src/rational.rs crates/linalg/src/rmat.rs crates/linalg/src/snf.rs crates/linalg/src/vecops.rs

crates/linalg/src/lib.rs:
crates/linalg/src/hnf.rs:
crates/linalg/src/imat.rs:
crates/linalg/src/lattice.rs:
crates/linalg/src/rational.rs:
crates/linalg/src/rmat.rs:
crates/linalg/src/snf.rs:
crates/linalg/src/vecops.rs:
