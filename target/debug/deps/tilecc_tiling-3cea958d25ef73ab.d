/root/repo/target/debug/deps/tilecc_tiling-3cea958d25ef73ab.d: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs

/root/repo/target/debug/deps/tilecc_tiling-3cea958d25ef73ab: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs

crates/tiling/src/lib.rs:
crates/tiling/src/comm.rs:
crates/tiling/src/cone.rs:
crates/tiling/src/lds.rs:
crates/tiling/src/mapping.rs:
crates/tiling/src/tile_space.rs:
crates/tiling/src/transform.rs:
