/root/repo/target/debug/deps/fig10-3f97e4ed5e240c09.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-3f97e4ed5e240c09.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
