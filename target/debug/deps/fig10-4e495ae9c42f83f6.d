/root/repo/target/debug/deps/fig10-4e495ae9c42f83f6.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-4e495ae9c42f83f6: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
