/root/repo/target/debug/deps/theory-f965afe489892e1a.d: crates/bench/src/bin/theory.rs Cargo.toml

/root/repo/target/debug/deps/libtheory-f965afe489892e1a.rmeta: crates/bench/src/bin/theory.rs Cargo.toml

crates/bench/src/bin/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
