/root/repo/target/debug/deps/edge_cases-07eed580853b7d40.d: crates/core/../../tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-07eed580853b7d40.rmeta: crates/core/../../tests/edge_cases.rs Cargo.toml

crates/core/../../tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
