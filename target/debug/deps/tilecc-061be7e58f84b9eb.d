/root/repo/target/debug/deps/tilecc-061be7e58f84b9eb.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc-061be7e58f84b9eb.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/experiments.rs:
crates/core/src/matrices.rs:
crates/core/src/pipeline.rs:
crates/core/src/predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
