/root/repo/target/debug/deps/scaling-46e19d914d2b39a8.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-46e19d914d2b39a8: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
