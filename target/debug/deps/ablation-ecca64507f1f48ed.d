/root/repo/target/debug/deps/ablation-ecca64507f1f48ed.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-ecca64507f1f48ed: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
