/root/repo/target/debug/deps/theory-3866fa249ac87efa.d: crates/bench/src/bin/theory.rs

/root/repo/target/debug/deps/theory-3866fa249ac87efa: crates/bench/src/bin/theory.rs

crates/bench/src/bin/theory.rs:
