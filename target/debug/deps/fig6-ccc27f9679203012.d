/root/repo/target/debug/deps/fig6-ccc27f9679203012.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-ccc27f9679203012: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
