/root/repo/target/debug/deps/proptests-e7974a49173ef4b7.d: crates/polytope/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e7974a49173ef4b7: crates/polytope/tests/proptests.rs

crates/polytope/tests/proptests.rs:
