/root/repo/target/debug/deps/end_to_end-656da64aa4b4db47.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-656da64aa4b4db47: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
