/root/repo/target/debug/deps/tilecc-07461b7cd82ef409.d: crates/cli/src/bin/tilecc.rs

/root/repo/target/debug/deps/tilecc-07461b7cd82ef409: crates/cli/src/bin/tilecc.rs

crates/cli/src/bin/tilecc.rs:
