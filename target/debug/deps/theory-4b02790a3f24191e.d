/root/repo/target/debug/deps/theory-4b02790a3f24191e.d: crates/bench/src/bin/theory.rs

/root/repo/target/debug/deps/theory-4b02790a3f24191e: crates/bench/src/bin/theory.rs

crates/bench/src/bin/theory.rs:
