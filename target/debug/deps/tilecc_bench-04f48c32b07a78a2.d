/root/repo/target/debug/deps/tilecc_bench-04f48c32b07a78a2.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/tilecc_bench-04f48c32b07a78a2: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
