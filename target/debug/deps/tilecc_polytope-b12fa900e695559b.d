/root/repo/target/debug/deps/tilecc_polytope-b12fa900e695559b.d: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs

/root/repo/target/debug/deps/tilecc_polytope-b12fa900e695559b: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs

crates/polytope/src/lib.rs:
crates/polytope/src/constraint.rs:
crates/polytope/src/polyhedron.rs:
