/root/repo/target/debug/deps/fig9-7f0f47f7a7f1b21d.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-7f0f47f7a7f1b21d.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
