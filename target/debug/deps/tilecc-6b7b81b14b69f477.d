/root/repo/target/debug/deps/tilecc-6b7b81b14b69f477.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs

/root/repo/target/debug/deps/tilecc-6b7b81b14b69f477: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/experiments.rs:
crates/core/src/matrices.rs:
crates/core/src/pipeline.rs:
crates/core/src/predictor.rs:
