/root/repo/target/debug/deps/tilecc_parcode-50bf686e8d79fcd3.d: crates/parcode/src/lib.rs crates/parcode/src/emitter.rs crates/parcode/src/emitter_full.rs crates/parcode/src/executor.rs crates/parcode/src/plan.rs crates/parcode/src/seqtiled.rs

/root/repo/target/debug/deps/tilecc_parcode-50bf686e8d79fcd3: crates/parcode/src/lib.rs crates/parcode/src/emitter.rs crates/parcode/src/emitter_full.rs crates/parcode/src/executor.rs crates/parcode/src/plan.rs crates/parcode/src/seqtiled.rs

crates/parcode/src/lib.rs:
crates/parcode/src/emitter.rs:
crates/parcode/src/emitter_full.rs:
crates/parcode/src/executor.rs:
crates/parcode/src/plan.rs:
crates/parcode/src/seqtiled.rs:
