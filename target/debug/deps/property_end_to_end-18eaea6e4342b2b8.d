/root/repo/target/debug/deps/property_end_to_end-18eaea6e4342b2b8.d: crates/core/../../tests/property_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_end_to_end-18eaea6e4342b2b8.rmeta: crates/core/../../tests/property_end_to_end.rs Cargo.toml

crates/core/../../tests/property_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
