/root/repo/target/debug/deps/tilecc_bench-aeb5d51183c03f05.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_bench-aeb5d51183c03f05.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
