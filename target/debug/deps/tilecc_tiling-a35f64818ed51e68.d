/root/repo/target/debug/deps/tilecc_tiling-a35f64818ed51e68.d: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_tiling-a35f64818ed51e68.rmeta: crates/tiling/src/lib.rs crates/tiling/src/comm.rs crates/tiling/src/cone.rs crates/tiling/src/lds.rs crates/tiling/src/mapping.rs crates/tiling/src/tile_space.rs crates/tiling/src/transform.rs Cargo.toml

crates/tiling/src/lib.rs:
crates/tiling/src/comm.rs:
crates/tiling/src/cone.rs:
crates/tiling/src/lds.rs:
crates/tiling/src/mapping.rs:
crates/tiling/src/tile_space.rs:
crates/tiling/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
