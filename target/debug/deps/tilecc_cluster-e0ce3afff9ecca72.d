/root/repo/target/debug/deps/tilecc_cluster-e0ce3afff9ecca72.d: crates/cluster/src/lib.rs crates/cluster/src/comm.rs crates/cluster/src/error.rs crates/cluster/src/fault.rs crates/cluster/src/model.rs crates/cluster/src/threaded.rs crates/cluster/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_cluster-e0ce3afff9ecca72.rmeta: crates/cluster/src/lib.rs crates/cluster/src/comm.rs crates/cluster/src/error.rs crates/cluster/src/fault.rs crates/cluster/src/model.rs crates/cluster/src/threaded.rs crates/cluster/src/trace.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fault.rs:
crates/cluster/src/model.rs:
crates/cluster/src/threaded.rs:
crates/cluster/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
