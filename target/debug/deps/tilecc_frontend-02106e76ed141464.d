/root/repo/target/debug/deps/tilecc_frontend-02106e76ed141464.d: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/debug/deps/libtilecc_frontend-02106e76ed141464.rlib: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/debug/deps/libtilecc_frontend-02106e76ed141464.rmeta: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

crates/frontend/src/lib.rs:
crates/frontend/src/ast.rs:
crates/frontend/src/lexer.rs:
crates/frontend/src/lower.rs:
crates/frontend/src/parser.rs:
