/root/repo/target/debug/deps/tilecc-be30a5ca5c6ede03.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc-be30a5ca5c6ede03.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/experiments.rs crates/core/src/matrices.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/experiments.rs:
crates/core/src/matrices.rs:
crates/core/src/pipeline.rs:
crates/core/src/predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
