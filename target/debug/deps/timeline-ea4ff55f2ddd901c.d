/root/repo/target/debug/deps/timeline-ea4ff55f2ddd901c.d: crates/bench/src/bin/timeline.rs

/root/repo/target/debug/deps/timeline-ea4ff55f2ddd901c: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
