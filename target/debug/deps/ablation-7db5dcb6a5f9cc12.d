/root/repo/target/debug/deps/ablation-7db5dcb6a5f9cc12.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-7db5dcb6a5f9cc12.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
