/root/repo/target/debug/deps/fuzz-89174d4b0c962c26.d: crates/bench/src/bin/fuzz.rs

/root/repo/target/debug/deps/fuzz-89174d4b0c962c26: crates/bench/src/bin/fuzz.rs

crates/bench/src/bin/fuzz.rs:
