/root/repo/target/debug/deps/fig8-e73268b5415088e5.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-e73268b5415088e5.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
