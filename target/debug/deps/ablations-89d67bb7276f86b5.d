/root/repo/target/debug/deps/ablations-89d67bb7276f86b5.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-89d67bb7276f86b5: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
