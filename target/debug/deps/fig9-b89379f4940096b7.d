/root/repo/target/debug/deps/fig9-b89379f4940096b7.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-b89379f4940096b7: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
