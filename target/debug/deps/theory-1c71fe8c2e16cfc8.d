/root/repo/target/debug/deps/theory-1c71fe8c2e16cfc8.d: crates/bench/src/bin/theory.rs Cargo.toml

/root/repo/target/debug/deps/libtheory-1c71fe8c2e16cfc8.rmeta: crates/bench/src/bin/theory.rs Cargo.toml

crates/bench/src/bin/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
