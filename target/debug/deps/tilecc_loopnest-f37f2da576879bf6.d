/root/repo/target/debug/deps/tilecc_loopnest-f37f2da576879bf6.d: crates/loopnest/src/lib.rs crates/loopnest/src/data.rs crates/loopnest/src/kernel.rs crates/loopnest/src/kernels.rs crates/loopnest/src/nest.rs

/root/repo/target/debug/deps/tilecc_loopnest-f37f2da576879bf6: crates/loopnest/src/lib.rs crates/loopnest/src/data.rs crates/loopnest/src/kernel.rs crates/loopnest/src/kernels.rs crates/loopnest/src/nest.rs

crates/loopnest/src/lib.rs:
crates/loopnest/src/data.rs:
crates/loopnest/src/kernel.rs:
crates/loopnest/src/kernels.rs:
crates/loopnest/src/nest.rs:
