/root/repo/target/debug/deps/fig5-29682974bd920097.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-29682974bd920097: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
