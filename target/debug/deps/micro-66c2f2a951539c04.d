/root/repo/target/debug/deps/micro-66c2f2a951539c04.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-66c2f2a951539c04.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
