/root/repo/target/debug/deps/proptests-e03c2bd114cc055a.d: crates/polytope/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e03c2bd114cc055a.rmeta: crates/polytope/tests/proptests.rs Cargo.toml

crates/polytope/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
