/root/repo/target/debug/deps/tilecc_polytope-6a60c1cd5286a6e7.d: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_polytope-6a60c1cd5286a6e7.rmeta: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs Cargo.toml

crates/polytope/src/lib.rs:
crates/polytope/src/constraint.rs:
crates/polytope/src/polyhedron.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
