/root/repo/target/debug/deps/tilecc_polytope-3598208609680779.d: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_polytope-3598208609680779.rmeta: crates/polytope/src/lib.rs crates/polytope/src/constraint.rs crates/polytope/src/polyhedron.rs Cargo.toml

crates/polytope/src/lib.rs:
crates/polytope/src/constraint.rs:
crates/polytope/src/polyhedron.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
