/root/repo/target/debug/deps/tilecc_parcode-130288a73e363c1a.d: crates/parcode/src/lib.rs crates/parcode/src/emitter.rs crates/parcode/src/emitter_full.rs crates/parcode/src/executor.rs crates/parcode/src/plan.rs crates/parcode/src/seqtiled.rs

/root/repo/target/debug/deps/libtilecc_parcode-130288a73e363c1a.rlib: crates/parcode/src/lib.rs crates/parcode/src/emitter.rs crates/parcode/src/emitter_full.rs crates/parcode/src/executor.rs crates/parcode/src/plan.rs crates/parcode/src/seqtiled.rs

/root/repo/target/debug/deps/libtilecc_parcode-130288a73e363c1a.rmeta: crates/parcode/src/lib.rs crates/parcode/src/emitter.rs crates/parcode/src/emitter_full.rs crates/parcode/src/executor.rs crates/parcode/src/plan.rs crates/parcode/src/seqtiled.rs

crates/parcode/src/lib.rs:
crates/parcode/src/emitter.rs:
crates/parcode/src/emitter_full.rs:
crates/parcode/src/executor.rs:
crates/parcode/src/plan.rs:
crates/parcode/src/seqtiled.rs:
