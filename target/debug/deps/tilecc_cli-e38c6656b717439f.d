/root/repo/target/debug/deps/tilecc_cli-e38c6656b717439f.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_cli-e38c6656b717439f.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
