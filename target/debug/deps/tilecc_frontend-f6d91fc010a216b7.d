/root/repo/target/debug/deps/tilecc_frontend-f6d91fc010a216b7.d: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/debug/deps/tilecc_frontend-f6d91fc010a216b7: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

crates/frontend/src/lib.rs:
crates/frontend/src/ast.rs:
crates/frontend/src/lexer.rs:
crates/frontend/src/lower.rs:
crates/frontend/src/parser.rs:
