/root/repo/target/debug/deps/tilecc_cluster-fae5a5b49e0cf9de.d: crates/cluster/src/lib.rs crates/cluster/src/comm.rs crates/cluster/src/error.rs crates/cluster/src/fault.rs crates/cluster/src/model.rs crates/cluster/src/threaded.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libtilecc_cluster-fae5a5b49e0cf9de.rlib: crates/cluster/src/lib.rs crates/cluster/src/comm.rs crates/cluster/src/error.rs crates/cluster/src/fault.rs crates/cluster/src/model.rs crates/cluster/src/threaded.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libtilecc_cluster-fae5a5b49e0cf9de.rmeta: crates/cluster/src/lib.rs crates/cluster/src/comm.rs crates/cluster/src/error.rs crates/cluster/src/fault.rs crates/cluster/src/model.rs crates/cluster/src/threaded.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fault.rs:
crates/cluster/src/model.rs:
crates/cluster/src/threaded.rs:
crates/cluster/src/trace.rs:
