/root/repo/target/debug/deps/tilecc_frontend-067068e6210fdbda.d: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_frontend-067068e6210fdbda.rmeta: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs Cargo.toml

crates/frontend/src/lib.rs:
crates/frontend/src/ast.rs:
crates/frontend/src/lexer.rs:
crates/frontend/src/lower.rs:
crates/frontend/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
