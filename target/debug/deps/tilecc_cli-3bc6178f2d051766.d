/root/repo/target/debug/deps/tilecc_cli-3bc6178f2d051766.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libtilecc_cli-3bc6178f2d051766.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libtilecc_cli-3bc6178f2d051766.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
