/root/repo/target/debug/deps/tilecc_loopnest-2360e9c221b22809.d: crates/loopnest/src/lib.rs crates/loopnest/src/data.rs crates/loopnest/src/kernel.rs crates/loopnest/src/kernels.rs crates/loopnest/src/nest.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_loopnest-2360e9c221b22809.rmeta: crates/loopnest/src/lib.rs crates/loopnest/src/data.rs crates/loopnest/src/kernel.rs crates/loopnest/src/kernels.rs crates/loopnest/src/nest.rs Cargo.toml

crates/loopnest/src/lib.rs:
crates/loopnest/src/data.rs:
crates/loopnest/src/kernel.rs:
crates/loopnest/src/kernels.rs:
crates/loopnest/src/nest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
