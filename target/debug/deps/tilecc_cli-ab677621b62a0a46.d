/root/repo/target/debug/deps/tilecc_cli-ab677621b62a0a46.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_cli-ab677621b62a0a46.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
