/root/repo/target/debug/deps/figures-8ee186db7c57f297.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-8ee186db7c57f297.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
