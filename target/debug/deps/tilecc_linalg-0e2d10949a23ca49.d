/root/repo/target/debug/deps/tilecc_linalg-0e2d10949a23ca49.d: crates/linalg/src/lib.rs crates/linalg/src/hnf.rs crates/linalg/src/imat.rs crates/linalg/src/lattice.rs crates/linalg/src/rational.rs crates/linalg/src/rmat.rs crates/linalg/src/snf.rs crates/linalg/src/vecops.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_linalg-0e2d10949a23ca49.rmeta: crates/linalg/src/lib.rs crates/linalg/src/hnf.rs crates/linalg/src/imat.rs crates/linalg/src/lattice.rs crates/linalg/src/rational.rs crates/linalg/src/rmat.rs crates/linalg/src/snf.rs crates/linalg/src/vecops.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/hnf.rs:
crates/linalg/src/imat.rs:
crates/linalg/src/lattice.rs:
crates/linalg/src/rational.rs:
crates/linalg/src/rmat.rs:
crates/linalg/src/snf.rs:
crates/linalg/src/vecops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
