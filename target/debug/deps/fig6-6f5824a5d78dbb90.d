/root/repo/target/debug/deps/fig6-6f5824a5d78dbb90.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-6f5824a5d78dbb90.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
