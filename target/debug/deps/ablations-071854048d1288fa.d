/root/repo/target/debug/deps/ablations-071854048d1288fa.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-071854048d1288fa.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
