/root/repo/target/debug/deps/tilecc_loopnest-d912bbd309f196d2.d: crates/loopnest/src/lib.rs crates/loopnest/src/data.rs crates/loopnest/src/kernel.rs crates/loopnest/src/kernels.rs crates/loopnest/src/nest.rs

/root/repo/target/debug/deps/libtilecc_loopnest-d912bbd309f196d2.rlib: crates/loopnest/src/lib.rs crates/loopnest/src/data.rs crates/loopnest/src/kernel.rs crates/loopnest/src/kernels.rs crates/loopnest/src/nest.rs

/root/repo/target/debug/deps/libtilecc_loopnest-d912bbd309f196d2.rmeta: crates/loopnest/src/lib.rs crates/loopnest/src/data.rs crates/loopnest/src/kernel.rs crates/loopnest/src/kernels.rs crates/loopnest/src/nest.rs

crates/loopnest/src/lib.rs:
crates/loopnest/src/data.rs:
crates/loopnest/src/kernel.rs:
crates/loopnest/src/kernels.rs:
crates/loopnest/src/nest.rs:
