/root/repo/target/debug/deps/tilecc_linalg-f35fef2ad68ec7ce.d: crates/linalg/src/lib.rs crates/linalg/src/hnf.rs crates/linalg/src/imat.rs crates/linalg/src/lattice.rs crates/linalg/src/rational.rs crates/linalg/src/rmat.rs crates/linalg/src/snf.rs crates/linalg/src/vecops.rs Cargo.toml

/root/repo/target/debug/deps/libtilecc_linalg-f35fef2ad68ec7ce.rmeta: crates/linalg/src/lib.rs crates/linalg/src/hnf.rs crates/linalg/src/imat.rs crates/linalg/src/lattice.rs crates/linalg/src/rational.rs crates/linalg/src/rmat.rs crates/linalg/src/snf.rs crates/linalg/src/vecops.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/hnf.rs:
crates/linalg/src/imat.rs:
crates/linalg/src/lattice.rs:
crates/linalg/src/rational.rs:
crates/linalg/src/rmat.rs:
crates/linalg/src/snf.rs:
crates/linalg/src/vecops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
