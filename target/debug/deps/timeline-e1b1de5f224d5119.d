/root/repo/target/debug/deps/timeline-e1b1de5f224d5119.d: crates/bench/src/bin/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libtimeline-e1b1de5f224d5119.rmeta: crates/bench/src/bin/timeline.rs Cargo.toml

crates/bench/src/bin/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
