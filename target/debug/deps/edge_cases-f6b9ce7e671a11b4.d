/root/repo/target/debug/deps/edge_cases-f6b9ce7e671a11b4.d: crates/core/../../tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-f6b9ce7e671a11b4: crates/core/../../tests/edge_cases.rs

crates/core/../../tests/edge_cases.rs:
