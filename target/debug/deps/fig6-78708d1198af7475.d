/root/repo/target/debug/deps/fig6-78708d1198af7475.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-78708d1198af7475: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
