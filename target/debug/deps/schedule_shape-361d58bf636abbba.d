/root/repo/target/debug/deps/schedule_shape-361d58bf636abbba.d: crates/core/../../tests/schedule_shape.rs Cargo.toml

/root/repo/target/debug/deps/libschedule_shape-361d58bf636abbba.rmeta: crates/core/../../tests/schedule_shape.rs Cargo.toml

crates/core/../../tests/schedule_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
