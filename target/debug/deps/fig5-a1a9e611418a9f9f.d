/root/repo/target/debug/deps/fig5-a1a9e611418a9f9f.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-a1a9e611418a9f9f.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
