//! Visualize the wavefront schedule: run a tiled SOR on the simulated
//! cluster with event tracing and print an ASCII Gantt chart per processor,
//! for both rectangular and cone (non-rectangular) tilings. The earlier
//! drain of the wavefront under the cone tiling is directly visible.

use std::sync::Arc;
use tilecc::matrices;
use tilecc_cluster::{render_gantt, EngineOptions, MachineModel};
use tilecc_loopnest::kernels;
use tilecc_parcode::{execute_opts, ExecMode, ParallelPlan};
use tilecc_tiling::TilingTransform;

fn show(label: &str, h: tilecc_linalg::RMat) {
    let alg = kernels::sor_skewed(24, 36, 1.1);
    let plan = Arc::new(ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), Some(2)).unwrap());
    let res = execute_opts(
        plan,
        MachineModel::fast_ethernet_p3(),
        ExecMode::TimingOnly,
        EngineOptions {
            trace: true,
            ..Default::default()
        },
    )
    .expect("perfect-substrate trace run cannot fail");
    println!("== {label}: makespan {:.5} s ==", res.makespan());
    print!("{}", render_gantt(&res.report.traces, 100));
    let horizon = res.makespan();
    let avg_util: f64 = res
        .report
        .traces
        .iter()
        .map(|t| t.utilization(horizon))
        .sum::<f64>()
        / res.report.traces.len() as f64;
    println!("average utilization: {:.1}%\n", avg_util * 100.0);
}

fn main() {
    show("rectangular tiling", matrices::rect(7, 16, 8));
    show("cone tiling (non-rectangular)", matrices::sor_nr(7, 16, 8));
}
