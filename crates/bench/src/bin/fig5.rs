//! Figure 5: SOR — maximum speedups for four iteration spaces,
//! rectangular vs. non-rectangular tiling.

use tilecc_bench::*;

fn main() {
    let model = default_model();
    let series = run_sor(&sor_spaces(), model, true);
    println!("\n--- Figure 5: max speedup per iteration space ---");
    for s in &series {
        println!(
            "\n{} (grid x={}, y={}):",
            s.workload, s.grid_factors.0, s.grid_factors.1
        );
        for p in best_per_variant(&s.points) {
            println!(
                "  {:<10} speedup {:>6.3} (z = {})",
                p.variant, p.speedup, p.factors.2
            );
        }
    }
    write_record(&FigureRecord {
        figure: "fig5".into(),
        description: "SOR: maximum speedups for different iteration spaces (rect vs non-rect)"
            .into(),
        machine_model: "fast_ethernet_p3".into(),
        series,
    });
}
