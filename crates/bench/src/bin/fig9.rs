//! Figure 9: ADI integration — maximum speedups for four iteration spaces,
//! rectangular vs nr1/nr2/nr3 tilings.

use tilecc_bench::*;

fn main() {
    let model = default_model();
    let series = run_adi(&adi_spaces(), model, true);
    println!("\n--- Figure 9: max speedup per iteration space ---");
    for s in &series {
        println!(
            "\n{} (grid y={}, z={}):",
            s.workload, s.grid_factors.1, s.grid_factors.2
        );
        for p in best_per_variant(&s.points) {
            println!(
                "  {:<10} speedup {:>6.3} (x = {})",
                p.variant, p.speedup, p.factors.0
            );
        }
    }
    write_record(&FigureRecord {
        figure: "fig9".into(),
        description: "ADI: maximum speedups for different iteration spaces (rect/nr1/nr2/nr3)"
            .into(),
        machine_model: "fast_ethernet_p3".into(),
        series,
    });
}
