//! §4.1–4.3 analytic check: simulated makespans must follow the paper's
//! wavefront-step orderings (t_nr < t_r; t_nr3 < t_nr1 ≈ t_nr2 < t_r), and
//! makespans should correlate with predicted steps within each sweep.

use tilecc::{measure, Variant, Workload};
use tilecc_bench::*;

fn main() {
    let model = default_model();

    println!("SOR M=100 N=200 (x=26, y=74), sweep z:");
    let w = Workload::Sor { m: 100, n: 200 };
    let (x, y) = sor_grid(w);
    for z in [10, 20, 40] {
        let r = measure(w, Variant::Rect, (x, y, z), model);
        let nr = measure(w, Variant::NonRect, (x, y, z), model);
        println!(
            "  z={z:>3}  rect: steps {:>7.1} makespan {:.4}s | nr: steps {:>7.1} makespan {:.4}s  => nr faster: {}",
            r.predicted_steps, r.makespan, nr.predicted_steps, nr.makespan,
            nr.makespan < r.makespan
        );
    }

    println!("\nADI T=100 N=256, sweep x:");
    let w = Workload::Adi { t: 100, n: 256 };
    let (y, z) = yz_grid(w, 256, 256);
    for xf in [5, 10, 20] {
        let pts: Vec<_> = [
            Variant::Rect,
            Variant::AdiNr1,
            Variant::AdiNr2,
            Variant::AdiNr3,
        ]
        .into_iter()
        .map(|v| measure(w, v, (xf, y, z), model))
        .collect();
        println!(
            "  x={xf:>3}  rect {:.4}s | nr1 {:.4}s | nr2 {:.4}s | nr3 {:.4}s  => nr3 fastest: {}",
            pts[0].makespan,
            pts[1].makespan,
            pts[2].makespan,
            pts[3].makespan,
            pts[3].makespan <= pts[1].makespan.min(pts[2].makespan)
                && pts[3].makespan < pts[0].makespan
        );
    }
}
