//! Figure 8: Jacobi — speedups for various tile sizes (T=50, I=J=100).

use tilecc_bench::*;

fn main() {
    let model = default_model();
    let series = run_jacobi(&jacobi_spaces()[..1], model, true);
    write_record(&FigureRecord {
        figure: "fig8".into(),
        description: "Jacobi: speedups for various tile sizes (T=50, I=J=100)".into(),
        machine_model: "fast_ethernet_p3".into(),
        series,
    });
}
