//! Figure 7: Jacobi — maximum speedups for four iteration spaces.

use tilecc_bench::*;

fn main() {
    let model = default_model();
    let series = run_jacobi(&jacobi_spaces(), model, true);
    println!("\n--- Figure 7: max speedup per iteration space ---");
    for s in &series {
        println!(
            "\n{} (grid y={}, z={}):",
            s.workload, s.grid_factors.1, s.grid_factors.2
        );
        for p in best_per_variant(&s.points) {
            println!(
                "  {:<10} speedup {:>6.3} (x = {})",
                p.variant, p.speedup, p.factors.0
            );
        }
    }
    write_record(&FigureRecord {
        figure: "fig7".into(),
        description: "Jacobi: maximum speedups for different iteration spaces".into(),
        machine_model: "fast_ethernet_p3".into(),
        series,
    });
}
