//! Processor-count scaling (an extension beyond the paper's fixed 16
//! processes): sweep the processor-grid factors so the same SOR workload
//! runs on ~4, ~8, ~16, ~32 and ~64 processors, and report speedups for
//! rectangular vs cone tiling under both communication schemes.

use std::sync::Arc;
use tilecc::{matrices, Workload};
use tilecc_cluster::{CommScheme, MachineModel};
use tilecc_parcode::{execute_with, ExecMode, ParallelPlan};
use tilecc_tiling::TilingTransform;

fn measure_with(
    w: Workload,
    h: tilecc_linalg::RMat,
    scheme: CommScheme,
    model: MachineModel,
) -> (usize, f64) {
    let alg = w.algorithm();
    let plan = Arc::new(
        ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), Some(w.mapping_dim())).unwrap(),
    );
    let res = execute_with(plan, model, ExecMode::TimingOnly, scheme);
    (res.report.results.len(), res.speedup(&model))
}

fn main() {
    let model = MachineModel::fast_ethernet_p3();
    let w = Workload::Sor { m: 100, n: 200 };
    println!(
        "{:<22} {:>6} {:>12} {:>12} {:>14}",
        "grid (x, y)", "procs", "rect", "cone", "cone+overlap"
    );
    // Grid ladder: halving tile edges roughly doubles each grid dimension.
    for (x, y) in [(50, 150), (50, 74), (26, 74), (26, 40), (13, 40)] {
        let z = 20;
        let (procs, rect) = measure_with(w, matrices::rect(x, y, z), CommScheme::Blocking, model);
        let (_, cone) = measure_with(w, matrices::sor_nr(x, y, z), CommScheme::Blocking, model);
        let (_, cone_ov) =
            measure_with(w, matrices::sor_nr(x, y, z), CommScheme::Overlapped, model);
        println!(
            "({x:>3}, {y:>3})            {procs:>6} {rect:>12.3} {cone:>12.3} {cone_ov:>14.3}"
        );
    }
    println!("\n(SOR M=100 N=200, chain factor z=20; speedup = simulated sequential/parallel)");
}
