//! Hot-path wall-clock benchmark for the compiled execution path, seeding
//! the perf trajectory (`BENCH_PR2.json`).
//!
//! For each paper workload (SOR/Jacobi/ADI, rectangular and
//! non-rectangular tilings) it times the four per-tile hot paths — compute
//! loop, pack, unpack, gather — in both the compiled (flat-index) and the
//! reference (per-point addressing) form, on a real compute-interior tile
//! of a real plan, plus the end-to-end `Full`-mode execution. Results are
//! printed and written to `BENCH_PR2.json` as hand-rolled JSON
//! (ns/iter per path and the compiled-over-reference speedup).
//!
//! Usage: `perf [--test|--smoke] [--out <path>]`. With `--test`/`--smoke`
//! every timed closure runs exactly once (CI smoke mode) and no JSON file
//! is written.
//!
//! `perf --overlap-bench [--out <path>]` instead compares the blocking
//! compiled strategy against the overlapped boundary/interior schedule on
//! the paper workloads by deterministic virtual makespan and writes
//! `BENCH_PR4.json`; overlapping must never lose and must win at least
//! 1.1x somewhere.
//!
//! `perf --obs-overhead [--test]` instead measures the observability
//! layer: the compiled compute hot path with the executor's disabled-obs
//! gating must be within 2% of the raw loop (hooks are `Option` tests when
//! off), and an end-to-end run with metrics+tracing enabled reports its
//! real cost and writes the same `perf_obs_trace.json` /
//! `perf_obs_metrics.json` artifacts the CLI emits.
//!
//! `perf --vec-bench [--test] [--out <path>]` compares the run-coalesced /
//! batched hot paths of this PR against the per-point PR2 baselines
//! (kept verbatim as `*_per_point` / `*_per_index` / `*_per_cell`): the
//! interior compute loop, pack, unpack, and gather. Every path is first
//! cross-checked bitwise against its baseline on the same tile, then timed
//! with warmup + median-of-N wall-clock rounds. Results — wall-clock
//! medians, virtual-model makespans, batched-point coverage, and machine
//! info — go to `BENCH_PR7.json`. Acceptance: the batched interior compute
//! must beat the per-point loop by >= 1.5x on at least 4 of the 6 paper
//! workloads. With `--test`, every path runs once (identity checks only)
//! and no JSON is written.
//!
//! `perf --dsl-bench [--test] [--out <path>]` races the kernel-DSL
//! frontend against the hand-coded Rust kernels on the four paper
//! workloads that exist in both forms (`sor`, `jacobi`, `adi`,
//! `adi_paper`, at the PR2 bench sizes): each pair is first cross-checked
//! bitwise under the identical plan (data, makespan bits), then both are
//! timed end-to-end in `Full` mode (best-of-5 wall clock). Results go to
//! `BENCH_PR10.json`. Acceptance: the DSL-compiled tape interpreter costs
//! at most `DSL_OVERHEAD_BOUND`x the hand-coded kernel on every workload.
//! With `--test`, everything runs once (identity checks only) and no JSON
//! is written.
//!
//! `perf --tune-bench [--test] [--out <path>]` runs the `tilecc tune`
//! search on all six paper workloads with the paper's fixed `H` seeded as
//! the baseline, and writes the tuned-vs-fixed comparison to
//! `BENCH_PR9.json` (modeled makespan, comm bytes, winning `H`, tuner
//! counters). Acceptance: the tuned `H`'s modeled makespan is never worse
//! than the paper's fixed `H` on any workload, and strictly better on at
//! least 2 of the 6. With `--test`, smaller iteration spaces and candidate
//! caps are used; the gates still apply.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tilecc::matrices;
use tilecc_cluster::{Counter, EngineOptions, MachineModel, MetricsRegistry};
use tilecc_loopnest::{kernels, DataSpace};
use tilecc_parcode::compiled::{
    compute_tile_fast, compute_tile_fast_per_point, gather_tile_fast, gather_tile_per_cell,
    pack_region, pack_region_per_index, tile_origin, unpack_region, unpack_region_per_index,
    ComputeScratch,
};
use tilecc_parcode::{execute_strategy, ExecMode, ExecStrategy, ParallelPlan};
use tilecc_tiling::{insert_at, Lds, TilingTransform};

struct PathResult {
    name: &'static str,
    /// Iterations (points/cells) per inner run, for the ns/iter scaling.
    inner: usize,
    compiled_ns: f64,
    reference_ns: f64,
}

impl PathResult {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.compiled_ns
    }
}

/// Mean wall time per inner iteration of `f`, in nanoseconds.
fn time_ns<F: FnMut()>(smoke: bool, inner: usize, mut f: F) -> f64 {
    f(); // warm-up (and the entire run in smoke mode)
    if smoke {
        return 0.0;
    }
    let budget = Duration::from_millis(150);
    let mut reps: u64 = 0;
    let mut elapsed = Duration::ZERO;
    while reps < 10 || elapsed < budget {
        let t0 = Instant::now();
        f();
        elapsed += t0.elapsed();
        reps += 1;
    }
    elapsed.as_nanos() as f64 / (reps as usize * inner) as f64
}

/// The first compute-interior tile of any rank's chain: `(rank, tpos, tile)`.
fn find_interior(plan: &ParallelPlan) -> Option<(usize, i64, Vec<i64>)> {
    let deps = plan.deps();
    for rank in 0..plan.num_procs() {
        let (lo_t, hi_t) = plan.dist.chains[rank];
        for t_abs in lo_t..=hi_t {
            let tile = insert_at(&plan.dist.pids[rank], plan.m(), t_abs);
            if plan.tiled.tile_is_compute_interior(&tile, deps) {
                return Some((rank, t_abs - lo_t, tile));
            }
        }
    }
    None
}

#[allow(clippy::too_many_lines)]
fn bench_workload(name: &str, plan: ParallelPlan, smoke: bool) -> (Vec<PathResult>, f64) {
    let (rank, tpos, tile) =
        find_interior(&plan).unwrap_or_else(|| panic!("{name}: no compute-interior tile"));
    let n = plan.dim();
    let m = plan.m();
    let t = plan.tiled.transform();
    let v = t.v();
    let lattice = t.lattice();
    let (lo_t, hi_t) = plan.dist.chains[rank];
    let num_tiles = hi_t - lo_t + 1;
    let w = plan.algorithm.width();
    let chain = plan.compiled_for(num_tiles);
    let origin = tile_origin(t, &tile);
    let deps = plan.deps();
    let q = deps.cols();
    let d_prime = &plan.comm.d_prime;
    let kernel = plan.algorithm.kernel.clone();
    let space = plan.tiled.space();

    let mut lds = Lds::with_width(plan.geo.clone(), plan.anchor(rank), num_tiles, w);
    // Deterministic non-trivial contents so reads do real work.
    for (i, x) in lds.values_mut().iter_mut().enumerate() {
        *x = ((i % 977) as f64) / 977.0;
    }

    let mut reads = vec![0.0f64; q * w];
    let mut out = vec![0.0f64; w];
    let mut src = vec![0i64; n];
    let mut gs = vec![0i64; n];
    let mut scratch = ComputeScratch::new(n, q, w);
    let points = chain.tile_points;
    let mut results = Vec::new();

    // --- compute loop -----------------------------------------------------
    let compiled_ns = {
        let lds = &mut lds;
        let scratch = &mut scratch;
        time_ns(smoke, points, || {
            compute_tile_fast(chain, lds, tpos, &origin, kernel.as_ref(), scratch);
        })
    };
    let reference_ns = {
        let lds = &mut lds;
        let (reads, out) = (&mut reads, &mut out);
        time_ns(smoke, points, || {
            for (jp, j) in plan.tiled.tile_iterations(&tile) {
                let g = lds.unrolled(tpos, &jp);
                for dq in 0..q {
                    for k in 0..n {
                        src[k] = j[k] - deps[(k, dq)];
                        gs[k] = g[k] - d_prime[(k, dq)];
                    }
                    if space.contains(&src) {
                        lds.get_into(&gs, &mut reads[dq * w..(dq + 1) * w]);
                    } else {
                        kernel.initial(&src, &mut reads[dq * w..(dq + 1) * w]);
                    }
                }
                kernel.compute(&j, reads, out);
                lds.set_all(&g, out);
            }
        })
    };
    results.push(PathResult {
        name: "compute",
        inner: points,
        compiled_ns,
        reference_ns,
    });

    // --- pack / unpack ----------------------------------------------------
    if !plan.comm.proc_deps.is_empty() {
        let dm_idx = 0usize;
        let dm = &plan.comm.proc_deps[dm_idx];
        let count = plan.region_counts[dm_idx];
        let mut payload = vec![0.0f64; count * w];
        let compiled_ns = {
            let (lds, payload) = (&lds, &mut payload);
            time_ns(smoke, count, || {
                pack_region(chain, lds, tpos, dm_idx, payload);
            })
        };
        let reference_ns = {
            let (lds, payload) = (&lds, &mut payload);
            time_ns(smoke, count, || {
                let lo = plan.comm.region_lo(dm, v);
                for (idx, jp) in lattice.points_in_box(&lo, v).enumerate() {
                    let g = lds.unrolled(tpos, &jp);
                    if lds.index_of(&g).is_some() {
                        lds.get_into(&g, &mut payload[idx * w..(idx + 1) * w]);
                    }
                }
            })
        };
        results.push(PathResult {
            name: "pack",
            inner: count,
            compiled_ns,
            reference_ns,
        });

        // A tile dependence backed by this processor dependence.
        let ds_idx = plan
            .comm
            .dm_of_ds
            .iter()
            .position(|d| *d == Some(dm_idx))
            .expect("every proc dep comes from a tile dep");
        let ds = &plan.comm.tile_deps[ds_idx];
        let compiled_ns = {
            let (lds, payload) = (&mut lds, &payload);
            time_ns(smoke, count, || {
                unpack_region(chain, lds, tpos, ds_idx, payload).unwrap();
            })
        };
        let reference_ns = {
            let (lds, payload) = (&mut lds, &payload);
            time_ns(smoke, count, || {
                let lo = plan.comm.region_lo(dm, v);
                for (idx, jp) in lattice.points_in_box(&lo, v).enumerate() {
                    let mut g = jp;
                    for k in 0..n {
                        if k != m {
                            g[k] -= ds[k] * v[k];
                        }
                    }
                    g[m] += (tpos - ds[m]) * v[m];
                    lds.set_all(&g, &payload[idx * w..(idx + 1) * w]);
                }
            })
        };
        results.push(PathResult {
            name: "unpack",
            inner: count,
            compiled_ns,
            reference_ns,
        });
    }

    // --- gather -----------------------------------------------------------
    let (blo, bhi) = plan.algorithm.nest.bounding_box();
    let mut ds_global = DataSpace::with_width(&blo, &bhi, w);
    let compiled_ns = {
        let (lds, ds_global) = (&lds, &mut ds_global);
        time_ns(smoke, points, || {
            gather_tile_fast(chain, lds, tpos, &origin, ds_global);
        })
    };
    let mut vals = vec![0.0f64; w];
    let reference_ns = {
        let (lds, ds_global) = (&lds, &mut ds_global);
        time_ns(smoke, points, || {
            for (jp, j) in plan.tiled.tile_iterations(&tile) {
                let g = lds.unrolled(tpos, &jp);
                lds.get_into(&g, &mut vals);
                ds_global.set_all(&j, &vals);
            }
        })
    };
    results.push(PathResult {
        name: "gather",
        inner: points,
        compiled_ns,
        reference_ns,
    });

    // --- end-to-end Full-mode execution (real wall clock) -----------------
    let plan = Arc::new(plan);
    let model = MachineModel::fast_ethernet_p3();
    let run = |strategy: ExecStrategy| {
        execute_strategy(
            plan.clone(),
            model,
            ExecMode::Full,
            strategy,
            EngineOptions::default(),
        )
        .expect("execution failed")
    };
    let e2e = if smoke {
        let _ = run(ExecStrategy::Compiled);
        0.0
    } else {
        let wall = |strategy| {
            let mut best = Duration::MAX;
            for _ in 0..5 {
                let t0 = Instant::now();
                let _ = run(strategy);
                best = best.min(t0.elapsed());
            }
            best.as_secs_f64()
        };
        wall(ExecStrategy::Reference) / wall(ExecStrategy::Compiled)
    };
    (results, e2e)
}

/// Measure the cost of the observability layer on the compiled hot path.
///
/// The executor's per-tile instrumentation reduces to `Option` tests when no
/// registry is installed; this mode replays that gating pattern around the
/// real `compute_tile_fast` call and asserts the disabled-obs loop stays
/// within 2% of the raw loop. It then runs the full engine with metrics and
/// span tracing enabled to report the enabled-mode cost (informative, not
/// asserted — collecting data legitimately costs time) and writes the same
/// trace/metrics artifacts the CLI produces.
fn obs_overhead(smoke: bool) {
    let plan = ParallelPlan::new(
        kernels::sor_skewed(24, 32, 1.1),
        TilingTransform::new(matrices::sor_rect(4, 6, 8)).unwrap(),
        Some(2),
    )
    .unwrap();
    let (rank, tpos, tile) = find_interior(&plan).expect("no compute-interior tile");
    let t = plan.tiled.transform();
    let (lo_t, hi_t) = plan.dist.chains[rank];
    let num_tiles = hi_t - lo_t + 1;
    let w = plan.algorithm.width();
    let chain = plan.compiled_for(num_tiles);
    let origin = tile_origin(t, &tile);
    let q = plan.deps().cols();
    let kernel = plan.algorithm.kernel.clone();
    let mut lds = Lds::with_width(plan.geo.clone(), plan.anchor(rank), num_tiles, w);
    for (i, x) in lds.values_mut().iter_mut().enumerate() {
        *x = ((i % 977) as f64) / 977.0;
    }
    let mut scratch = ComputeScratch::new(plan.dim(), q, w);
    let points = chain.tile_points;

    // A registry that is never installed — runtime-dependent so the branch
    // is real, exactly like the executor's `comm.obs()` test.
    let disabled: Option<Arc<MetricsRegistry>> = std::env::args()
        .any(|a| a == "--never-matches")
        .then(MetricsRegistry::new);

    // Paired median-of-ratios: measure raw and gated back-to-back each
    // round so slow drift (frequency scaling, noisy neighbours) cancels
    // within the pair, then take the median ratio — the noise-robust
    // estimator for an assertion this tight.
    let runs = if smoke { 1 } else { 31 };
    let mut ratios = Vec::with_capacity(runs);
    let (mut raw_ns, mut gated_ns) = (f64::INFINITY, f64::INFINITY);
    {
        let (lds, scratch) = (&mut lds, &mut scratch);
        let kernel = kernel.as_ref();
        let disabled = &disabled;
        for _ in 0..runs {
            let r = time_ns(smoke, points, || {
                compute_tile_fast(chain, lds, tpos, &origin, kernel, scratch);
            });
            let g = time_ns(smoke, points, || {
                // The executor's per-tile pattern with obs off: one branch
                // before the tile (timestamp capture skipped) and one after
                // (histogram/span recording skipped).
                let t0 = disabled.as_ref().map(|_| Instant::now());
                compute_tile_fast(chain, lds, tpos, &origin, kernel, scratch);
                if let Some(reg) = disabled.as_ref() {
                    reg.rank_metrics(rank); // never reached
                    let _ = t0;
                }
            });
            raw_ns = raw_ns.min(r);
            gated_ns = gated_ns.min(g);
            if !smoke {
                ratios.push(g / r);
            }
        }
    }
    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios.get(ratios.len() / 2).copied().unwrap_or(1.0);

    // End-to-end: obs off vs fully enabled (metrics + spans), best-of-5.
    let plan = Arc::new(plan);
    let model = MachineModel::fast_ethernet_p3();
    let e2e = |obs: Option<Arc<MetricsRegistry>>| {
        execute_strategy(
            plan.clone(),
            model,
            ExecMode::Full,
            ExecStrategy::Compiled,
            EngineOptions {
                obs,
                ..EngineOptions::default()
            },
        )
        .expect("execution failed")
    };
    let wall = |obs: &dyn Fn() -> Option<Arc<MetricsRegistry>>| {
        let reps = if smoke { 1 } else { 5 };
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let t0 = Instant::now();
            let _ = e2e(obs());
            best = best.min(t0.elapsed());
        }
        best.as_secs_f64()
    };
    let off_s = wall(&|| None);
    let on_s = wall(&|| Some(MetricsRegistry::new()));

    // One more enabled run whose artifacts we keep.
    let reg = MetricsRegistry::new();
    let res = e2e(Some(reg.clone()));
    let report = reg.run_report(&res.report.local_times);
    std::fs::write("perf_obs_trace.json", reg.chrome_trace()).expect("write trace");
    std::fs::write("perf_obs_metrics.json", report.to_json()).expect("write metrics");

    if smoke {
        println!("obs-overhead smoke: hot path and end-to-end ran; artifacts written");
        println!("wrote perf_obs_trace.json perf_obs_metrics.json");
        return;
    }
    // Two noise-robust estimators of the (near-zero) true overhead; take
    // the lower. A real regression — say an unconditional timestamp in the
    // tile loop — moves both far past the gate.
    let overhead = median_ratio.min(gated_ns / raw_ns) - 1.0;
    println!(
        "compute hot path : raw {raw_ns:.2} ns/iter, obs-off gated {gated_ns:.2} ns/iter \
         (median paired overhead {:+.3}%)",
        overhead * 100.0
    );
    println!(
        "end-to-end       : obs off {:.1} ms, obs on {:.1} ms ({:+.1}%)",
        off_s * 1e3,
        on_s * 1e3,
        (on_s / off_s - 1.0) * 100.0
    );
    println!("wrote perf_obs_trace.json perf_obs_metrics.json");
    assert!(
        overhead < 0.02,
        "acceptance: disabled observability must cost <2% on the compiled hot path \
         (got {:+.3}%)",
        overhead * 100.0
    );
}

/// Virtual-makespan comparison of the blocking compiled strategy against
/// the overlapped boundary/interior schedule, written to `BENCH_PR4.json`.
///
/// Makespans are deterministic virtual model times — not wall clock — so
/// this benchmark runs, asserts, and writes its JSON identically in smoke
/// mode; CI uses it as a release-mode acceptance gate.
fn overlap_bench(out_path: &str) {
    let model = MachineModel::fast_ethernet_p3();
    let mut json =
        String::from("{\n  \"bench\": \"PR4 overlapped boundary/interior execution\",\n");
    json.push_str("  \"unit\": \"virtual_seconds\",\n  \"workloads\": {\n");
    let workloads = paper_workloads();
    let nw = workloads.len();
    let mut max_speedup = 0.0f64;
    for (wi, (name, plan)) in workloads.into_iter().enumerate() {
        let plan = Arc::new(plan);
        let run = |strategy: ExecStrategy| {
            let reg = MetricsRegistry::new();
            let res = execute_strategy(
                plan.clone(),
                model,
                ExecMode::TimingOnly,
                strategy,
                EngineOptions {
                    obs: Some(reg.clone()),
                    ..EngineOptions::default()
                },
            )
            .expect("execution failed");
            let hidden: f64 = reg
                .run_report(&res.report.local_times)
                .ranks
                .iter()
                .map(|r| r.overlap_hidden)
                .sum();
            (res, hidden)
        };
        let (blocking, _) = run(ExecStrategy::Compiled);
        let (overlapped, hidden) = run(ExecStrategy::Overlapped);
        assert_eq!(
            blocking.report.total_bytes(),
            overlapped.report.total_bytes(),
            "{name}: overlapping must not change traffic"
        );
        assert!(
            overlapped.makespan() <= blocking.makespan() + 1e-12,
            "acceptance: {name} overlapped {} must not exceed blocking {}",
            overlapped.makespan(),
            blocking.makespan()
        );
        let speedup = blocking.makespan() / overlapped.makespan();
        max_speedup = max_speedup.max(speedup);
        println!(
            "  {name:<12} blocking {:.6} s  overlapped {:.6} s  speedup {speedup:.3}x  hidden {:.6} s",
            blocking.makespan(),
            overlapped.makespan(),
            hidden
        );
        let _ = writeln!(
            json,
            "    \"{name}\": {{\"blocking_makespan\": {:.9}, \"overlapped_makespan\": {:.9}, \
             \"speedup\": {:.3}, \"overlap_hidden\": {:.9}}}{}",
            blocking.makespan(),
            overlapped.makespan(),
            speedup,
            hidden,
            if wi + 1 < nw { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},\n  \"max_speedup\": {max_speedup:.3}\n}}");
    assert!(
        max_speedup >= 1.1,
        "acceptance: overlapping must win >= 1.1x on at least one paper workload \
         (best {max_speedup:.3}x)"
    );
    std::fs::write(out_path, &json).expect("write bench JSON");
    println!("wrote {out_path} (max overlap speedup {max_speedup:.3}x)");
}

/// Wall-clock statistics for `f`: warmup runs, then `rounds` timed batches
/// of at least `MIN_ROUND_MS` each, reported as ns per inner iteration.
/// The median round is the headline number (noise-robust); the minimum is
/// kept as the optimistic floor.
struct WallStat {
    median_ns: f64,
    min_ns: f64,
}

const WALL_WARMUP_RUNS: usize = 3;
const WALL_ROUNDS: usize = 15;
const MIN_ROUND_MS: u64 = 10;

fn wall_stat<F: FnMut()>(smoke: bool, inner: usize, mut f: F) -> WallStat {
    for _ in 0..WALL_WARMUP_RUNS {
        f();
    }
    if smoke {
        return WallStat {
            median_ns: 0.0,
            min_ns: 0.0,
        };
    }
    let mut samples = Vec::with_capacity(WALL_ROUNDS);
    for _ in 0..WALL_ROUNDS {
        let t0 = Instant::now();
        let mut reps: u64 = 0;
        while reps < 3 || t0.elapsed() < Duration::from_millis(MIN_ROUND_MS) {
            f();
            reps += 1;
        }
        samples.push(t0.elapsed().as_nanos() as f64 / (reps as usize * inner) as f64);
    }
    samples.sort_by(f64::total_cmp);
    WallStat {
        median_ns: samples[WALL_ROUNDS / 2],
        min_ns: samples[0],
    }
}

/// Machine identification for the bench JSON: OS, architecture, logical
/// CPU count, and the CPU model string when `/proc/cpuinfo` offers one.
fn machine_json() -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name") || l.starts_with("Model"))
                .and_then(|l| l.split(':').nth(1).map(|m| m.trim().to_string()))
        })
        .unwrap_or_else(|| "unknown".into());
    format!(
        "{{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {cpus}, \"cpu_model\": \"{}\"}}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        model.replace('"', "'")
    )
}

/// One optimized-vs-baseline hot path of the vec bench.
struct VecPath {
    name: &'static str,
    inner: usize,
    baseline: WallStat,
    optimized: WallStat,
}

impl VecPath {
    fn speedup(&self) -> f64 {
        self.baseline.median_ns / self.optimized.median_ns
    }
}

/// Wall-clock comparison of the PR7 run-coalesced/batched hot paths
/// against the per-point PR2 baselines, written to `BENCH_PR7.json`.
///
/// Every optimized path is first cross-checked bitwise against its
/// baseline on the same tile state, so a timing win can never hide a
/// semantic change. Acceptance (non-smoke): batched interior compute at
/// least 1.5x over the per-point loop on at least 4 of the 6 paper
/// workloads.
#[allow(clippy::too_many_lines)]
fn vec_bench(out_path: &str, smoke: bool) {
    let model = MachineModel::fast_ethernet_p3();
    let mut json = String::from(
        "{\n  \"bench\": \"PR7 vectorized interior kernels + run-coalesced pack/unpack/gather\",\n",
    );
    json.push_str("  \"unit\": \"ns_per_iter\",\n");
    json.push_str("  \"baseline\": \"PR2 per-point/per-index hot paths (kept verbatim)\",\n");
    let _ = writeln!(
        json,
        "  \"timing\": {{\"warmup_runs\": {WALL_WARMUP_RUNS}, \"rounds\": {WALL_ROUNDS}, \
         \"statistic\": \"median\", \"min_round_ms\": {MIN_ROUND_MS}}},"
    );
    let _ = writeln!(json, "  \"machine\": {},", machine_json());
    json.push_str("  \"workloads\": {\n");

    let workloads = paper_workloads();
    let nw = workloads.len();
    let mut compute_wins = 0u32;
    for (wi, (name, plan)) in workloads.into_iter().enumerate() {
        println!("== {name} ==");
        let (rank, tpos, tile) =
            find_interior(&plan).unwrap_or_else(|| panic!("{name}: no compute-interior tile"));
        let n = plan.dim();
        let t = plan.tiled.transform();
        let (lo_t, hi_t) = plan.dist.chains[rank];
        let num_tiles = hi_t - lo_t + 1;
        let w = plan.algorithm.width();
        let chain = plan.compiled_for(num_tiles);
        let origin = tile_origin(t, &tile);
        let q = plan.deps().cols();
        let kernel = plan.algorithm.kernel.clone();
        let kernel = kernel.as_ref();
        let points = chain.tile_points;
        // SOR's skewed innermost dependence has lag 1, so its plan cannot
        // batch (the analysis proves any chunk would read stale values);
        // it must still win on the coalesced pack/unpack/gather paths.
        let expect_batched = !name.starts_with("sor");

        let mut lds = Lds::with_width(plan.geo.clone(), plan.anchor(rank), num_tiles, w);
        let fill = |lds: &mut Lds| {
            for (i, x) in lds.values_mut().iter_mut().enumerate() {
                *x = ((i % 977) as f64) / 977.0;
            }
        };
        let mut scratch = ComputeScratch::new(n, q, w);

        // --- bitwise identity: batched == per-point on the same tile ------
        fill(&mut lds);
        compute_tile_fast_per_point(chain, &mut lds, tpos, &origin, kernel, &mut scratch);
        let want: Vec<u64> = lds.values().iter().map(|v| v.to_bits()).collect();
        fill(&mut lds);
        let batched = compute_tile_fast(chain, &mut lds, tpos, &origin, kernel, &mut scratch);
        let got: Vec<u64> = lds.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            want, got,
            "{name}: batched compute differs bitwise from the per-point loop"
        );
        assert!(
            !expect_batched || batched > 0,
            "{name}: plan-time lag analysis produced no batched runs"
        );
        let batched_fraction = batched as f64 / points as f64;
        let mut paths: Vec<VecPath> = Vec::new();

        // --- interior compute ---------------------------------------------
        fill(&mut lds);
        let baseline = {
            let (lds, scratch) = (&mut lds, &mut scratch);
            wall_stat(smoke, points, || {
                compute_tile_fast_per_point(chain, lds, tpos, &origin, kernel, scratch);
            })
        };
        fill(&mut lds);
        let optimized = {
            let (lds, scratch) = (&mut lds, &mut scratch);
            wall_stat(smoke, points, || {
                compute_tile_fast(chain, lds, tpos, &origin, kernel, scratch);
            })
        };
        paths.push(VecPath {
            name: "compute",
            inner: points,
            baseline,
            optimized,
        });

        // --- pack / unpack -------------------------------------------------
        fill(&mut lds);
        if !plan.comm.proc_deps.is_empty() {
            let dm_idx = 0usize;
            let count = plan.region_counts[dm_idx];
            let mut payload = vec![0.0f64; count * w];
            let mut payload_base = vec![0.0f64; count * w];
            pack_region_per_index(chain, &lds, tpos, dm_idx, &mut payload_base);
            pack_region(chain, &lds, tpos, dm_idx, &mut payload);
            assert_eq!(
                payload_base.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                payload.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{name}: run-coalesced pack differs bitwise from per-index pack"
            );
            let baseline = {
                let (lds, payload) = (&lds, &mut payload_base);
                wall_stat(smoke, count, || {
                    pack_region_per_index(chain, lds, tpos, dm_idx, payload);
                })
            };
            let optimized = {
                let (lds, payload) = (&lds, &mut payload);
                wall_stat(smoke, count, || {
                    pack_region(chain, lds, tpos, dm_idx, payload);
                })
            };
            paths.push(VecPath {
                name: "pack",
                inner: count,
                baseline,
                optimized,
            });

            let ds_idx = plan
                .comm
                .dm_of_ds
                .iter()
                .position(|d| *d == Some(dm_idx))
                .expect("every proc dep comes from a tile dep");
            let ucount = chain.unpack_rel[ds_idx].len();
            let upayload: Vec<f64> = (0..ucount * w).map(|i| 1.0 + 0.5 * i as f64).collect();
            fill(&mut lds);
            unpack_region_per_index(chain, &mut lds, tpos, ds_idx, &upayload).unwrap();
            let want: Vec<u64> = lds.values().iter().map(|v| v.to_bits()).collect();
            fill(&mut lds);
            unpack_region(chain, &mut lds, tpos, ds_idx, &upayload).unwrap();
            let got: Vec<u64> = lds.values().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                want, got,
                "{name}: run-coalesced unpack differs bitwise from per-index unpack"
            );
            let baseline = {
                let (lds, upayload) = (&mut lds, &upayload);
                wall_stat(smoke, ucount, || {
                    unpack_region_per_index(chain, lds, tpos, ds_idx, upayload).unwrap();
                })
            };
            let optimized = {
                let (lds, upayload) = (&mut lds, &upayload);
                wall_stat(smoke, ucount, || {
                    unpack_region(chain, lds, tpos, ds_idx, upayload).unwrap();
                })
            };
            paths.push(VecPath {
                name: "unpack",
                inner: ucount,
                baseline,
                optimized,
            });
        }

        // --- gather --------------------------------------------------------
        let (blo, bhi) = plan.algorithm.nest.bounding_box();
        fill(&mut lds);
        let mut ds_base = DataSpace::with_width(&blo, &bhi, w);
        let mut ds_opt = DataSpace::with_width(&blo, &bhi, w);
        gather_tile_per_cell(chain, &lds, tpos, &origin, &mut ds_base);
        gather_tile_fast(chain, &lds, tpos, &origin, &mut ds_opt);
        assert_eq!(
            ds_base.diff(&ds_opt),
            None,
            "{name}: run-coalesced gather differs bitwise from per-cell gather"
        );
        let baseline = {
            let (lds, ds) = (&lds, &mut ds_base);
            wall_stat(smoke, points, || {
                gather_tile_per_cell(chain, lds, tpos, &origin, ds);
            })
        };
        let optimized = {
            let (lds, ds) = (&lds, &mut ds_opt);
            wall_stat(smoke, points, || {
                gather_tile_fast(chain, lds, tpos, &origin, ds);
            })
        };
        paths.push(VecPath {
            name: "gather",
            inner: points,
            baseline,
            optimized,
        });

        // --- end-to-end: virtual makespan + wall clock + batch coverage ---
        let plan = Arc::new(plan);
        let reg = MetricsRegistry::new();
        let full = execute_strategy(
            plan.clone(),
            model,
            ExecMode::Full,
            ExecStrategy::Compiled,
            EngineOptions {
                obs: Some(reg.clone()),
                ..EngineOptions::default()
            },
        )
        .expect("execution failed");
        let rep = reg.run_report(&full.report.local_times);
        let e2e_vectorized = rep.total(Counter::VectorizedPoints);
        let e2e_iterations = rep.total(Counter::Iterations);
        assert!(
            !expect_batched || e2e_vectorized > 0,
            "{name}: end-to-end run reported no batched points"
        );
        let virtual_makespan = full.makespan();
        let e2e_wall_s = if smoke {
            0.0
        } else {
            let mut best = Duration::MAX;
            for _ in 0..3 {
                let t0 = Instant::now();
                let _ = execute_strategy(
                    plan.clone(),
                    model,
                    ExecMode::Full,
                    ExecStrategy::Compiled,
                    EngineOptions::default(),
                )
                .expect("execution failed");
                best = best.min(t0.elapsed());
            }
            best.as_secs_f64()
        };

        // --- report --------------------------------------------------------
        let _ = write!(json, "    \"{name}\": {{\n      \"paths\": {{\n");
        let np = paths.len();
        for (i, p) in paths.iter().enumerate() {
            if smoke {
                println!("  {:<8} ok (smoke, {} iters)", p.name, p.inner);
            } else {
                println!(
                    "  {:<8} per-point {:>8.2} ns/iter  optimized {:>8.2} ns/iter  speedup {:>5.2}x  ({} iters)",
                    p.name,
                    p.baseline.median_ns,
                    p.optimized.median_ns,
                    p.speedup(),
                    p.inner
                );
            }
            if p.name == "compute" && p.speedup() >= 1.5 {
                compute_wins += 1;
            }
            let _ = writeln!(
                json,
                "        \"{}\": {{\"baseline_ns\": {:.2}, \"optimized_ns\": {:.2}, \
                 \"baseline_min_ns\": {:.2}, \"optimized_min_ns\": {:.2}, \
                 \"speedup\": {:.3}, \"iters\": {}}}{}",
                p.name,
                p.baseline.median_ns,
                p.optimized.median_ns,
                p.baseline.min_ns,
                p.optimized.min_ns,
                p.speedup(),
                p.inner,
                if i + 1 < np { "," } else { "" }
            );
        }
        if !smoke {
            println!(
                "  batched {batched}/{points} tile points ({:.1}%); end-to-end {e2e_vectorized}/{e2e_iterations} iterations; wall {:.1} ms; virtual makespan {virtual_makespan:.6} s",
                100.0 * batched_fraction,
                e2e_wall_s * 1e3,
            );
        }
        let _ = writeln!(
            json,
            "      }},\n      \"tile_points\": {points},\n      \"batched_points\": {batched},\n      \
             \"batched_fraction\": {batched_fraction:.4},\n      \
             \"e2e_vectorized_points\": {e2e_vectorized},\n      \
             \"e2e_iterations\": {e2e_iterations},\n      \
             \"virtual_makespan_s\": {virtual_makespan:.9},\n      \
             \"e2e_wall_s\": {e2e_wall_s:.6}\n    }}{}",
            if wi + 1 < nw { "," } else { "" }
        );
    }
    let _ = writeln!(
        json,
        "  }},\n  \"compute_workloads_ge_1_5x\": {compute_wins}\n}}"
    );

    if smoke {
        println!("vec-bench smoke: all paths bitwise-checked and ran once; no JSON written");
        return;
    }
    assert!(
        compute_wins >= 4,
        "acceptance: batched interior compute must be >= 1.5x over the per-point loop \
         on at least 4 of 6 paper workloads (got {compute_wins})"
    );
    std::fs::write(out_path, &json).expect("write bench JSON");
    println!("wrote {out_path} ({compute_wins}/6 workloads >= 1.5x on interior compute)");
}

/// Gate for `--dsl-bench`: end-to-end, the DSL tape interpreter may cost
/// at most this factor over the hand-coded kernel. The tape evaluates the
/// same arithmetic through an op-at-a-time interpreter over slot buffers
/// whose batch path amortizes dispatch across whole runs, so the measured
/// end-to-end overhead is only ~1.1x; 1.5x leaves headroom for noisy CI
/// machines while still catching an accidental de-batching regression.
const DSL_OVERHEAD_BOUND: f64 = 1.5;

/// Rewrite the `param` declarations of a `.tk` source so the shipped
/// example files (small, fast-verifying sizes) can be re-used at bench
/// sizes without duplicating the kernel bodies.
fn with_params(src: &str, params: &[(&str, i64)]) -> String {
    let mut out = String::with_capacity(src.len());
    for l in src.lines() {
        let t = l.trim_start();
        let rewritten = t.strip_prefix("param ").and_then(|rest| {
            let name = rest.split_whitespace().next()?;
            let (_, v) = params.iter().find(|(n, _)| *n == name)?;
            Some(format!("param {name} = {v}"))
        });
        out.push_str(rewritten.as_deref().unwrap_or(l));
        out.push('\n');
    }
    out
}

/// Wall-clock race of the DSL frontend against the hand-coded kernels on
/// the paper workloads that exist in both forms, written to
/// `BENCH_PR10.json`. Each pair is cross-checked bitwise (data and
/// makespan bits under the identical plan) before any timing, so the
/// overhead number can never hide a semantic difference.
fn dsl_bench(out_path: &str, smoke: bool) {
    let model = MachineModel::fast_ethernet_p3();
    type DslCase = (&'static str, String, ParallelPlan);
    let pair = |name: &'static str,
                src: &str,
                params: &[(&str, i64)],
                hand: tilecc_loopnest::Algorithm,
                h: tilecc_linalg::RMat,
                m: usize|
     -> (DslCase, ParallelPlan) {
        let src = with_params(src, params);
        let t = TilingTransform::new(h).unwrap();
        let dsl_alg = tilecc_frontend::compile_kernel(&src)
            .unwrap_or_else(|e| panic!("{name}: DSL twin failed to compile: {e}"));
        let dsl_plan = ParallelPlan::new(dsl_alg, t.clone(), Some(m)).unwrap();
        let hand_plan = ParallelPlan::new(hand, t, Some(m)).unwrap();
        ((name, src, dsl_plan), hand_plan)
    };
    let cases = [
        pair(
            "sor",
            include_str!("../../../../examples/kernels/sor.tk"),
            &[("M", 24), ("N", 32)],
            kernels::sor_skewed(24, 32, 1.1),
            matrices::sor_rect(4, 6, 8),
            2,
        ),
        pair(
            "jacobi",
            include_str!("../../../../examples/kernels/jacobi.tk"),
            &[("T", 16), ("N", 24)],
            kernels::jacobi_skewed(16, 24, 24),
            matrices::jacobi_rect(4, 6, 6),
            1,
        ),
        pair(
            "adi",
            include_str!("../../../../examples/kernels/adi.tk"),
            &[("T", 16), ("N", 24)],
            kernels::adi(16, 24),
            matrices::adi_rect(4, 6, 6),
            0,
        ),
        pair(
            "adi_paper",
            include_str!("../../../../examples/kernels/adi_paper.tk"),
            &[("T", 16), ("N", 24)],
            kernels::adi_paper(16, 24),
            matrices::adi_rect(4, 6, 6),
            1,
        ),
    ];

    let mut json =
        String::from("{\n  \"bench\": \"PR10 kernel-DSL frontend vs hand-coded paper kernels\",\n");
    json.push_str("  \"unit\": \"wall_seconds_end_to_end\",\n");
    let _ = writeln!(json, "  \"machine\": {},", machine_json());
    let _ = writeln!(json, "  \"overhead_bound\": {DSL_OVERHEAD_BOUND},");
    json.push_str("  \"workloads\": {\n");

    let nc = cases.len();
    let mut max_overhead = 0.0f64;
    for (ci, ((name, _src, dsl_plan), hand_plan)) in cases.into_iter().enumerate() {
        let dsl_plan = Arc::new(dsl_plan);
        let hand_plan = Arc::new(hand_plan);
        let run = |plan: &Arc<ParallelPlan>| {
            execute_strategy(
                plan.clone(),
                model,
                ExecMode::Full,
                ExecStrategy::Compiled,
                EngineOptions::default(),
            )
            .expect("execution failed")
        };
        // Bitwise identity gate before any timing.
        let dsl_res = run(&dsl_plan);
        let hand_res = run(&hand_plan);
        if let Some(bad) = hand_res
            .data
            .as_ref()
            .unwrap()
            .diff(dsl_res.data.as_ref().unwrap())
        {
            panic!("{name}: DSL-compiled data differs from hand-coded at {bad:?}");
        }
        assert_eq!(
            dsl_res.makespan().to_bits(),
            hand_res.makespan().to_bits(),
            "{name}: DSL/hand virtual makespan bits differ"
        );
        let (dsl_s, hand_s) = if smoke {
            (0.0, 0.0)
        } else {
            let wall = |plan: &Arc<ParallelPlan>| {
                let mut best = Duration::MAX;
                for _ in 0..5 {
                    let t0 = Instant::now();
                    let _ = run(plan);
                    best = best.min(t0.elapsed());
                }
                best.as_secs_f64()
            };
            (wall(&dsl_plan), wall(&hand_plan))
        };
        let overhead = if smoke { 1.0 } else { dsl_s / hand_s };
        max_overhead = max_overhead.max(overhead);
        if smoke {
            println!("  {name:<10} ok (smoke, bitwise identical)");
        } else {
            println!(
                "  {name:<10} hand {:.2} ms  dsl {:.2} ms  overhead {overhead:.2}x",
                hand_s * 1e3,
                dsl_s * 1e3
            );
        }
        let _ = writeln!(
            json,
            "    \"{name}\": {{\"hand_wall_s\": {hand_s:.6}, \"dsl_wall_s\": {dsl_s:.6}, \
             \"overhead\": {overhead:.3}, \"bitwise_identical\": true}}{}",
            if ci + 1 < nc { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},\n  \"max_overhead\": {max_overhead:.3}\n}}");

    if smoke {
        println!("dsl-bench smoke: all pairs bitwise-checked; no JSON written");
        return;
    }
    assert!(
        max_overhead <= DSL_OVERHEAD_BOUND,
        "acceptance: DSL-compiled kernels must stay within {DSL_OVERHEAD_BOUND}x of the \
         hand-coded kernels end-to-end (worst {max_overhead:.2}x)"
    );
    std::fs::write(out_path, &json).expect("write bench JSON");
    println!("wrote {out_path} (max DSL overhead {max_overhead:.2}x, bound {DSL_OVERHEAD_BOUND}x)");
}

/// The paper's SOR/Jacobi/ADI workloads under their rectangular and
/// non-rectangular tilings, shared by every benchmark mode.
fn paper_workloads() -> Vec<(&'static str, ParallelPlan)> {
    vec![
        (
            "sor_rect",
            ParallelPlan::new(
                kernels::sor_skewed(24, 32, 1.1),
                TilingTransform::new(matrices::sor_rect(4, 6, 8)).unwrap(),
                Some(2),
            )
            .unwrap(),
        ),
        (
            "sor_nr",
            ParallelPlan::new(
                kernels::sor_skewed(24, 32, 1.1),
                TilingTransform::new(matrices::sor_nr(4, 6, 8)).unwrap(),
                Some(2),
            )
            .unwrap(),
        ),
        (
            "jacobi_rect",
            ParallelPlan::new(
                kernels::jacobi_skewed(16, 24, 24),
                TilingTransform::new(matrices::jacobi_rect(4, 6, 6)).unwrap(),
                Some(1),
            )
            .unwrap(),
        ),
        (
            "jacobi_nr",
            ParallelPlan::new(
                kernels::jacobi_skewed(16, 24, 24),
                TilingTransform::new(matrices::jacobi_nr(4, 6, 6)).unwrap(),
                Some(1),
            )
            .unwrap(),
        ),
        (
            "adi_rect",
            ParallelPlan::new(
                kernels::adi(16, 24),
                TilingTransform::new(matrices::adi_rect(4, 6, 6)).unwrap(),
                Some(0),
            )
            .unwrap(),
        ),
        (
            "adi_paper",
            ParallelPlan::new(
                kernels::adi_paper(16, 24),
                TilingTransform::new(matrices::adi_rect(4, 6, 6)).unwrap(),
                Some(1),
            )
            .unwrap(),
        ),
    ]
}

/// `tilecc tune` vs the paper's fixed `H` on the six paper workloads,
/// written to `BENCH_PR9.json`. The fixed `H` is seeded into the tuner's
/// candidate list, so "tuned never worse" is structural; "strictly better
/// on ≥ 2 workloads" is the real gate — the cone-derived search space must
/// actually contain wins the paper's hand-picked matrices miss.
fn tune_bench(out_path: &str, smoke: bool) {
    use tilecc::{tune_labeled, TuneOptions, Variant, Workload};
    let model = MachineModel::fast_ethernet_p3();
    let (sor, jacobi, adi, cap) = if smoke {
        (
            Workload::Sor { m: 6, n: 9 },
            Workload::Jacobi { t: 6, i: 8, j: 8 },
            Workload::Adi { t: 6, n: 8 },
            48,
        )
    } else {
        (
            Workload::Sor { m: 12, n: 18 },
            Workload::Jacobi { t: 8, i: 12, j: 12 },
            Workload::Adi { t: 8, n: 12 },
            128,
        )
    };
    type TuneCase = (&'static str, Workload, Variant, (i64, i64, i64));
    let cases: [TuneCase; 6] = [
        ("sor_rect", sor, Variant::Rect, (2, 3, 2)),
        ("sor_nr", sor, Variant::NonRect, (2, 3, 2)),
        ("jacobi_rect", jacobi, Variant::Rect, (2, 4, 3)),
        ("jacobi_nr", jacobi, Variant::NonRect, (2, 4, 3)),
        ("adi_rect", adi, Variant::Rect, (2, 3, 2)),
        ("adi_nr", adi, Variant::NonRect, (2, 3, 2)),
    ];

    let mut json = String::from("{\n  \"bench\": \"PR9 tiling auto-tuner vs paper-fixed H\",\n");
    let _ = writeln!(json, "  \"machine\": {},", machine_json());
    let _ = writeln!(json, "  \"model\": \"fast_ethernet_p3\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"workloads\": {\n");

    let mut strict_wins = 0u32;
    let nc = cases.len();
    for (ci, (name, w, variant, (x, y, z))) in cases.into_iter().enumerate() {
        let alg = w.algorithm();
        let fixed_h = w.tiling(variant, x, y, z);
        let mut opts = TuneOptions::new(x * y * z, w.mapping_dim());
        opts.max_candidates = cap;
        opts.include = vec![fixed_h];
        let out = tune_labeled(&alg, &opts, model, &w.label());
        let best = out
            .best()
            .unwrap_or_else(|| panic!("{name}: no candidate survived the tuner"));
        let fixed = out
            .best_included()
            .unwrap_or_else(|| panic!("{name}: the paper-fixed H was not evaluated"));
        assert!(
            best.summary.makespan <= fixed.summary.makespan,
            "{name}: tuned makespan {} worse than fixed {}",
            best.summary.makespan,
            fixed.summary.makespan
        );
        let strict = best.summary.makespan < fixed.summary.makespan;
        strict_wins += u32::from(strict);
        let improvement = fixed.summary.makespan / best.summary.makespan;
        println!(
            "== {name} == fixed {:.6} tuned {:.6} ({:.3}x){} [{} evaluated]",
            fixed.summary.makespan,
            best.summary.makespan,
            improvement,
            if strict { " strict win" } else { "" },
            out.evaluated
        );
        let cand = |c: &tilecc::TunedCandidate| {
            format!(
                "{{\"h\": \"{}\", \"makespan\": {}, \"bytes\": {}, \"messages\": {}, \
                 \"procs\": {}, \"speedup\": {}}}",
                tilecc::tune::fmt_h(&c.h),
                c.summary.makespan,
                c.summary.bytes,
                c.summary.messages,
                c.summary.procs,
                c.summary.speedup
            )
        };
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(json, "      \"kernel\": \"{}\",", w.label());
        let _ = writeln!(json, "      \"volume\": {},", x * y * z);
        let _ = writeln!(json, "      \"m\": {},", w.mapping_dim());
        let _ = writeln!(json, "      \"fixed_variant\": \"{}\",", variant.label());
        let _ = writeln!(json, "      \"fixed\": {},", cand(fixed));
        let _ = writeln!(json, "      \"tuned\": {},", cand(best));
        let _ = writeln!(json, "      \"improvement\": {improvement},");
        let _ = writeln!(json, "      \"strict_win\": {strict},");
        let _ = writeln!(
            json,
            "      \"counters\": {{\"generated\": {}, \"invalid\": {}, \"illegal\": {}, \
             \"deduped\": {}, \"truncated\": {}, \"failed\": {}, \"evaluated\": {}}}",
            out.generated,
            out.invalid,
            out.illegal,
            out.deduped,
            out.truncated,
            out.failed,
            out.evaluated
        );
        let _ = writeln!(json, "    }}{}", if ci + 1 == nc { "" } else { "," });
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"gates\": {{\"tuned_never_worse\": true, \"strict_wins\": {strict_wins}, \
         \"required_strict_wins\": 2}}"
    );
    json.push('}');
    assert!(
        strict_wins >= 2,
        "tuner strictly beat the paper's fixed H on only {strict_wins} of {nc} workloads (need 2)"
    );
    std::fs::write(out_path, &json).unwrap();
    println!("wrote {out_path} ({strict_wins}/{nc} strict wins)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test" || a == "--smoke");
    if args.iter().any(|a| a == "--obs-overhead") {
        obs_overhead(smoke);
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    if args.iter().any(|a| a == "--overlap-bench") {
        overlap_bench(out_path.as_deref().unwrap_or("BENCH_PR4.json"));
        return;
    }
    if args.iter().any(|a| a == "--vec-bench") {
        vec_bench(out_path.as_deref().unwrap_or("BENCH_PR7.json"), smoke);
        return;
    }
    if args.iter().any(|a| a == "--tune-bench") {
        tune_bench(out_path.as_deref().unwrap_or("BENCH_PR9.json"), smoke);
        return;
    }
    if args.iter().any(|a| a == "--dsl-bench") {
        dsl_bench(out_path.as_deref().unwrap_or("BENCH_PR10.json"), smoke);
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_PR2.json".to_string());

    let workloads = paper_workloads();

    let mut json = String::from("{\n  \"bench\": \"PR2 compiled tile execution hot paths\",\n");
    json.push_str("  \"unit\": \"ns_per_iter\",\n  \"workloads\": {\n");
    let nw = workloads.len();
    let mut min_compute_speedup = f64::INFINITY;
    for (wi, (name, plan)) in workloads.into_iter().enumerate() {
        println!("== {name} ==");
        let (results, e2e) = bench_workload(name, plan, smoke);
        let _ = write!(json, "    \"{name}\": {{\n      \"paths\": {{\n");
        let np = results.len();
        for (i, r) in results.iter().enumerate() {
            if smoke {
                println!("  {:<8} ok (smoke, {} pts)", r.name, r.inner);
            } else {
                println!(
                    "  {:<8} compiled {:>8.1} ns/iter  reference {:>8.1} ns/iter  speedup {:>5.2}x  ({} pts)",
                    r.name,
                    r.compiled_ns,
                    r.reference_ns,
                    r.speedup(),
                    r.inner
                );
            }
            if r.name == "compute" {
                min_compute_speedup = min_compute_speedup.min(r.speedup());
            }
            let _ = writeln!(
                json,
                "        \"{}\": {{\"compiled_ns\": {:.2}, \"reference_ns\": {:.2}, \"speedup\": {:.3}, \"iters\": {}}}{}",
                r.name,
                r.compiled_ns,
                r.reference_ns,
                r.speedup(),
                r.inner,
                if i + 1 < np { "," } else { "" }
            );
        }
        if !smoke {
            println!("  end-to-end Full-mode wall-clock speedup {e2e:.2}x");
        }
        let _ = writeln!(
            json,
            "      }},\n      \"end_to_end_speedup\": {:.3}\n    }}{}",
            e2e,
            if wi + 1 < nw { "," } else { "" }
        );
    }
    json.push_str("  }\n}\n");

    if smoke {
        println!("smoke mode: all hot paths ran once; no JSON written");
        return;
    }
    assert!(
        min_compute_speedup >= 3.0,
        "acceptance: interior compute hot path must be >= 3x (got {min_compute_speedup:.2}x)"
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("wrote {out_path} (min compute speedup {min_compute_speedup:.2}x)");
}
