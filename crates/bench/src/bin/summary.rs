//! §4.4 summary: average best-speedup improvement of non-rectangular over
//! rectangular tiling across all iteration spaces. Paper reports
//! SOR +17.3 %, Jacobi +9.1 %, ADI +10.1 %.

use tilecc_bench::*;

fn main() {
    let model = default_model();
    let mut rows = vec![];
    for (name, series, nr) in [
        ("SOR", run_sor(&sor_spaces(), model, false), "non-rect"),
        (
            "Jacobi",
            run_jacobi(&jacobi_spaces(), model, false),
            "non-rect",
        ),
        ("ADI", run_adi(&adi_spaces(), model, false), "nr3"),
    ] {
        let improvements: Vec<f64> = series
            .iter()
            .map(|s| improvement_pct(&s.points, nr))
            .collect();
        let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
        println!(
            "{name:<8} per-space improvements: {:?}",
            improvements
                .iter()
                .map(|v| format!("{v:+.1}%"))
                .collect::<Vec<_>>()
        );
        println!(
            "{name:<8} average improvement: {avg:+.1}%  (paper: SOR +17.3, Jacobi +9.1, ADI +10.1)"
        );
        rows.push((name, avg));
    }
}
