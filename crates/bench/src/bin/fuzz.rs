//! Randomized end-to-end fuzzer: generates random convex spaces, uniform
//! dependence sets and (rectangular or tiling-cone) tilings, and checks the
//! full parallel pipeline bitwise against sequential execution. Every case
//! also runs all three execution strategies — the compiled flat-index path,
//! the per-point reference path, and the overlapped boundary/interior
//! path — which must agree bitwise with identical message traffic; the
//! overlapped makespan must never exceed the blocking compiled one.
//!
//! Usage: `fuzz [seed] [cases] [--faults] [--tcp] [--recovery] [--tune] [--dsl]`.
//! With `--tune`, the tiling of each case is drawn from the auto-tuner's
//! candidate enumeration (`tilecc::enumerate_candidates`) instead of the
//! rectangular/cone-greedy generators — every H the tuner could ever rank
//! flows through the same three-way bitwise cross-check. With
//! `--faults`, every case is additionally executed under a seeded
//! lossy/duplicating/reordering `FaultPlan`; the reliability layer must
//! reproduce the fault-free result bitwise, with retransmissions visible
//! in the stats. With `--tcp`, every case with ≤ 8 processors is
//! re-executed over the TCP backend (real sockets, TCMP framing) — clean
//! and under a seeded chaos plan — and must match the threaded backend
//! bitwise: same data, same per-rank virtual clocks, same counters. With
//! `--recovery`, every case crashes its busiest rank mid-run under a
//! checkpoint/recovery policy on both backends: the recovered run must
//! reproduce the fault-free data bitwise, and every rank's clock must be
//! the fault-free clock plus exactly its recovery debt. With `--dsl`, the
//! random-space generator is replaced by the `examples/kernels/*.tk`
//! corpus: every case compiles one kernel-DSL program through the
//! frontend, draws a random rectangular tiling and mapping dimension, and
//! runs the same three-way strategy cross-check; the four paper workloads
//! (`sor`, `jacobi`, `adi`, `adi_paper`) are additionally executed
//! side-by-side with their hand-coded Rust kernels under the identical
//! plan and must agree bitwise — data, makespan bits, and counters.
//!
//! Every failure path prints the RNG seed so regressions reproduce with
//! `fuzz <seed>`. Found two real bugs during development (Fourier–Motzkin
//! blowup on dense skewed systems; non-monotone minimum-successor message
//! pairing — see DESIGN.md).

use std::sync::Arc;
use tilecc_cluster::obs::RunReport as ObsReport;
use tilecc_cluster::{
    Counter, EngineOptions, FaultPlan, MachineModel, MetricsRegistry, RecoveryOptions,
    StatsSnapshot,
};
use tilecc_linalg::{IMat, RMat, Rational};
use tilecc_loopnest::{Algorithm, Kernel, LoopNest};
use tilecc_parcode::{
    execute_backend, execute_opts, execute_strategy, execute_tiled_sequential, Backend, ExecMode,
    ExecStrategy, ParallelPlan,
};
use tilecc_polytope::{Constraint, Polyhedron};
use tilecc_tiling::{tiling_cone_rays, TilingTransform};

struct G(u64);
impl G {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % ((hi - lo + 1) as u64)) as i64
    }
}

struct K;
impl Kernel for K {
    fn compute(&self, j: &[i64], reads: &[f64]) -> f64 {
        let mut acc = 0.125 * (j[0] % 5) as f64;
        for (i, r) in reads.iter().enumerate() {
            acc += (0.2 + 0.1 * i as f64) * r;
        }
        acc
    }
    fn initial(&self, j: &[i64]) -> f64 {
        ((j.iter().sum::<i64>()).rem_euclid(97)) as f64 / 97.0
    }
}

/// Report a failure with the reproduction seed and exit.
fn fail(seed: u64, case: u64, what: &str) -> ! {
    eprintln!("FAILURE in case {case}: {what}");
    eprintln!("reproduce with: fuzz {seed}");
    std::process::exit(3);
}

/// The shipped kernel-DSL corpus, embedded at compile time so the fuzzer
/// breaks the build if a corpus file goes missing or stops parsing.
const DSL_CORPUS: &[(&str, &str)] = &[
    ("sor", include_str!("../../../../examples/kernels/sor.tk")),
    (
        "jacobi",
        include_str!("../../../../examples/kernels/jacobi.tk"),
    ),
    ("adi", include_str!("../../../../examples/kernels/adi.tk")),
    (
        "adi_paper",
        include_str!("../../../../examples/kernels/adi_paper.tk"),
    ),
    (
        "heat3d",
        include_str!("../../../../examples/kernels/heat3d.tk"),
    ),
    (
        "lu_sweep",
        include_str!("../../../../examples/kernels/lu_sweep.tk"),
    ),
    (
        "gs_redblack",
        include_str!("../../../../examples/kernels/gs_redblack.tk"),
    ),
    (
        "jacobi9",
        include_str!("../../../../examples/kernels/jacobi9.tk"),
    ),
    (
        "coupled",
        include_str!("../../../../examples/kernels/coupled.tk"),
    ),
    (
        "wavefront",
        include_str!("../../../../examples/kernels/wavefront_skew.tk"),
    ),
];

/// The hand-coded Rust twin of a paper workload at the sizes its `.tk`
/// file declares, or `None` for the DSL-only corpus kernels.
fn hand_twin(name: &str) -> Option<Algorithm> {
    use tilecc_loopnest::kernels;
    match name {
        "sor" => Some(kernels::sor_skewed(8, 12, 1.1)),
        "jacobi" => Some(kernels::jacobi_skewed(6, 8, 8)),
        "adi" => Some(kernels::adi(6, 8)),
        "adi_paper" => Some(kernels::adi_paper(6, 8)),
        _ => None,
    }
}

/// `--dsl`: fuzz the kernel-DSL corpus instead of random spaces. Each case
/// compiles one `.tk` program, draws a random rectangular tiling and
/// mapping dimension, and cross-checks all three execution strategies
/// bitwise against sequential execution. Paper workloads are additionally
/// raced against their hand-coded kernels under the identical plan: data,
/// makespan bits, and every logical counter must agree.
fn dsl_mode(seed: u64, cases: u64) -> ! {
    let mut g = G(seed | 1);
    let mut per_kernel = vec![0u64; DSL_CORPUS.len()];
    let mut pair_cases = 0u64;
    let mut vectorized_points = 0u64;
    let run =
        |plan: &Arc<ParallelPlan>, strat: ExecStrategy, reg: &Arc<MetricsRegistry>, case: u64| {
            match execute_strategy(
                plan.clone(),
                MachineModel::fast_ethernet_p3(),
                ExecMode::Full,
                strat,
                EngineOptions {
                    obs: Some(reg.clone()),
                    ..EngineOptions::default()
                },
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  {strat:?} strategy run failed: {e}");
                    fail(seed, case, "strategy run failed on a DSL kernel");
                }
            }
        };
    for case in 0..cases {
        let ki = (case % DSL_CORPUS.len() as u64) as usize;
        let (name, src) = DSL_CORPUS[ki];
        let alg = match tilecc_frontend::compile_kernel(src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("  corpus kernel `{name}` failed to compile: {e}");
                fail(seed, case, "corpus kernel did not compile");
            }
        };
        let n = alg.nest.dim();
        let edges: Vec<i64> = (0..n).map(|_| g.range(2, 4)).collect();
        let m = g.range(0, n as i64 - 1) as usize;
        eprintln!("case {case}: kernel={name} dim={n} edges={edges:?} m={m}");
        let h = RMat::from_fn(n, n, |i, j| {
            if i == j {
                Rational::new(1, edges[i] as i128)
            } else {
                Rational::ZERO
            }
        });
        let t = match TilingTransform::new(h) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("  rectangular tiling rejected: {e}");
                fail(seed, case, "rectangular tiling rejected for DSL kernel");
            }
        };
        if let Err(e) = t.validate_for(alg.nest.deps()) {
            eprintln!("  tiling invalid for corpus deps: {e}");
            fail(seed, case, "corpus kernel deps not rectangularly tileable");
        }
        let seq = alg.execute_sequential();
        let hand = hand_twin(name);
        let plan = match ParallelPlan::new(alg, t.clone(), Some(m)) {
            Ok(p) => Arc::new(p),
            Err(e) => {
                eprintln!("  planning failed: {e}");
                fail(seed, case, "planning failed on a DSL kernel");
            }
        };
        per_kernel[ki] += 1;
        let ts = execute_tiled_sequential(&plan);
        if seq.diff(&ts).is_some() {
            fail(seed, case, "DSL tiled sequential reordering mismatch");
        }
        let reg_c = MetricsRegistry::new();
        let res = run(&plan, ExecStrategy::Compiled, &reg_c, case);
        if let Some(bad) = seq.diff(res.data.as_ref().unwrap()) {
            eprintln!("  MISMATCH at {bad:?}");
            fail(seed, case, "DSL parallel/sequential mismatch");
        }
        let reg_r = MetricsRegistry::new();
        let reference = run(&plan, ExecStrategy::Reference, &reg_r, case);
        if res
            .data
            .as_ref()
            .unwrap()
            .diff(reference.data.as_ref().unwrap())
            .is_some()
        {
            fail(seed, case, "DSL compiled/reference data mismatch");
        }
        if res.makespan() != reference.makespan()
            || res.report.total_bytes() != reference.report.total_bytes()
        {
            fail(
                seed,
                case,
                "DSL compiled/reference makespan/traffic mismatch",
            );
        }
        let reg_o = MetricsRegistry::new();
        let overlapped = run(&plan, ExecStrategy::Overlapped, &reg_o, case);
        if res
            .data
            .as_ref()
            .unwrap()
            .diff(overlapped.data.as_ref().unwrap())
            .is_some()
        {
            fail(seed, case, "DSL compiled/overlapped data mismatch");
        }
        if overlapped.makespan() > res.makespan() + 1e-12 {
            fail(seed, case, "DSL overlapped strategy slower than blocking");
        }
        if overlapped.report.total_bytes() != res.report.total_bytes()
            || overlapped.report.total_messages() != res.report.total_messages()
        {
            fail(seed, case, "DSL compiled/overlapped traffic mismatch");
        }
        let rep_c = reg_c.run_report(&res.report.local_times);
        let rep_r = reg_r.run_report(&reference.report.local_times);
        for c in [
            Counter::MessagesSent,
            Counter::BytesSent,
            Counter::Tiles,
            Counter::Iterations,
        ] {
            if rep_c.total(c) != rep_r.total(c) {
                fail(
                    seed,
                    case,
                    "DSL compiled/reference logical counter mismatch",
                );
            }
        }
        if rep_r.total(Counter::VectorizedPoints) != 0 {
            fail(seed, case, "DSL reference strategy reported batched points");
        }
        vectorized_points += rep_c.total(Counter::VectorizedPoints);
        // Paper workloads: the DSL-compiled program must be bitwise
        // indistinguishable from the hand-coded kernel under the same plan.
        if let Some(hand) = hand {
            pair_cases += 1;
            let hand_seq = hand.execute_sequential();
            if let Some(bad) = hand_seq.diff(&seq) {
                eprintln!("  HAND/DSL SEQUENTIAL MISMATCH at {bad:?}");
                fail(seed, case, "DSL kernel differs from hand-coded sequential");
            }
            let hand_plan = match ParallelPlan::new(hand, t.clone(), Some(m)) {
                Ok(p) => Arc::new(p),
                Err(e) => {
                    eprintln!("  hand-twin planning failed: {e}");
                    fail(seed, case, "planning failed on a hand-coded twin");
                }
            };
            let reg_h = MetricsRegistry::new();
            let hand_res = run(&hand_plan, ExecStrategy::Compiled, &reg_h, case);
            if let Some(bad) = res
                .data
                .as_ref()
                .unwrap()
                .diff(hand_res.data.as_ref().unwrap())
            {
                eprintln!("  HAND/DSL PARALLEL MISMATCH at {bad:?}");
                fail(
                    seed,
                    case,
                    "DSL kernel differs from hand-coded parallel run",
                );
            }
            if res.makespan().to_bits() != hand_res.makespan().to_bits() {
                eprintln!(
                    "  makespans: dsl {} hand {}",
                    res.makespan(),
                    hand_res.makespan()
                );
                fail(seed, case, "DSL/hand makespan bits differ");
            }
            let rep_h = reg_h.run_report(&hand_res.report.local_times);
            for c in [
                Counter::MessagesSent,
                Counter::BytesSent,
                Counter::MessagesReceived,
                Counter::BytesReceived,
                Counter::Tiles,
                Counter::InteriorTiles,
                Counter::BoundaryTiles,
                Counter::Iterations,
                Counter::VectorizedPoints,
            ] {
                if rep_c.total(c) != rep_h.total(c) {
                    eprintln!(
                        "  counter {}: dsl {} hand {}",
                        c.name(),
                        rep_c.total(c),
                        rep_h.total(c)
                    );
                    fail(seed, case, "DSL/hand counter mismatch");
                }
            }
        }
    }
    if cases >= DSL_CORPUS.len() as u64 {
        for (ki, count) in per_kernel.iter().enumerate() {
            if *count == 0 {
                eprintln!("corpus kernel `{}` never executed", DSL_CORPUS[ki].0);
                fail(seed, cases, "DSL corpus coverage hole");
            }
        }
    }
    if pair_cases == 0 {
        fail(seed, cases, "DSL/hand equivalence never checked");
    }
    if cases >= DSL_CORPUS.len() as u64 && vectorized_points == 0 {
        fail(
            seed,
            cases,
            "no DSL case ever took the batched compute path",
        );
    }
    eprintln!(
        "dsl cross-check: {cases} cases, {pair_cases} hand-twin races, \
         {vectorized_points} batched points"
    );
    eprintln!("all {cases} cases passed (dsl corpus)");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let faults = args.iter().any(|a| a == "--faults");
    let tcp = args.iter().any(|a| a == "--tcp");
    let recovery = args.iter().any(|a| a == "--recovery");
    let tune = args.iter().any(|a| a == "--tune");
    let mut tune_cases = 0u64;
    let mut tcp_cases = 0u64;
    let mut tcp_chaos_cases = 0u64;
    let mut recovered_cases = 0u64;
    let mut vectorized_points = 0u64;
    let positional: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
    let seed: u64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let cases: u64 = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    if args.iter().any(|a| a == "--dsl") {
        dsl_mode(seed, cases);
    }
    let mut g = G(seed | 1);
    for case in 0..cases {
        let n = 3usize;
        // space
        let ext: Vec<i64> = (0..n).map(|_| g.range(5, 12)).collect();
        let lo = vec![1i64; n];
        let mut space = Polyhedron::from_box(&lo, &ext);
        let ncuts = g.range(0, 2);
        let mut cuts = vec![];
        for _ in 0..ncuts {
            let coeffs: Vec<i64> = (0..n).map(|_| g.range(-1, 1)).collect();
            if coeffs.iter().all(|&c| c == 0) {
                continue;
            }
            let slack = g.range(0, 10);
            let mid: i64 = coeffs
                .iter()
                .zip(&ext)
                .map(|(&c, &e)| c * ((1 + e) / 2))
                .sum();
            cuts.push((coeffs.clone(), -mid + slack));
            space.add(Constraint::new(coeffs, -mid + slack));
        }
        // deps
        let q = g.range(2, 4) as usize;
        let mut cols = vec![];
        for _ in 0..q {
            loop {
                let c: Vec<i64> = (0..n).map(|_| g.range(0, 2)).collect();
                if tilecc_linalg::vecops::is_lex_positive(&c) {
                    cols.push(c);
                    break;
                }
            }
        }
        let mut deps = IMat::zeros(n, cols.len());
        for (qq, c) in cols.iter().enumerate() {
            for k in 0..n {
                deps[(k, qq)] = c[k];
            }
        }
        let factors: Vec<i64> = (0..n).map(|_| g.range(2, 4)).collect();
        let use_cone = g.next().is_multiple_of(2);
        let m = (g.next() % n as u64) as usize;
        eprintln!("case {case}: ext={ext:?} cuts={cuts:?} deps={cols:?} factors={factors:?} cone={use_cone} m={m} tune={tune}");
        // tiling
        let h = if tune {
            // Draw from the auto-tuner's exact search space: every ordered
            // row choice from the tiling cone pool at this tile volume.
            let volume = factors.iter().product::<i64>();
            let cands = tilecc::enumerate_candidates(&deps, volume);
            if cands.is_empty() {
                continue;
            }
            let idx = (g.next() % cands.len() as u64) as usize;
            cands[idx].h.clone()
        } else if use_cone {
            let rays = tiling_cone_rays(&deps);
            if rays.len() < n {
                continue;
            }
            let mut chosen: Vec<Vec<i64>> = vec![];
            for ray in &rays {
                let mut cand = chosen.clone();
                cand.push(ray.clone());
                let ok = cand.len() < n || {
                    let mut sq = IMat::zeros(n, n);
                    for (i, r) in cand.iter().enumerate() {
                        for k in 0..n {
                            sq[(i, k)] = r[k];
                        }
                    }
                    sq.det() != 0
                };
                if ok {
                    chosen = cand;
                }
                if chosen.len() == n {
                    break;
                }
            }
            if chosen.len() < n {
                continue;
            }
            RMat::from_fn(n, n, |i, j| {
                Rational::new(chosen[i][j] as i128, factors[i] as i128)
            })
        } else {
            RMat::from_fn(n, n, |i, j| {
                if i == j {
                    Rational::new(1, factors[i] as i128)
                } else {
                    Rational::ZERO
                }
            })
        };
        let Ok(t) = TilingTransform::new(h) else {
            continue;
        };
        if t.validate_for(&deps).is_err() {
            continue;
        }
        let alg = Algorithm::new("p", LoopNest::new(space, deps), Arc::new(K));
        let seq = alg.execute_sequential();
        let Ok(tsq) = tilecc_tiling::TiledSpace::new(t.clone(), alg.nest.space().clone()) else {
            continue;
        };
        eprintln!(
            "  stage: shadow has {} constraints; enumerating tiles",
            tsq.shadow().constraints().len()
        );
        let ntiles = tsq.tiles().count();
        eprintln!("  stage: {} tiles; distribution", ntiles);
        let dist = tilecc_tiling::Distribution::new(&tsq, Some(m)).unwrap();
        eprintln!("  stage: {} procs; commplan", dist.num_procs());
        let _cp = tilecc_tiling::CommPlan::new(&tsq, alg.nest.deps(), m);
        let Ok(plan) = ParallelPlan::new(alg, t, Some(m)) else {
            continue;
        };
        tune_cases += u64::from(tune);
        let plan = Arc::new(plan);
        let ts = execute_tiled_sequential(&plan);
        if seq.diff(&ts).is_some() {
            fail(seed, case, "tiled sequential reordering mismatch");
        }
        // The compiled run records observability metrics so conservation
        // invariants can be checked below.
        let reg_c = MetricsRegistry::new();
        let res = match execute_strategy(
            plan.clone(),
            MachineModel::fast_ethernet_p3(),
            ExecMode::Full,
            ExecStrategy::Compiled,
            EngineOptions {
                obs: Some(reg_c.clone()),
                ..EngineOptions::default()
            },
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("  compiled-strategy run failed: {e}");
                fail(seed, case, "compiled strategy failed");
            }
        };
        if let Some(bad) = seq.diff(res.data.as_ref().unwrap()) {
            eprintln!("  MISMATCH at {bad:?}");
            let tf = plan.tiled.transform();
            eprintln!("  H' = {:?}", tf.h_prime());
            eprintln!("  v = {:?} strides = {:?}", tf.v(), tf.strides());
            eprintln!("  D' = {:?}", plan.comm.d_prime);
            eprintln!(
                "  maxd = {:?} cc = {:?} off = {:?}",
                plan.comm.maxd, plan.comm.cc, plan.comm.off
            );
            eprintln!("  D^S = {:?}", plan.comm.tile_deps);
            eprintln!("  D^m = {:?}", plan.comm.proc_deps);
            let tile = tf.tile_of(&bad);
            eprintln!("  tile of bad point: {tile:?}");
            eprintln!(
                "  seq value {:?} par value {:?}",
                seq.get_all(&bad),
                res.data.as_ref().unwrap().get_all(&bad)
            );
            fail(seed, case, "parallel/sequential mismatch");
        }
        // Compiled vs reference strategy: `execute` above ran the compiled
        // (default) path; the per-point reference path must agree bitwise
        // with identical virtual time and traffic.
        let reg_r = MetricsRegistry::new();
        let reference = match execute_strategy(
            plan.clone(),
            MachineModel::fast_ethernet_p3(),
            ExecMode::Full,
            ExecStrategy::Reference,
            EngineOptions {
                obs: Some(reg_r.clone()),
                ..EngineOptions::default()
            },
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("  reference-strategy run failed: {e}");
                fail(seed, case, "reference strategy failed");
            }
        };
        if let Some(bad) = res
            .data
            .as_ref()
            .unwrap()
            .diff(reference.data.as_ref().unwrap())
        {
            eprintln!("  STRATEGY MISMATCH at {bad:?}");
            fail(seed, case, "compiled/reference strategy data mismatch");
        }
        if res.makespan() != reference.makespan() {
            eprintln!(
                "  makespans: compiled {} reference {}",
                res.makespan(),
                reference.makespan()
            );
            fail(seed, case, "compiled/reference makespan mismatch");
        }
        if res.report.total_bytes() != reference.report.total_bytes() {
            fail(seed, case, "compiled/reference traffic mismatch");
        }
        // Metrics conservation: in a fault-free run every message sent is
        // received exactly once, byte-for-byte, and no fault or reliability
        // counters fire.
        let rep_c = reg_c.run_report(&res.report.local_times);
        let rep_r = reg_r.run_report(&reference.report.local_times);
        for rep in [&rep_c, &rep_r] {
            if rep.total(Counter::MessagesSent) != rep.total(Counter::MessagesReceived) {
                fail(seed, case, "fault-free sends != receives");
            }
            if rep.total(Counter::BytesSent) != rep.total(Counter::BytesReceived) {
                fail(seed, case, "fault-free bytes sent != bytes received");
            }
            if rep.total(Counter::Retransmits) != 0
                || rep.total(Counter::DupsSuppressed) != 0
                || rep.total(Counter::FaultDrops) != 0
            {
                fail(seed, case, "fault counters fired in a fault-free run");
            }
        }
        if rep_c.total(Counter::MessagesSent) != res.report.total_messages()
            || rep_c.total(Counter::BytesSent) != res.report.total_bytes()
        {
            fail(seed, case, "metrics registry disagrees with engine report");
        }
        // STATS-snapshot merge path: what the multi-process TCP driver does
        // (capture a snapshot per rank, merge with `from_snapshots`) must be
        // bitwise indistinguishable from building the report straight off
        // the registry, and each snapshot must survive its own wire codec.
        let snaps: Vec<StatsSnapshot> = (0..plan.num_procs())
            .map(|r| StatsSnapshot::capture(&reg_c.rank_metrics(r)))
            .collect();
        let merged = ObsReport::from_snapshots(&snaps, &res.report.local_times);
        if merged.to_json() != rep_c.to_json() {
            fail(
                seed,
                case,
                "snapshot-merged report differs from registry report",
            );
        }
        if !merged.deterministic_diff(&rep_c).is_empty() {
            fail(seed, case, "snapshot merge broke the deterministic subset");
        }
        let zero = StatsSnapshot::zero();
        for (r, snap) in snaps.iter().enumerate() {
            // Absolute frame (delta against zero) and an idle incremental
            // frame (delta against itself) must both round-trip exactly.
            let abs = snap.encode_delta(&zero);
            match StatsSnapshot::apply_delta(&zero, &abs) {
                Ok(back) if back == *snap => {}
                Ok(_) => fail(seed, case, "absolute stats frame did not round-trip"),
                Err(e) => {
                    eprintln!("  rank {r} absolute stats frame rejected: {e}");
                    fail(seed, case, "absolute stats frame rejected by decoder");
                }
            }
            let idle = snap.encode_delta(snap);
            match StatsSnapshot::apply_delta(snap, &idle) {
                Ok(back) if back == *snap => {}
                _ => fail(seed, case, "idle stats delta did not round-trip"),
            }
            // Truncation anywhere must be a typed error, never a panic or a
            // silent partial decode.
            if !abs.is_empty() && StatsSnapshot::apply_delta(&zero, &abs[..abs.len() - 1]).is_ok() {
                fail(seed, case, "truncated stats frame decoded successfully");
            }
            // Category totals accrue in a different addition order than the
            // chronological engine clock, so the partition identity holds to
            // rounding, not bitwise.
            let clock = res.report.local_times[r];
            if (snap.local_clock() - clock).abs() > 1e-9 * clock.abs().max(1.0) {
                eprintln!(
                    "  rank {r}: snapshot clock {} engine clock {clock}",
                    snap.local_clock()
                );
                fail(seed, case, "snapshot clock partition disagrees with engine");
            }
        }
        // Both strategies must report identical logical counters; only the
        // dispatch counters tell them apart.
        for c in [
            Counter::MessagesSent,
            Counter::BytesSent,
            Counter::MessagesReceived,
            Counter::BytesReceived,
            Counter::Tiles,
            Counter::InteriorTiles,
            Counter::BoundaryTiles,
            Counter::Iterations,
        ] {
            if rep_c.total(c) != rep_r.total(c) {
                eprintln!(
                    "  counter {}: compiled {} reference {}",
                    c.name(),
                    rep_c.total(c),
                    rep_r.total(c)
                );
                fail(seed, case, "compiled/reference logical counter mismatch");
            }
        }
        if rep_c.total(Counter::CompiledDispatches) != rep_c.total(Counter::Tiles)
            || rep_c.total(Counter::ReferenceDispatches) != 0
            || rep_r.total(Counter::ReferenceDispatches) != rep_r.total(Counter::Tiles)
            || rep_r.total(Counter::CompiledDispatches) != 0
        {
            fail(seed, case, "dispatch counters do not match the strategy");
        }
        // VectorizedPoints is a dispatch-shape counter, not a logical one:
        // the reference strategy never batches, and no strategy can batch
        // more points than it iterates. Compiled and overlapped are NOT
        // compared against each other — the boundary/interior split cuts
        // runs differently, so their batch totals legitimately diverge
        // while the data stays bitwise identical (checked above).
        if rep_r.total(Counter::VectorizedPoints) != 0 {
            fail(seed, case, "reference strategy reported batched points");
        }
        if rep_c.total(Counter::VectorizedPoints) > rep_c.total(Counter::Iterations) {
            fail(
                seed,
                case,
                "compiled strategy batched more points than iterations",
            );
        }
        vectorized_points += rep_c.total(Counter::VectorizedPoints);
        // Overlapped strategy: boundary-first execution with sends hidden
        // behind the interior must be a pure schedule change — same data,
        // same traffic, and never a later finish than blocking compiled.
        let reg_o = MetricsRegistry::new();
        let overlapped = match execute_strategy(
            plan.clone(),
            MachineModel::fast_ethernet_p3(),
            ExecMode::Full,
            ExecStrategy::Overlapped,
            EngineOptions {
                obs: Some(reg_o.clone()),
                ..EngineOptions::default()
            },
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("  overlapped-strategy run failed: {e}");
                fail(seed, case, "overlapped strategy failed");
            }
        };
        if let Some(bad) = res
            .data
            .as_ref()
            .unwrap()
            .diff(overlapped.data.as_ref().unwrap())
        {
            eprintln!("  OVERLAPPED MISMATCH at {bad:?}");
            fail(seed, case, "compiled/overlapped strategy data mismatch");
        }
        if overlapped.makespan() > res.makespan() + 1e-12 {
            eprintln!(
                "  makespans: compiled {} overlapped {}",
                res.makespan(),
                overlapped.makespan()
            );
            fail(seed, case, "overlapped strategy slower than blocking");
        }
        if overlapped.report.total_bytes() != res.report.total_bytes()
            || overlapped.report.total_messages() != res.report.total_messages()
        {
            fail(seed, case, "compiled/overlapped traffic mismatch");
        }
        if overlapped.report.total_bytes_received() != overlapped.report.total_bytes() {
            fail(seed, case, "overlapped run lost or invented bytes");
        }
        let rep_o = reg_o.run_report(&overlapped.report.local_times);
        for c in [
            Counter::MessagesSent,
            Counter::BytesSent,
            Counter::MessagesReceived,
            Counter::BytesReceived,
            Counter::Tiles,
            Counter::InteriorTiles,
            Counter::BoundaryTiles,
            Counter::Iterations,
        ] {
            if rep_o.total(c) != rep_c.total(c) {
                eprintln!(
                    "  counter {}: compiled {} overlapped {}",
                    c.name(),
                    rep_c.total(c),
                    rep_o.total(c)
                );
                fail(seed, case, "compiled/overlapped logical counter mismatch");
            }
        }
        if rep_o.total(Counter::CompiledDispatches) != rep_o.total(Counter::Tiles)
            || rep_o.total(Counter::ReferenceDispatches) != 0
        {
            fail(seed, case, "overlapped dispatch counters are wrong");
        }
        if rep_o.total(Counter::VectorizedPoints) > rep_o.total(Counter::Iterations) {
            fail(
                seed,
                case,
                "overlapped strategy batched more points than iterations",
            );
        }
        if tcp && plan.num_procs() <= 8 {
            // Cross-backend check: the same compiled program over real
            // sockets must be indistinguishable from the threaded run —
            // bitwise data, bitwise per-rank clocks, identical counters.
            tcp_cases += 1;
            let tcp_res = match execute_backend(
                plan.clone(),
                MachineModel::fast_ethernet_p3(),
                ExecMode::Full,
                ExecStrategy::Compiled,
                Backend::Tcp,
                EngineOptions::default(),
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  tcp-backend run failed: {e}");
                    fail(seed, case, "tcp backend failed");
                }
            };
            if let Some(bad) = res
                .data
                .as_ref()
                .unwrap()
                .diff(tcp_res.data.as_ref().unwrap())
            {
                eprintln!("  TCP MISMATCH at {bad:?}");
                fail(seed, case, "tcp/threaded data mismatch");
            }
            for rank in 0..plan.num_procs() {
                if res.report.local_times[rank].to_bits()
                    != tcp_res.report.local_times[rank].to_bits()
                {
                    eprintln!(
                        "  rank {rank} clocks: threaded {} tcp {}",
                        res.report.local_times[rank], tcp_res.report.local_times[rank]
                    );
                    fail(seed, case, "tcp/threaded virtual clock mismatch");
                }
            }
            if tcp_res.report.total_messages() != res.report.total_messages()
                || tcp_res.report.total_bytes() != res.report.total_bytes()
                || tcp_res.report.total_bytes_received() != res.report.total_bytes_received()
            {
                fail(seed, case, "tcp/threaded traffic mismatch");
            }
            // The same chaos plan over sockets: faults are decided above
            // the transport, so the perturbed schedule must also agree
            // bitwise, retransmission accounting included.
            let fault_seed = seed ^ case.wrapping_mul(0x9E37_79B9);
            let chaos = FaultPlan::chaos(fault_seed, 0.3);
            let threaded_f = match execute_opts(
                plan.clone(),
                MachineModel::fast_ethernet_p3(),
                ExecMode::Full,
                EngineOptions {
                    fault: Some(chaos.clone()),
                    ..EngineOptions::default()
                },
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  faulty threaded run failed: {e} (fault seed {fault_seed})");
                    fail(seed, case, "threaded backend failed under chaos");
                }
            };
            let tcp_f = match execute_backend(
                plan.clone(),
                MachineModel::fast_ethernet_p3(),
                ExecMode::Full,
                ExecStrategy::Compiled,
                Backend::Tcp,
                EngineOptions {
                    fault: Some(chaos),
                    ..EngineOptions::default()
                },
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  faulty tcp run failed: {e} (fault seed {fault_seed})");
                    fail(seed, case, "tcp backend failed under chaos");
                }
            };
            tcp_chaos_cases += 1;
            if let Some(bad) = threaded_f
                .data
                .as_ref()
                .unwrap()
                .diff(tcp_f.data.as_ref().unwrap())
            {
                eprintln!("  FAULTY TCP MISMATCH at {bad:?} (fault seed {fault_seed})");
                fail(seed, case, "tcp/threaded data mismatch under chaos");
            }
            if threaded_f.makespan().to_bits() != tcp_f.makespan().to_bits() {
                eprintln!(
                    "  chaos makespans: threaded {} tcp {} (fault seed {fault_seed})",
                    threaded_f.makespan(),
                    tcp_f.makespan()
                );
                fail(seed, case, "tcp/threaded makespan mismatch under chaos");
            }
            if threaded_f.report.total_retransmissions() != tcp_f.report.total_retransmissions()
                || threaded_f.report.total_duplicates_suppressed()
                    != tcp_f.report.total_duplicates_suppressed()
            {
                fail(seed, case, "tcp/threaded reliability counters mismatch");
            }
        }
        if faults {
            // Re-run the case over a chaotic substrate seeded per-case: the
            // reliability layer must reproduce the fault-free data bitwise.
            let fault_seed = seed ^ case.wrapping_mul(0x9E37_79B9);
            let reg_f = MetricsRegistry::new();
            let options = EngineOptions {
                fault: Some(FaultPlan::chaos(fault_seed, 0.3)),
                obs: Some(reg_f.clone()),
                ..EngineOptions::default()
            };
            let faulty = match execute_opts(
                plan.clone(),
                MachineModel::fast_ethernet_p3(),
                ExecMode::Full,
                options,
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  fault-injected run failed: {e} (fault seed {fault_seed})");
                    fail(seed, case, "reliability layer failed to mask faults");
                }
            };
            if let Some(bad) = seq.diff(faulty.data.as_ref().unwrap()) {
                eprintln!("  FAULTY MISMATCH at {bad:?} (fault seed {fault_seed})");
                fail(seed, case, "fault-injected result differs from fault-free");
            }
            if faulty.report.total_messages() > 20 && faulty.report.total_retransmissions() == 0 {
                fail(seed, case, "30% drop rate produced no retransmissions");
            }
            // Faulty conservation: the reliability layer delivers exactly
            // once (receives == sends — drops are retried before counting,
            // duplicates are suppressed before counting), every dropped
            // attempt shows up as a retransmission, and suppressions never
            // exceed injected duplicates.
            let rep_f = reg_f.run_report(&faulty.report.local_times);
            if rep_f.total(Counter::MessagesSent) != rep_f.total(Counter::MessagesReceived) {
                fail(seed, case, "faulty run broke exactly-once delivery");
            }
            if rep_f.total(Counter::BytesSent) != rep_f.total(Counter::BytesReceived) {
                fail(seed, case, "faulty run lost or invented bytes");
            }
            if rep_f.total(Counter::Retransmits) != rep_f.total(Counter::FaultDrops) {
                fail(seed, case, "retransmissions != injected drops");
            }
            if rep_f.total(Counter::DupsSuppressed) > rep_f.total(Counter::FaultDups) {
                fail(seed, case, "suppressed more duplicates than were injected");
            }
            // Faults perturb timing, never the logical workload.
            for c in [
                Counter::MessagesSent,
                Counter::BytesSent,
                Counter::Tiles,
                Counter::Iterations,
            ] {
                if rep_f.total(c) != rep_c.total(c) {
                    fail(seed, case, "faults changed the logical workload counters");
                }
            }
            // The overlapped schedule must survive the same chaos plan: its
            // in-flight sends go through the identical reliability layer.
            let faulty_o = match execute_strategy(
                plan.clone(),
                MachineModel::fast_ethernet_p3(),
                ExecMode::Full,
                ExecStrategy::Overlapped,
                EngineOptions {
                    fault: Some(FaultPlan::chaos(fault_seed, 0.3)),
                    ..EngineOptions::default()
                },
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  faulty overlapped run failed: {e} (fault seed {fault_seed})");
                    fail(seed, case, "overlapped strategy failed under faults");
                }
            };
            if let Some(bad) = seq.diff(faulty_o.data.as_ref().unwrap()) {
                eprintln!("  FAULTY OVERLAPPED MISMATCH at {bad:?} (fault seed {fault_seed})");
                fail(seed, case, "fault-injected overlapped result differs");
            }
            if faulty_o.report.total_bytes_received() != faulty_o.report.total_bytes() {
                fail(seed, case, "faulty overlapped run lost or invented bytes");
            }
        }
        if recovery {
            // Crash the busiest rank halfway through its run and recover
            // from checkpoints: the recovered run must reproduce the
            // fault-free data bitwise, and every rank's clock must equal
            // the fault-free clock plus exactly its recovery debt.
            let (crash_rank, peak) = res
                .report
                .local_times
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(r, t)| (r, *t))
                .unwrap();
            let crash = FaultPlan::lossy(0, 0.0).with_crash(crash_rank, peak * 0.5);
            let ropts = |fault: FaultPlan| EngineOptions {
                fault: Some(fault),
                recovery: Some(RecoveryOptions {
                    interval: 2,
                    max_recoveries: 2,
                }),
                ..EngineOptions::default()
            };
            let rec = match execute_opts(
                plan.clone(),
                MachineModel::fast_ethernet_p3(),
                ExecMode::Full,
                ropts(crash.clone()),
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  crashed threaded run failed: {e} (rank {crash_rank} @ {peak})");
                    fail(seed, case, "threaded recovery failed to mask a crash");
                }
            };
            if let Some(bad) = seq.diff(rec.data.as_ref().unwrap()) {
                eprintln!("  RECOVERED MISMATCH at {bad:?} (rank {crash_rank})");
                fail(seed, case, "recovered result differs from fault-free");
            }
            for r in 0..plan.num_procs() {
                let expect = res.report.local_times[r] + rec.report.stats[r].recovery_time;
                if expect.to_bits() != rec.report.local_times[r].to_bits() {
                    eprintln!(
                        "  rank {r}: clean {} + debt {} != recovered {}",
                        res.report.local_times[r],
                        rec.report.stats[r].recovery_time,
                        rec.report.local_times[r]
                    );
                    fail(seed, case, "recovery debt does not settle the clock");
                }
            }
            if rec.report.total_recoveries() > 0 {
                recovered_cases += 1;
            }
            if plan.num_procs() <= 8 {
                // The in-process TCP backend must recover identically:
                // same data, same clocks, same recovery accounting.
                let rec_tcp = match execute_backend(
                    plan.clone(),
                    MachineModel::fast_ethernet_p3(),
                    ExecMode::Full,
                    ExecStrategy::Compiled,
                    Backend::Tcp,
                    ropts(crash),
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("  crashed tcp run failed: {e} (rank {crash_rank} @ {peak})");
                        fail(seed, case, "tcp recovery failed to mask a crash");
                    }
                };
                if let Some(bad) = rec
                    .data
                    .as_ref()
                    .unwrap()
                    .diff(rec_tcp.data.as_ref().unwrap())
                {
                    eprintln!("  RECOVERED TCP MISMATCH at {bad:?} (rank {crash_rank})");
                    fail(seed, case, "tcp/threaded data mismatch after recovery");
                }
                for r in 0..plan.num_procs() {
                    if rec.report.local_times[r].to_bits()
                        != rec_tcp.report.local_times[r].to_bits()
                    {
                        fail(seed, case, "tcp/threaded clock mismatch after recovery");
                    }
                }
                if rec.report.total_recoveries() != rec_tcp.report.total_recoveries()
                    || rec.report.total_recovery_time().to_bits()
                        != rec_tcp.report.total_recovery_time().to_bits()
                {
                    fail(seed, case, "tcp/threaded recovery accounting mismatch");
                }
            }
        }
    }
    if recovery {
        if recovered_cases == 0 {
            eprintln!("--recovery never observed an actual crash — corpus too small");
            fail(seed, cases, "recovery cross-check never fired");
        }
        eprintln!("recovery cross-check: {recovered_cases} cases survived a mid-run crash");
    }
    if tune {
        if tune_cases == 0 {
            eprintln!("--tune never executed a tuner-generated tiling — corpus too small");
            fail(seed, cases, "tune cross-check never ran");
        }
        eprintln!("tune cross-check: {tune_cases} tuner-generated tilings executed");
    }
    if tcp {
        if tcp_cases == 0 || tcp_chaos_cases == 0 {
            eprintln!(
                "--tcp covered {tcp_cases} clean / {tcp_chaos_cases} chaos cases — corpus too small"
            );
            fail(seed, cases, "tcp cross-check never ran");
        }
        eprintln!("tcp cross-check: {tcp_cases} clean + {tcp_chaos_cases} chaos cases");
    }
    // The batched hot path must actually fire across a random corpus —
    // every batched point above went through the bitwise data comparison,
    // so this is the coverage half of the "vectorized == reference" check.
    // Small corpora can legitimately miss it (seed 42 first batches in
    // case 16), so only CI-sized runs enforce coverage.
    if cases >= 25 && vectorized_points == 0 {
        fail(seed, cases, "no case ever took the batched compute path");
    }
    eprintln!("vectorized coverage: {vectorized_points} batched points across the corpus");
    eprintln!(
        "all {cases} cases passed{}",
        if faults {
            " (with fault injection)"
        } else {
            ""
        }
    );
}
