//! Figure 6: SOR — speedups for various tile sizes (M=100, N=200).

use tilecc_bench::*;

fn main() {
    let model = default_model();
    let series = run_sor(&sor_spaces()[..1], model, true);
    write_record(&FigureRecord {
        figure: "fig6".into(),
        description: "SOR: speedups for various tile sizes (M=100, N=200)".into(),
        machine_model: "fast_ethernet_p3".into(),
        series,
    });
}
