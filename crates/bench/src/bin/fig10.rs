//! Figure 10: ADI integration — speedups for various tile sizes (T=100, N=256).

use tilecc_bench::*;

fn main() {
    let model = default_model();
    let series = run_adi(&adi_spaces()[..1], model, true);
    write_record(&FigureRecord {
        figure: "fig10".into(),
        description: "ADI: speedups for various tile sizes (T=100, N=256)".into(),
        machine_model: "fast_ethernet_p3".into(),
        series,
    });
}
