//! Ablation study: how the design choices of DESIGN.md affect the simulated
//! completion time.
//!
//! 1. Mapping-dimension choice — the paper (after [3]) maps tile chains
//!    along the dimension with the maximum tile count.
//! 2. Tile-shape ladder for ADI — interior row vs. cone-surface rows.
//! 3. LDS condensation — memory cells allocated per processor, condensed
//!    vs. naive TTIS-image allocation.

use std::sync::Arc;
use tilecc::{matrices, measure, Variant, Workload};
use tilecc_cluster::{CommScheme, MachineModel};
use tilecc_linalg::RMat;
use tilecc_loopnest::kernels;
use tilecc_parcode::{execute, ExecMode, ParallelPlan};
use tilecc_tiling::{CommPlan, LdsGeometry, TiledSpace, TilingTransform};

fn main() {
    let model = MachineModel::fast_ethernet_p3();

    println!("== 1. Mapping-dimension choice (ADI T=64, N=48, tiles 8x12x12) ==");
    for m in 0..3usize {
        let alg = kernels::adi(64, 48);
        let t = TilingTransform::new(matrices::rect(8, 12, 12)).unwrap();
        let plan = Arc::new(ParallelPlan::new(alg, t, Some(m)).unwrap());
        let tiles_along: Vec<i64> = (0..3)
            .map(|k| {
                let mut p = plan.tiled.shadow().clone();
                for v in (0..3).rev() {
                    if v != k {
                        p = p.eliminate(v).unwrap();
                    }
                }
                let (lo, hi) = p.integer_bounds(0, &[]).unwrap();
                hi - lo + 1
            })
            .collect();
        let res = execute(plan.clone(), model, ExecMode::TimingOnly);
        println!(
            "  m = {m} (tile counts {:?}): {} procs, makespan {:.5} s",
            tiles_along,
            plan.num_procs(),
            res.makespan()
        );
    }
    println!("  (the paper maps along the longest dimension — here m = 0)");

    println!("\n== 2. ADI tile-shape ladder (T=40, N=64, grid 17x17, x=8) ==");
    let w = Workload::Adi { t: 40, n: 64 };
    for v in [
        Variant::Rect,
        Variant::AdiNr1,
        Variant::AdiNr2,
        Variant::AdiNr3,
    ] {
        let p = measure(w, v, (8, 17, 17), model);
        println!(
            "  {:<5} makespan {:.5} s  speedup {:.3}  predicted steps {:.1}",
            p.variant, p.makespan, p.speedup, p.predicted_steps
        );
    }

    println!("\n== 3. LDS condensation (strided tiling, 4-tile chain) ==");
    let t = TilingTransform::new(RMat::from_fractions(&[
        &[(1, 8), (1, 16), (0, 1)],
        &[(0, 1), (1, 8), (0, 1)],
        &[(0, 1), (0, 1), (1, 8)],
    ]))
    .unwrap();
    let alg = kernels::adi(32, 32);
    let tiled = TiledSpace::new(t.clone(), alg.nest.space().clone()).unwrap();
    let plan = CommPlan::new(&tiled, alg.nest.deps(), 0);
    let geo = LdsGeometry::new(&t, &plan);
    let condensed: i64 = geo.extents(4).iter().product();
    let naive: i64 = t.v()[0] * 4 * t.v()[1] * t.v()[2];
    println!("  TTIS strides c = {:?}", t.strides());
    println!("  condensed LDS cells : {condensed}");
    println!("  naive TTIS image    : {naive}");
    println!(
        "  compression         : {:.2}x",
        naive as f64 / condensed as f64
    );
    println!("\n== 4. Communication overlap (future work [8]) — SOR M=40 N=60, tiles 11x26x10 ==");
    let alg = kernels::sor_skewed(40, 60, 1.1);
    let t = TilingTransform::new(matrices::sor_nr(11, 26, 10)).unwrap();
    let plan = Arc::new(ParallelPlan::new(alg, t, Some(2)).unwrap());
    let blocking = tilecc_parcode::execute_with(
        plan.clone(),
        model,
        ExecMode::TimingOnly,
        CommScheme::Blocking,
    );
    let overlapped =
        tilecc_parcode::execute_with(plan, model, ExecMode::TimingOnly, CommScheme::Overlapped);
    println!("  blocking   makespan {:.5} s", blocking.makespan());
    println!(
        "  overlapped makespan {:.5} s ({:.1}% faster)",
        overlapped.makespan(),
        (blocking.makespan() - overlapped.makespan()) / blocking.makespan() * 100.0
    );
}
