//! Shared experiment harness for regenerating the paper's figures.
//!
//! Each `fig*` binary reproduces one figure of §4: it picks grid factors so
//! the distribution uses (as close as possible to) the paper's 16
//! processors, sweeps the chain-dimension tile factor, simulates rectangular
//! and non-rectangular tilings on the modelled cluster, prints the series,
//! and writes a JSON record under `results/`.

pub mod harness;

use std::path::Path;
use tilecc::{measure, probe_procs, MeasuredPoint, Variant, Workload};
use tilecc_cluster::MachineModel;

/// The paper's target process count.
pub const TARGET_PROCS: usize = 16;

/// The default machine model (see `MachineModel::fast_ethernet_p3`).
pub fn default_model() -> MachineModel {
    MachineModel::fast_ethernet_p3()
}

/// A figure record written to `results/<name>.json`.
pub struct FigureRecord {
    pub figure: String,
    pub description: String,
    pub machine_model: String,
    pub series: Vec<SeriesRecord>,
}

/// One workload's sweep within a figure.
pub struct SeriesRecord {
    pub workload: String,
    pub grid_factors: (i64, i64, i64),
    pub points: Vec<MeasuredPoint>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `f64` as JSON: finite values print with enough digits to round-trip;
/// non-finite values (never produced by a healthy run) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Ensure a number like `3` keeps a float shape for typed readers.
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn point_json(p: &MeasuredPoint, indent: &str) -> String {
    format!(
        "{indent}{{\n\
         {indent}  \"variant\": \"{}\",\n\
         {indent}  \"factors\": [{}, {}, {}],\n\
         {indent}  \"tile_size\": {},\n\
         {indent}  \"procs\": {},\n\
         {indent}  \"sequential_time\": {},\n\
         {indent}  \"makespan\": {},\n\
         {indent}  \"speedup\": {},\n\
         {indent}  \"predicted_steps\": {},\n\
         {indent}  \"bytes\": {}\n\
         {indent}}}",
        json_escape(p.variant),
        p.factors.0,
        p.factors.1,
        p.factors.2,
        p.tile_size,
        p.procs,
        json_f64(p.sequential_time),
        json_f64(p.makespan),
        json_f64(p.speedup),
        json_f64(p.predicted_steps),
        p.bytes,
    )
}

impl FigureRecord {
    /// Pretty-printed JSON (hand-rolled: the build is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"figure\": \"{}\",\n",
            json_escape(&self.figure)
        ));
        s.push_str(&format!(
            "  \"description\": \"{}\",\n",
            json_escape(&self.description)
        ));
        s.push_str(&format!(
            "  \"machine_model\": \"{}\",\n",
            json_escape(&self.machine_model)
        ));
        s.push_str("  \"series\": [\n");
        for (i, ser) in self.series.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!(
                "      \"workload\": \"{}\",\n",
                json_escape(&ser.workload)
            ));
            s.push_str(&format!(
                "      \"grid_factors\": [{}, {}, {}],\n",
                ser.grid_factors.0, ser.grid_factors.1, ser.grid_factors.2
            ));
            s.push_str("      \"points\": [\n");
            let pts: Vec<String> = ser
                .points
                .iter()
                .map(|p| point_json(p, "        "))
                .collect();
            s.push_str(&pts.join(",\n"));
            s.push_str("\n      ]\n");
            s.push_str(if i + 1 < self.series.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ]\n}");
        s
    }
}

/// Search the two processor-grid factors so the distribution hits
/// `TARGET_PROCS` processors (exact match preferred, otherwise closest).
///
/// `mk(a, b)` builds the full factor triple from the two grid factors; the
/// chain-dimension factor in the triple only affects chain lengths, never
/// the processor count, so a small value keeps probing cheap.
pub fn search_grid(
    workload: Workload,
    a_range: impl Iterator<Item = i64> + Clone,
    b_range: impl Iterator<Item = i64> + Clone,
    mk: impl Fn(i64, i64) -> (i64, i64, i64),
) -> (i64, i64) {
    let mut best: Option<(i64, i64, usize)> = None;
    for a in a_range {
        for b in b_range.clone() {
            let procs = probe_procs(workload, Variant::Rect, mk(a, b));
            let dist = procs.abs_diff(TARGET_PROCS);
            if dist == 0 {
                return (a, b);
            }
            if best.is_none_or(|(_, _, d)| dist < d) {
                best = Some((a, b, dist));
            }
        }
    }
    let (a, b, _) = best.expect("empty search range");
    (a, b)
}

/// Sweep `variants × chain_factors` for one workload with fixed grid
/// factors. `mk(c)` builds the factor triple for chain factor `c`.
pub fn sweep(
    workload: Workload,
    variants: &[Variant],
    chain_factors: &[i64],
    mk: impl Fn(i64) -> (i64, i64, i64),
    model: MachineModel,
) -> Vec<MeasuredPoint> {
    let mut out = Vec::new();
    for &c in chain_factors {
        for &v in variants {
            out.push(measure(workload, v, mk(c), model));
        }
    }
    out
}

/// The best (maximum-speedup) point per variant — the per-space bars of
/// Figures 5, 7 and 9.
pub fn best_per_variant(points: &[MeasuredPoint]) -> Vec<&MeasuredPoint> {
    let mut variants: Vec<&'static str> = vec![];
    for p in points {
        if !variants.contains(&p.variant) {
            variants.push(p.variant);
        }
    }
    variants
        .into_iter()
        .map(|v| {
            points
                .iter()
                .filter(|p| p.variant == v)
                .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
                .expect("variant has points")
        })
        .collect()
}

/// Render a fixed-width table of measured points.
pub fn print_points(points: &[MeasuredPoint]) {
    println!(
        "{:<10} {:>4} {:>4} {:>4} {:>9} {:>6} {:>12} {:>12} {:>8} {:>10}",
        "variant", "x", "y", "z", "tilesize", "procs", "seq(s)", "par(s)", "speedup", "steps"
    );
    for p in points {
        println!(
            "{:<10} {:>4} {:>4} {:>4} {:>9} {:>6} {:>12.6} {:>12.6} {:>8.3} {:>10.1}",
            p.variant,
            p.factors.0,
            p.factors.1,
            p.factors.2,
            p.tile_size,
            p.procs,
            p.sequential_time,
            p.makespan,
            p.speedup,
            p.predicted_steps,
        );
    }
}

/// Write a figure record as pretty JSON under `results/`.
pub fn write_record(record: &FigureRecord) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{}.json", record.figure));
    std::fs::write(&path, record.to_json()).expect("write record");
    println!("\nwrote {}", path.display());
}

/// Percentage improvement of the best `nr_label` speedup over the best
/// rectangular one.
pub fn improvement_pct(points: &[MeasuredPoint], nr_label: &str) -> f64 {
    let best = |label: &str| {
        points
            .iter()
            .filter(|p| p.variant == label)
            .map(|p| p.speedup)
            .fold(f64::MIN, f64::max)
    };
    let r = best("rect");
    let nr = best(nr_label);
    (nr - r) / r * 100.0
}

// ---------------------------------------------------------------------------
// Figure configurations (spaces + sweeps), shared by binaries and benches.
// ---------------------------------------------------------------------------

/// The four SOR iteration spaces of Figure 5 (the first is Figure 6's).
pub fn sor_spaces() -> Vec<Workload> {
    vec![
        Workload::Sor { m: 100, n: 200 },
        Workload::Sor { m: 100, n: 100 },
        Workload::Sor { m: 200, n: 200 },
        Workload::Sor { m: 150, n: 300 },
    ]
}

/// The four Jacobi iteration spaces of Figure 7 (the first is Figure 8's).
pub fn jacobi_spaces() -> Vec<Workload> {
    vec![
        Workload::Jacobi {
            t: 50,
            i: 100,
            j: 100,
        },
        Workload::Jacobi {
            t: 50,
            i: 200,
            j: 200,
        },
        Workload::Jacobi {
            t: 100,
            i: 100,
            j: 100,
        },
        Workload::Jacobi {
            t: 100,
            i: 200,
            j: 200,
        },
    ]
}

/// The four ADI iteration spaces of Figure 9 (the first is Figure 10's).
pub fn adi_spaces() -> Vec<Workload> {
    vec![
        Workload::Adi { t: 100, n: 256 },
        Workload::Adi { t: 100, n: 128 },
        Workload::Adi { t: 200, n: 128 },
        Workload::Adi { t: 200, n: 256 },
    ]
}

/// Grid factors for a SOR space: `x` tiles the skewed time extent, `y` the
/// skewed `i` extent (mapping dimension is the third). Returns `(x, y)`.
pub fn sor_grid(w: Workload) -> (i64, i64) {
    let Workload::Sor { m, n } = w else {
        panic!("not a SOR workload")
    };
    let x0 = (m + 3) / 4;
    let y0 = (m + n + 3) / 4;
    search_grid(w, x0..x0 + 4, y0 - 8..y0 + 12, |x, y| (x, y, 8))
}

/// Grid factors for Jacobi/ADI spaces (mapping dimension first): `(y, z)`.
/// For Jacobi, `y` is restricted to even values: the non-rectangular Jacobi
/// tiling `H_nr = [[1/x,−1/(2x),0],…]` has integral tile side-vectors
/// (`P = H⁻¹ ∈ Zⁿ`) only for even `y`.
pub fn yz_grid(w: Workload, iext: i64, jext: i64) -> (i64, i64) {
    let y0 = (iext + 3) / 4;
    let z0 = (jext + 3) / 4;
    if matches!(w, Workload::Jacobi { .. }) {
        let y0 = y0 + (y0 % 2);
        search_grid(
            w,
            (y0 - 6..y0 + 10).filter(|y| y % 2 == 0),
            z0 - 6..z0 + 10,
            |y, z| (8, y, z),
        )
    } else {
        search_grid(w, y0 - 6..y0 + 10, z0 - 6..z0 + 10, |y, z| (8, y, z))
    }
}

/// Chain-factor sweep for a chain dimension of extent `ext`: a spread of
/// tile lengths from fine to coarse.
pub fn chain_sweep(ext: i64) -> Vec<i64> {
    let candidates = [
        ext / 32,
        ext / 20,
        ext / 12,
        ext / 8,
        ext / 5,
        ext / 3,
        ext / 2,
    ];
    let mut out: Vec<i64> = candidates.into_iter().filter(|&c| c >= 2).collect();
    out.dedup();
    out
}

// ---------------------------------------------------------------------------
// Figure drivers (shared by the fig* binaries).
// ---------------------------------------------------------------------------

/// Run the SOR experiment over `spaces`; returns one series per space.
pub fn run_sor(spaces: &[Workload], model: MachineModel, verbose: bool) -> Vec<SeriesRecord> {
    let mut series = vec![];
    for &w in spaces {
        let Workload::Sor { m, n } = w else {
            panic!("not SOR")
        };
        let (x, y) = sor_grid(w);
        let factors = chain_sweep(2 * m + n - 2);
        let pts = sweep(
            w,
            &[Variant::Rect, Variant::NonRect],
            &factors,
            |z| (x, y, z),
            model,
        );
        if verbose {
            println!(
                "\n=== {} — grid x={x} y={y}, {} procs ===",
                w.label(),
                pts[0].procs
            );
            print_points(&pts);
            println!(
                "best-speedup improvement (non-rect over rect): {:+.1}%",
                improvement_pct(&pts, "non-rect")
            );
        }
        series.push(SeriesRecord {
            workload: w.label(),
            grid_factors: (x, y, 0),
            points: pts,
        });
    }
    series
}

/// Run the Jacobi experiment over `spaces`.
pub fn run_jacobi(spaces: &[Workload], model: MachineModel, verbose: bool) -> Vec<SeriesRecord> {
    let mut series = vec![];
    for &w in spaces {
        let Workload::Jacobi { t, i, j } = w else {
            panic!("not Jacobi")
        };
        let (y, z) = yz_grid(w, t + i - 1, t + j - 1);
        let factors = chain_sweep(t);
        let pts = sweep(
            w,
            &[Variant::Rect, Variant::NonRect],
            &factors,
            |x| (x, y, z),
            model,
        );
        if verbose {
            println!(
                "\n=== {} — grid y={y} z={z}, {} procs ===",
                w.label(),
                pts[0].procs
            );
            print_points(&pts);
            println!(
                "best-speedup improvement (non-rect over rect): {:+.1}%",
                improvement_pct(&pts, "non-rect")
            );
        }
        series.push(SeriesRecord {
            workload: w.label(),
            grid_factors: (0, y, z),
            points: pts,
        });
    }
    series
}

/// Run the ADI experiment (all four tiling variants) over `spaces`.
pub fn run_adi(spaces: &[Workload], model: MachineModel, verbose: bool) -> Vec<SeriesRecord> {
    let mut series = vec![];
    for &w in spaces {
        let Workload::Adi { t, n } = w else {
            panic!("not ADI")
        };
        let (y, z) = yz_grid(w, n, n);
        let factors = chain_sweep(t);
        let variants = [
            Variant::Rect,
            Variant::AdiNr1,
            Variant::AdiNr2,
            Variant::AdiNr3,
        ];
        let pts = sweep(w, &variants, &factors, |x| (x, y, z), model);
        if verbose {
            println!(
                "\n=== {} — grid y={y} z={z}, {} procs ===",
                w.label(),
                pts[0].procs
            );
            print_points(&pts);
            println!(
                "best-speedup improvement (nr3 over rect): {:+.1}%",
                improvement_pct(&pts, "nr3")
            );
        }
        series.push(SeriesRecord {
            workload: w.label(),
            grid_factors: (0, y, z),
            points: pts,
        });
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_record_renders_valid_json_shape() {
        let rec = FigureRecord {
            figure: "fig-test".into(),
            description: "a \"quoted\" description".into(),
            machine_model: "model".into(),
            series: vec![SeriesRecord {
                workload: "SOR M=8 N=8".into(),
                grid_factors: (2, 3, 0),
                points: vec![MeasuredPoint {
                    variant: "rect",
                    factors: (2, 3, 4),
                    tile_size: 24,
                    procs: 6,
                    sequential_time: 1.5,
                    makespan: 0.5,
                    speedup: 3.0,
                    predicted_steps: 12.0,
                    bytes: 1024,
                }],
            }],
        };
        let json = rec.to_json();
        assert!(json.contains("\"figure\": \"fig-test\""), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "escaping: {json}");
        assert!(json.contains("\"factors\": [2, 3, 4]"), "{json}");
        assert!(json.contains("\"speedup\": 3.0"), "float shape: {json}");
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
