//! A minimal, dependency-free benchmark harness for the `[[bench]]` targets
//! (`harness = false`).
//!
//! Under `cargo bench` each registered closure is warmed up once and then
//! timed over enough iterations to fill a small measurement budget; the mean
//! and min wall time per iteration are printed. Under `cargo test` (cargo
//! passes `--test` to bench binaries) every closure runs exactly once as a
//! smoke test, so benches stay compile- and run-checked by the test suite.

use std::time::{Duration, Instant};

/// Per-iteration measurement budget under `cargo bench`.
const BUDGET: Duration = Duration::from_millis(300);
/// Minimum measured iterations per benchmark.
const MIN_ITERS: u32 = 3;

pub struct Harness {
    /// `--test` mode: run each bench once, don't measure.
    smoke: bool,
    /// Substring filter from the command line, if any.
    filter: Option<String>,
    ran: usize,
}

impl Harness {
    /// Build from `std::env::args`: detects cargo's `--test` flag and takes
    /// the first free argument as a name filter.
    pub fn from_args() -> Self {
        let mut smoke = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Harness {
            smoke,
            filter,
            ran: 0,
        }
    }

    /// Run (or smoke-run) one benchmark.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;
        if self.smoke {
            f();
            println!("{name}: ok (smoke)");
            return;
        }
        f(); // warm-up
        let mut iters: u32 = 0;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        while iters < MIN_ITERS || total < BUDGET {
            let t0 = Instant::now();
            f();
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            iters += 1;
        }
        let mean = total / iters;
        println!(
            "{name}: mean {:>12} min {:>12}  ({iters} iters)",
            fmt_duration(mean),
            fmt_duration(min)
        );
    }

    /// Print the trailer. Call at the end of `main`.
    pub fn finish(self) {
        if self.ran == 0 {
            println!(
                "no benchmarks matched{}",
                self.filter.map(|f| format!(" `{f}`")).unwrap_or_default()
            );
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}
