//! Micro-benchmarks of the compiler's building blocks: Hermite Normal Form,
//! Fourier–Motzkin elimination, TTIS lattice traversal, tile-dependence
//! computation, and the `loc`/`loc⁻¹` address translations.
//!
//! Runs under the dependency-free harness in `tilecc_bench::harness`; under
//! `cargo test` each benchmark executes once as a smoke test.

use std::hint::black_box;
use tilecc::matrices;
use tilecc_bench::harness::Harness;
use tilecc_linalg::{column_hnf, IMat, Lattice};
use tilecc_loopnest::kernels;
use tilecc_parcode::ParallelPlan;
use tilecc_polytope::{Constraint, LoopNestBounds, Polyhedron};
use tilecc_tiling::{TiledSpace, TilingTransform};

fn bench_hnf(h: &mut Harness) {
    let matrices: Vec<IMat> = vec![
        IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[-1, 0, 1]]),
        IMat::from_rows(&[&[2, 1, 0], &[0, 1, 0], &[0, 0, 1]]),
        IMat::from_rows(&[&[3, 1, -2], &[-1, 4, 2], &[5, 0, 7]]),
        IMat::from_rows(&[
            &[4, 1, -2, 3],
            &[-1, 4, 2, 0],
            &[5, 0, 7, 1],
            &[2, -3, 1, 6],
        ]),
    ];
    h.bench("hnf/column_hnf_batch", || {
        for m in &matrices {
            black_box(column_hnf(black_box(m)));
        }
    });
}

fn bench_fourier_motzkin(h: &mut Harness) {
    // The SOR tile-space projection: 6 variables down to 3.
    let alg = kernels::sor_skewed(50, 100, 1.0);
    let space = alg.nest.space().clone();
    let t = TilingTransform::new(matrices::sor_nr(13, 38, 25)).unwrap();
    h.bench("fm/tile_space_projection_sor", || {
        black_box(TiledSpace::new(t.clone(), space.clone()).unwrap());
    });

    let mut p = Polyhedron::universe(4);
    p.add(Constraint::new(vec![1, 0, 0, 0], 0));
    p.add(Constraint::new(vec![-1, 0, 0, 0], 50));
    p.add(Constraint::new(vec![-1, 1, 0, 0], 0));
    p.add(Constraint::new(vec![1, -1, 1, 0], 30));
    p.add(Constraint::new(vec![0, 2, -1, 1], 10));
    p.add(Constraint::new(vec![0, -2, 1, -1], 40));
    p.add(Constraint::new(vec![0, 0, 1, 1], 5));
    p.add(Constraint::new(vec![0, 0, -1, -1], 60));
    h.bench("fm/project_4d_to_1d", || {
        black_box(black_box(&p).project_onto_first(1).unwrap());
    });
}

fn bench_lattice_walk(h: &mut Harness) {
    // Sparse lattice (index 2) in a 32³ box.
    let basis = IMat::from_rows(&[&[2, 1, 0], &[0, 1, 0], &[0, 0, 1]]);
    let lat = Lattice::from_columns(&basis);
    let lo = vec![0i64; 3];
    let hi = vec![32i64; 3];
    h.bench("lattice/walk_32cubed_index2", || {
        black_box(lat.points_in_box(&lo, &hi).count());
    });
    let dense = Lattice::standard(3);
    h.bench("lattice/walk_32cubed_dense", || {
        black_box(dense.points_in_box(&lo, &hi).count());
    });
}

fn bench_tile_deps(h: &mut Harness) {
    let alg = kernels::sor_skewed(30, 60, 1.0);
    let space = alg.nest.space().clone();
    let deps = alg.nest.deps().clone();
    let t = TilingTransform::new(matrices::sor_nr(8, 23, 15)).unwrap();
    let tiled = TiledSpace::new(t, space).unwrap();
    h.bench("tiling/tile_deps_sor_nr", || {
        black_box(tiled.tile_deps(black_box(&deps)));
    });
}

fn bench_loc_round_trip(h: &mut Harness) {
    let alg = kernels::sor_skewed(10, 16, 1.0);
    let t = TilingTransform::new(matrices::sor_nr(3, 7, 5)).unwrap();
    let plan = ParallelPlan::new(alg, t, Some(2)).unwrap();
    let points: Vec<Vec<i64>> = plan.tiled.space_bounds().points().collect();
    h.bench("plan/loc_loc_inv_per_point", || {
        for j in &points {
            let (pid, addr) = plan.loc(j);
            black_box(plan.loc_inv(&pid, &addr));
        }
    });
}

fn bench_point_scan(h: &mut Harness) {
    let alg = kernels::sor_skewed(16, 24, 1.0);
    let bounds = LoopNestBounds::new(alg.nest.space()).unwrap();
    h.bench("polytope/scan_skewed_sor_space", || {
        black_box(bounds.points().count());
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_hnf(&mut h);
    bench_fourier_motzkin(&mut h);
    bench_lattice_walk(&mut h);
    bench_tile_deps(&mut h);
    bench_loc_round_trip(&mut h);
    bench_point_scan(&mut h);
    h.finish();
}
