//! Micro-benchmarks of the compiler's building blocks: Hermite Normal Form,
//! Fourier–Motzkin elimination, TTIS lattice traversal, tile-dependence
//! computation, and the `loc`/`loc⁻¹` address translations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tilecc::matrices;
use tilecc_linalg::{column_hnf, IMat, Lattice};
use tilecc_loopnest::kernels;
use tilecc_parcode::ParallelPlan;
use tilecc_polytope::{Constraint, LoopNestBounds, Polyhedron};
use tilecc_tiling::{TiledSpace, TilingTransform};

fn bench_hnf(c: &mut Criterion) {
    let matrices: Vec<IMat> = vec![
        IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[-1, 0, 1]]),
        IMat::from_rows(&[&[2, 1, 0], &[0, 1, 0], &[0, 0, 1]]),
        IMat::from_rows(&[&[3, 1, -2], &[-1, 4, 2], &[5, 0, 7]]),
        IMat::from_rows(&[&[4, 1, -2, 3], &[-1, 4, 2, 0], &[5, 0, 7, 1], &[2, -3, 1, 6]]),
    ];
    c.bench_function("hnf/column_hnf_batch", |b| {
        b.iter(|| {
            for m in &matrices {
                black_box(column_hnf(black_box(m)));
            }
        })
    });
}

fn bench_fourier_motzkin(c: &mut Criterion) {
    // The SOR tile-space projection: 6 variables down to 3.
    let alg = kernels::sor_skewed(50, 100, 1.0);
    let space = alg.nest.space().clone();
    let t = TilingTransform::new(matrices::sor_nr(13, 38, 25)).unwrap();
    c.bench_function("fm/tile_space_projection_sor", |b| {
        b.iter(|| black_box(TiledSpace::new(t.clone(), space.clone())))
    });

    let mut p = Polyhedron::universe(4);
    p.add(Constraint::new(vec![1, 0, 0, 0], 0));
    p.add(Constraint::new(vec![-1, 0, 0, 0], 50));
    p.add(Constraint::new(vec![-1, 1, 0, 0], 0));
    p.add(Constraint::new(vec![1, -1, 1, 0], 30));
    p.add(Constraint::new(vec![0, 2, -1, 1], 10));
    p.add(Constraint::new(vec![0, -2, 1, -1], 40));
    p.add(Constraint::new(vec![0, 0, 1, 1], 5));
    p.add(Constraint::new(vec![0, 0, -1, -1], 60));
    c.bench_function("fm/project_4d_to_1d", |b| {
        b.iter(|| black_box(black_box(&p).project_onto_first(1)))
    });
}

fn bench_lattice_walk(c: &mut Criterion) {
    // Sparse lattice (index 2) in a 32³ box.
    let basis = IMat::from_rows(&[&[2, 1, 0], &[0, 1, 0], &[0, 0, 1]]);
    let lat = Lattice::from_columns(&basis);
    let lo = vec![0i64; 3];
    let hi = vec![32i64; 3];
    c.bench_function("lattice/walk_32cubed_index2", |b| {
        b.iter(|| black_box(lat.points_in_box(&lo, &hi).count()))
    });
    let dense = Lattice::standard(3);
    c.bench_function("lattice/walk_32cubed_dense", |b| {
        b.iter(|| black_box(dense.points_in_box(&lo, &hi).count()))
    });
}

fn bench_tile_deps(c: &mut Criterion) {
    let alg = kernels::sor_skewed(30, 60, 1.0);
    let space = alg.nest.space().clone();
    let deps = alg.nest.deps().clone();
    let t = TilingTransform::new(matrices::sor_nr(8, 23, 15)).unwrap();
    let tiled = TiledSpace::new(t, space);
    c.bench_function("tiling/tile_deps_sor_nr", |b| {
        b.iter(|| black_box(tiled.tile_deps(black_box(&deps))))
    });
}

fn bench_loc_round_trip(c: &mut Criterion) {
    let alg = kernels::sor_skewed(10, 16, 1.0);
    let t = TilingTransform::new(matrices::sor_nr(3, 7, 5)).unwrap();
    let plan = ParallelPlan::new(alg, t, Some(2)).unwrap();
    let points: Vec<Vec<i64>> = plan.tiled.space_bounds().points().collect();
    c.bench_function("plan/loc_loc_inv_per_point", |b| {
        b.iter(|| {
            for j in &points {
                let (pid, addr) = plan.loc(j);
                black_box(plan.loc_inv(&pid, &addr));
            }
        })
    });
}

fn bench_point_scan(c: &mut Criterion) {
    let alg = kernels::sor_skewed(16, 24, 1.0);
    let bounds = LoopNestBounds::new(alg.nest.space());
    c.bench_function("polytope/scan_skewed_sor_space", |b| {
        b.iter(|| black_box(bounds.points().count()))
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_hnf,
    bench_fourier_motzkin,
    bench_lattice_walk,
    bench_tile_deps,
    bench_loc_round_trip,
    bench_point_scan
);
criterion_main!(micro);
