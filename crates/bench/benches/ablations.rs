//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * `lds_ablation` — condensed LDS addressing (the paper's `map()` with
//!   stride division) vs. a naive uncondensed TTIS-image array. The paper
//!   argues condensation both saves memory and exploits cache locality.
//! * `clamp_ablation` — per-point membership testing on every tile vs. the
//!   convexity-based interior-tile fast path.
//! * `mapping_ablation` — wall cost of simulating under each mapping
//!   dimension (the makespans themselves are printed by the `ablation`
//!   binary).
//!
//! Runs under the dependency-free harness in `tilecc_bench::harness`; under
//! `cargo test` each benchmark executes once as a smoke test.

use std::hint::black_box;
use tilecc::matrices;
use tilecc_bench::harness::Harness;
use tilecc_linalg::RMat;
use tilecc_loopnest::kernels;
use tilecc_parcode::ParallelPlan;
use tilecc_tiling::{CommPlan, Lds, LdsGeometry, TiledSpace, TilingTransform};

/// A tiling with non-unit strides so condensation actually compresses.
fn strided_transform() -> TilingTransform {
    TilingTransform::new(RMat::from_fractions(&[
        &[(1, 8), (1, 16), (0, 1)],
        &[(0, 1), (1, 8), (0, 1)],
        &[(0, 1), (0, 1), (1, 8)],
    ]))
    .unwrap()
}

fn lds_ablation(h: &mut Harness) {
    let t = strided_transform();
    let alg = kernels::adi(32, 32);
    let tiled = TiledSpace::new(t.clone(), alg.nest.space().clone()).unwrap();
    let plan = CommPlan::new(&tiled, alg.nest.deps(), 0);
    let geo = LdsGeometry::new(&t, &plan);
    let num_tiles = 4i64;
    let points: Vec<Vec<i64>> = t.ttis_points().collect();

    let mut lds = Lds::new(geo.clone(), vec![0, 0, 0], num_tiles);
    h.bench("lds_ablation/condensed_map_write_read", || {
        let mut acc = 0.0;
        for tp in 0..num_tiles {
            for jp in &points {
                let gg = lds.unrolled(tp, jp);
                lds.set(&gg, (gg[0] + gg[1]) as f64);
                acc += lds.get(&gg);
            }
        }
        black_box(acc);
    });

    // Uncondensed: one cell per TTIS *box* coordinate (holes wasted).
    let v = t.v().to_vec();
    let ext = [v[0] * num_tiles, v[1], v[2]];
    let mut arr = vec![0.0f64; (ext[0] * ext[1] * ext[2]) as usize];
    h.bench("lds_ablation/naive_ttis_image_write_read", || {
        let mut acc = 0.0;
        for tp in 0..num_tiles {
            for jp in &points {
                let idx = (((tp * v[0] + jp[0]) * ext[1] + jp[1]) * ext[2] + jp[2]) as usize;
                arr[idx] = (jp[0] + jp[1]) as f64;
                acc += arr[idx];
            }
        }
        black_box(acc);
    });

    // Memory footprint comparison is asserted (the paper's storage claim).
    let condensed_cells: i64 = geo.extents(num_tiles).iter().product();
    let naive_cells: i64 = t.v()[0] * num_tiles * t.v()[1] * t.v()[2];
    assert!(
        condensed_cells < naive_cells,
        "condensation must shrink storage"
    );
}

fn clamp_ablation(h: &mut Harness) {
    let alg = kernels::sor_skewed(16, 24, 1.0);
    let t = TilingTransform::new(matrices::sor_nr(4, 10, 8)).unwrap();
    let tiled = TiledSpace::new(t, alg.nest.space().clone()).unwrap();
    let tiles: Vec<Vec<i64>> = tiled.tiles().collect();
    h.bench("clamp_ablation/per_point_membership", || {
        let mut n = 0usize;
        for tile in &tiles {
            n += tiled.tile_iterations(tile).count();
        }
        black_box(n);
    });
    h.bench("clamp_ablation/interior_corner_fast_path", || {
        let mut n = 0usize;
        for tile in &tiles {
            n += tiled.tile_volume_fast(tile);
        }
        black_box(n);
    });
}

fn mapping_ablation(h: &mut Harness) {
    for m in 0..3usize {
        h.bench(&format!("mapping_ablation/simulate_adi_mapdim/{m}"), || {
            let alg = kernels::adi(24, 32);
            let t = TilingTransform::new(matrices::rect(5, 9, 9)).unwrap();
            let plan = std::sync::Arc::new(ParallelPlan::new(alg, t, Some(m)).unwrap());
            black_box(tilecc_parcode::execute(
                plan,
                tilecc_cluster::MachineModel::fast_ethernet_p3(),
                tilecc_parcode::ExecMode::TimingOnly,
            ));
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    lds_ablation(&mut h);
    clamp_ablation(&mut h);
    mapping_ablation(&mut h);
    h.finish();
}
