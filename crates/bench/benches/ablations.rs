//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * `lds_ablation` — condensed LDS addressing (the paper's `map()` with
//!   stride division) vs. a naive uncondensed TTIS-image array. The paper
//!   argues condensation both saves memory and exploits cache locality.
//! * `clamp_ablation` — per-point membership testing on every tile vs. the
//!   convexity-based interior-tile fast path.
//! * `mapping_ablation` — wall cost of simulating under each mapping
//!   dimension (the makespans themselves are printed by the `ablation`
//!   binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilecc::matrices;
use tilecc_linalg::RMat;
use tilecc_loopnest::kernels;
use tilecc_parcode::ParallelPlan;
use tilecc_tiling::{CommPlan, Lds, LdsGeometry, TiledSpace, TilingTransform};

/// A tiling with non-unit strides so condensation actually compresses.
fn strided_transform() -> TilingTransform {
    TilingTransform::new(RMat::from_fractions(&[
        &[(1, 8), (1, 16), (0, 1)],
        &[(0, 1), (1, 8), (0, 1)],
        &[(0, 1), (0, 1), (1, 8)],
    ]))
    .unwrap()
}

fn lds_ablation(c: &mut Criterion) {
    let t = strided_transform();
    let alg = kernels::adi(32, 32);
    let tiled = TiledSpace::new(t.clone(), alg.nest.space().clone());
    let plan = CommPlan::new(&tiled, alg.nest.deps(), 0);
    let geo = LdsGeometry::new(&t, &plan);
    let num_tiles = 4i64;
    let points: Vec<Vec<i64>> = t.ttis_points().collect();

    let mut g = c.benchmark_group("lds_ablation");
    g.bench_function("condensed_map_write_read", |b| {
        let mut lds = Lds::new(geo.clone(), vec![0, 0, 0], num_tiles);
        b.iter(|| {
            let mut acc = 0.0;
            for tp in 0..num_tiles {
                for jp in &points {
                    let gg = lds.unrolled(tp, jp);
                    lds.set(&gg, (gg[0] + gg[1]) as f64);
                    acc += lds.get(&gg);
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("naive_ttis_image_write_read", |b| {
        // Uncondensed: one cell per TTIS *box* coordinate (holes wasted).
        let v = t.v().to_vec();
        let ext = [v[0] * num_tiles, v[1], v[2]];
        let mut arr = vec![0.0f64; (ext[0] * ext[1] * ext[2]) as usize];
        b.iter(|| {
            let mut acc = 0.0;
            for tp in 0..num_tiles {
                for jp in &points {
                    let idx =
                        (((tp * v[0] + jp[0]) * ext[1] + jp[1]) * ext[2] + jp[2]) as usize;
                    arr[idx] = (jp[0] + jp[1]) as f64;
                    acc += arr[idx];
                }
            }
            black_box(acc)
        })
    });
    g.finish();
    // Memory footprint comparison is asserted (the paper's storage claim).
    let condensed_cells: i64 = geo.extents(num_tiles).iter().product();
    let naive_cells: i64 = t.v()[0] * num_tiles * t.v()[1] * t.v()[2];
    assert!(condensed_cells < naive_cells, "condensation must shrink storage");
}

fn clamp_ablation(c: &mut Criterion) {
    let alg = kernels::sor_skewed(16, 24, 1.0);
    let t = TilingTransform::new(matrices::sor_nr(4, 10, 8)).unwrap();
    let tiled = TiledSpace::new(t, alg.nest.space().clone());
    let tiles: Vec<Vec<i64>> = tiled.tiles().collect();
    let mut g = c.benchmark_group("clamp_ablation");
    g.bench_function("per_point_membership", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for tile in &tiles {
                n += tiled.tile_iterations(tile).count();
            }
            black_box(n)
        })
    });
    g.bench_function("interior_corner_fast_path", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for tile in &tiles {
                n += tiled.tile_volume_fast(tile);
            }
            black_box(n)
        })
    });
    g.finish();
}

fn mapping_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapping_ablation");
    for m in 0..3usize {
        g.bench_with_input(BenchmarkId::new("simulate_adi_mapdim", m), &m, |b, &m| {
            b.iter(|| {
                let alg = kernels::adi(24, 32);
                let t = TilingTransform::new(matrices::rect(5, 9, 9)).unwrap();
                let plan =
                    std::sync::Arc::new(ParallelPlan::new(alg, t, Some(m)).unwrap());
                black_box(tilecc_parcode::execute(
                    plan,
                    tilecc_cluster::MachineModel::fast_ethernet_p3(),
                    tilecc_parcode::ExecMode::TimingOnly,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = lds_ablation, clamp_ablation, mapping_ablation
);
criterion_main!(ablations);
