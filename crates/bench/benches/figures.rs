//! Benchmark versions of the paper's six figures at reduced scale: each
//! bench simulates the full compile → distribute → execute pipeline for the
//! tilings a figure compares. The `fig*` binaries run the full-scale
//! versions and emit the actual series; these benches track the cost of
//! regenerating them.
//!
//! Runs under the dependency-free harness in `tilecc_bench::harness`; under
//! `cargo test` each benchmark executes once as a smoke test.

use std::hint::black_box;
use tilecc::{measure, Variant, Workload};
use tilecc_bench::harness::Harness;
use tilecc_cluster::MachineModel;

fn model() -> MachineModel {
    MachineModel::fast_ethernet_p3()
}

/// Figures 5 and 6 — SOR rect vs non-rect (reduced space M=24, N=36).
fn fig5_fig6_sor(h: &mut Harness) {
    let w = Workload::Sor { m: 24, n: 36 };
    for v in [Variant::Rect, Variant::NonRect] {
        h.bench(&format!("fig5_fig6_sor/simulate/{}", v.label()), || {
            black_box(measure(w, v, (7, 16, 8), model()));
        });
    }
}

/// Figures 7 and 8 — Jacobi rect vs non-rect (reduced space T=12, I=J=24).
fn fig7_fig8_jacobi(h: &mut Harness) {
    let w = Workload::Jacobi {
        t: 12,
        i: 24,
        j: 24,
    };
    for v in [Variant::Rect, Variant::NonRect] {
        h.bench(&format!("fig7_fig8_jacobi/simulate/{}", v.label()), || {
            black_box(measure(w, v, (4, 10, 10), model()));
        });
    }
}

/// Figures 9 and 10 — ADI, four tile shapes (reduced space T=24, N=32).
fn fig9_fig10_adi(h: &mut Harness) {
    let w = Workload::Adi { t: 24, n: 32 };
    for v in [
        Variant::Rect,
        Variant::AdiNr1,
        Variant::AdiNr2,
        Variant::AdiNr3,
    ] {
        h.bench(&format!("fig9_fig10_adi/simulate/{}", v.label()), || {
            black_box(measure(w, v, (5, 9, 9), model()));
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    fig5_fig6_sor(&mut h);
    fig7_fig8_jacobi(&mut h);
    fig9_fig10_adi(&mut h);
    h.finish();
}
