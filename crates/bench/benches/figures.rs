//! Criterion versions of the paper's six figures at reduced scale: each
//! bench simulates the full compile → distribute → execute pipeline for the
//! tilings a figure compares. The `fig*` binaries run the full-scale
//! versions and emit the actual series; these benches track the cost of
//! regenerating them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilecc::{measure, Variant, Workload};
use tilecc_cluster::MachineModel;

fn model() -> MachineModel {
    MachineModel::fast_ethernet_p3()
}

/// Figures 5 and 6 — SOR rect vs non-rect (reduced space M=24, N=36).
fn fig5_fig6_sor(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fig6_sor");
    let w = Workload::Sor { m: 24, n: 36 };
    for v in [Variant::Rect, Variant::NonRect] {
        g.bench_with_input(BenchmarkId::new("simulate", v.label()), &v, |b, &v| {
            b.iter(|| black_box(measure(w, v, (7, 16, 8), model())))
        });
    }
    g.finish();
}

/// Figures 7 and 8 — Jacobi rect vs non-rect (reduced space T=12, I=J=24).
fn fig7_fig8_jacobi(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_fig8_jacobi");
    let w = Workload::Jacobi { t: 12, i: 24, j: 24 };
    for v in [Variant::Rect, Variant::NonRect] {
        g.bench_with_input(BenchmarkId::new("simulate", v.label()), &v, |b, &v| {
            b.iter(|| black_box(measure(w, v, (4, 10, 10), model())))
        });
    }
    g.finish();
}

/// Figures 9 and 10 — ADI, four tile shapes (reduced space T=24, N=32).
fn fig9_fig10_adi(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_fig10_adi");
    let w = Workload::Adi { t: 24, n: 32 };
    for v in [Variant::Rect, Variant::AdiNr1, Variant::AdiNr2, Variant::AdiNr3] {
        g.bench_with_input(BenchmarkId::new("simulate", v.label()), &v, |b, &v| {
            b.iter(|| black_box(measure(w, v, (5, 9, 9), model())))
        });
    }
    g.finish();
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig5_fig6_sor, fig7_fig8_jacobi, fig9_fig10_adi
);
criterion_main!(figures);
