//! Integration tests for the TCMP wire format: seeded round-trips,
//! corruption rejection, and a lockstep check that keeps
//! `docs/wire-protocol.md` in agreement with the encoder constants.

use std::io::Cursor;
use tilecc_cluster::wire::{
    self, encode_envelope, read_frame, write_frame, HEADER_LEN, MAGIC, MAX_PAYLOAD, OFF_KIND,
    OFF_MAGIC, OFF_NOMINAL_BYTES, OFF_PAYLOAD_LEN, OFF_READY_AT, OFF_SEQ, OFF_SRC_RANK, OFF_TAG,
    OFF_VERSION, VERSION,
};
use tilecc_cluster::{Envelope, Frame, FrameKind, WireError};

/// xorshift64*: deterministic stream for seeded round-trip corpora.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.next())
    }
}

fn seeded_envelope(rng: &mut Rng, len: usize) -> Envelope {
    Envelope {
        payload: (0..len).map(|_| rng.f64()).collect(),
        tag: rng.next() as i64,
        ready_at: (rng.next() >> 12) as f64 * 1e-9,
        seq: rng.next(),
        bytes: (rng.next() % (1 << 20)) as usize,
    }
}

/// Bitwise envelope equality: payload compared as bit patterns so NaNs and
/// signed zeros count.
fn assert_envelopes_bitwise_equal(a: &Envelope, b: &Envelope) {
    assert_eq!(a.tag, b.tag);
    assert_eq!(a.seq, b.seq);
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(a.ready_at.to_bits(), b.ready_at.to_bits());
    assert_eq!(a.payload.len(), b.payload.len());
    for (x, y) in a.payload.iter().zip(&b.payload) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn seeded_envelopes_round_trip_bitwise() {
    let mut rng = Rng(0x1234_5678_9ABC_DEF0);
    for case in 0..200 {
        let len = (case * 7) % 97;
        let env = seeded_envelope(&mut rng, len);
        let bytes = encode_envelope((case % 64) as u32, &env);
        let (frame, consumed) = Frame::decode(&bytes).expect("well-formed frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(frame.kind, FrameKind::Data);
        assert_eq!(frame.src, (case % 64) as u32);
        let back = wire::decode_envelope(&frame).expect("data frame decodes");
        assert_envelopes_bitwise_equal(&env, &back);
    }
}

#[test]
fn large_payload_round_trips() {
    // 1 MiB of payload: well past any internal buffer boundary.
    let mut rng = Rng(42);
    let env = seeded_envelope(&mut rng, 131_072);
    let bytes = encode_envelope(5, &env);
    assert_eq!(bytes.len(), HEADER_LEN + 131_072 * 8);
    let (frame, consumed) = Frame::decode(&bytes).expect("well-formed frame");
    assert_eq!(consumed, bytes.len());
    let back = wire::decode_envelope(&frame).expect("data frame decodes");
    assert_envelopes_bitwise_equal(&env, &back);
}

#[test]
fn special_values_survive_bitwise() {
    let env = Envelope {
        payload: vec![f64::NAN, -0.0, f64::INFINITY, f64::MIN_POSITIVE, -1.5e300],
        tag: i64::MIN,
        ready_at: f64::MAX,
        seq: u64::MAX,
        bytes: 0,
    };
    let bytes = encode_envelope(u32::MAX, &env);
    let (frame, _) = Frame::decode(&bytes).unwrap();
    let back = wire::decode_envelope(&frame).unwrap();
    assert_envelopes_bitwise_equal(&env, &back);
}

#[test]
fn stream_round_trip_through_reader() {
    // Several frames written back-to-back must come off a byte stream one
    // by one, exactly as the socket reader consumes them.
    let mut rng = Rng(7);
    let envs: Vec<Envelope> = (0..8).map(|i| seeded_envelope(&mut rng, i * 11)).collect();
    let mut stream = Vec::new();
    for (i, env) in envs.iter().enumerate() {
        stream.extend_from_slice(&encode_envelope(i as u32, env));
    }
    let mut cursor = Cursor::new(stream);
    for (i, env) in envs.iter().enumerate() {
        let frame = read_frame(&mut cursor).expect("frame available");
        assert_eq!(frame.src, i as u32);
        let back = wire::decode_envelope(&frame).unwrap();
        assert_envelopes_bitwise_equal(env, &back);
    }
    assert!(matches!(read_frame(&mut cursor), Err(WireError::Closed)));
}

#[test]
fn control_frames_round_trip() {
    for kind in [
        FrameKind::Hello,
        FrameKind::Addrs,
        FrameKind::Peer,
        FrameKind::Result,
        FrameKind::Error,
        FrameKind::Progress,
        FrameKind::Bye,
        FrameKind::Stats,
    ] {
        let mut frame = Frame::control(kind, 9);
        frame.seq = 1234;
        frame.payload = b"127.0.0.1:4242".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let (back, consumed) = Frame::decode(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(back, frame);
    }
}

#[test]
fn truncated_frames_are_rejected() {
    let env = Envelope {
        payload: vec![1.0, 2.0, 3.0],
        tag: 4,
        ready_at: 0.5,
        seq: 6,
        bytes: 24,
    };
    let bytes = encode_envelope(0, &env);
    // Every strict prefix must be rejected as truncated, never mis-decoded.
    for cut in 0..bytes.len() {
        match Frame::decode(&bytes[..cut]) {
            Err(WireError::Truncated { needed, got }) => {
                assert_eq!(got, cut);
                assert!(needed > cut, "needed {needed} must exceed got {got}");
            }
            other => panic!("prefix of {cut} bytes decoded as {other:?}"),
        }
    }
    // A reader dying mid-frame reports Truncated, not Closed.
    let mut cursor = Cursor::new(bytes[..bytes.len() - 1].to_vec());
    assert!(matches!(
        read_frame(&mut cursor),
        Err(WireError::Truncated { .. })
    ));
}

#[test]
fn corrupt_headers_are_rejected() {
    let env = Envelope {
        payload: vec![1.0],
        tag: 0,
        ready_at: 0.0,
        seq: 0,
        bytes: 8,
    };
    let good = encode_envelope(0, &env);

    let mut bad_magic = good.clone();
    bad_magic[OFF_MAGIC] = b'X';
    assert!(matches!(
        Frame::decode(&bad_magic),
        Err(WireError::BadMagic(_))
    ));

    let mut bad_version = good.clone();
    bad_version[OFF_VERSION..OFF_VERSION + 2].copy_from_slice(&(VERSION + 1).to_le_bytes());
    assert!(matches!(
        Frame::decode(&bad_version),
        Err(WireError::BadVersion(v)) if v == VERSION + 1
    ));

    let mut bad_kind = good.clone();
    bad_kind[OFF_KIND..OFF_KIND + 2].copy_from_slice(&999u16.to_le_bytes());
    assert!(matches!(
        Frame::decode(&bad_kind),
        Err(WireError::UnknownKind(999))
    ));

    let mut oversize = good.clone();
    oversize[OFF_PAYLOAD_LEN..OFF_PAYLOAD_LEN + 4]
        .copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    assert!(matches!(
        Frame::decode(&oversize),
        Err(WireError::Oversize(_))
    ));

    // The envelope decoder rejects non-data frames and ragged payloads.
    let bye = Frame::control(FrameKind::Bye, 0);
    assert!(wire::decode_envelope(&bye).is_err());
    let (mut frame, _) = Frame::decode(&good).unwrap();
    frame.payload.pop();
    assert!(wire::decode_envelope(&frame).is_err());
}

// ---------------------------------------------------------------------------
// docs/wire-protocol.md lockstep
// ---------------------------------------------------------------------------

fn wire_protocol_doc() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/wire-protocol.md");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("docs/wire-protocol.md must exist ({e}) at {path:?}"))
}

/// Split a markdown table row into trimmed cells, stripping backticks.
fn cells(line: &str) -> Vec<String> {
    line.trim()
        .trim_matches('|')
        .split('|')
        .map(|c| c.trim().replace('`', ""))
        .collect()
}

#[test]
fn documented_header_table_matches_encoder_constants() {
    let doc = wire_protocol_doc();
    let section = doc
        .split("### Header field table")
        .nth(1)
        .expect("doc has the header field table section");
    // (offset, size, field) rows until the table ends.
    let mut rows = Vec::new();
    for line in section.lines() {
        if !line.trim_start().starts_with('|') {
            if !rows.is_empty() {
                break;
            }
            continue;
        }
        let c = cells(line);
        if c.len() < 3 {
            continue;
        }
        if let Ok(offset) = c[0].parse::<usize>() {
            rows.push((offset, c[1].clone(), c[2].clone()));
        }
    }

    let expected: &[(&str, usize, usize)] = &[
        ("magic", OFF_MAGIC, 4),
        ("version", OFF_VERSION, 2),
        ("kind", OFF_KIND, 2),
        ("src_rank", OFF_SRC_RANK, 4),
        ("payload_len", OFF_PAYLOAD_LEN, 4),
        ("tag", OFF_TAG, 8),
        ("seq", OFF_SEQ, 8),
        ("ready_at", OFF_READY_AT, 8),
        ("nominal_bytes", OFF_NOMINAL_BYTES, 8),
    ];
    assert_eq!(
        rows.len(),
        expected.len() + 1,
        "table must list every header field plus the payload row: {rows:?}"
    );
    for ((offset, size, field), (name, exp_offset, exp_size)) in rows.iter().zip(expected) {
        assert_eq!(field, name, "field order in the doc must match the header");
        assert_eq!(
            *offset, *exp_offset,
            "documented offset of `{name}` disagrees with wire.rs"
        );
        assert_eq!(
            size.parse::<usize>().expect("size column is numeric"),
            *exp_size,
            "documented size of `{name}` disagrees with wire.rs"
        );
    }
    // The payload row starts exactly at the end of the header.
    let (payload_offset, _, payload_field) = &rows[expected.len()];
    assert_eq!(payload_field, "payload");
    assert_eq!(*payload_offset, HEADER_LEN);

    // Prose constants.
    assert!(
        doc.contains("**48 bytes**"),
        "doc must state the 48-byte header length"
    );
    assert_eq!(HEADER_LEN, 48);
    assert!(
        doc.contains(&format!("currently `{VERSION}`")),
        "doc must state the current protocol version"
    );
    assert_eq!(MAX_PAYLOAD, 1 << 30);
    assert_eq!(&MAGIC, b"TCMP");
}

#[test]
fn documented_frame_kinds_match_discriminants() {
    let doc = wire_protocol_doc();
    let section = doc
        .split("## Frame kinds")
        .nth(1)
        .expect("doc has the frame kinds section");
    let mut seen = Vec::new();
    for line in section.lines() {
        if !line.trim_start().starts_with('|') {
            if !seen.is_empty() {
                break;
            }
            continue;
        }
        let c = cells(line);
        if c.len() < 2 {
            continue;
        }
        if let Ok(value) = c[1].parse::<u16>() {
            seen.push((c[0].clone(), value));
        }
    }
    let expected = [
        ("DATA", FrameKind::Data),
        ("HELLO", FrameKind::Hello),
        ("ADDRS", FrameKind::Addrs),
        ("PEER", FrameKind::Peer),
        ("RESULT", FrameKind::Result),
        ("ERROR", FrameKind::Error),
        ("PROGRESS", FrameKind::Progress),
        ("BYE", FrameKind::Bye),
        ("CKPT_ACK", FrameKind::CkptAck),
        ("RESUME", FrameKind::Resume),
        ("REPLAY", FrameKind::Replay),
        ("STATS", FrameKind::Stats),
    ];
    assert_eq!(seen.len(), expected.len(), "kind table rows: {seen:?}");
    for ((name, value), (exp_name, kind)) in seen.iter().zip(&expected) {
        assert_eq!(name, exp_name);
        assert_eq!(*value, *kind as u16, "documented value of {name}");
        assert_eq!(FrameKind::from_u16(*value), Some(*kind));
    }
    // Every documented discriminant decodes; the next one after the table
    // must not (the doc claims the table is exhaustive).
    let max = seen.iter().map(|(_, v)| *v).max().unwrap();
    assert_eq!(FrameKind::from_u16(max + 1), None);
    assert_eq!(FrameKind::from_u16(0), None);
}
