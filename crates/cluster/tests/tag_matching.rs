//! MPI-style tag-matching semantics of the threaded engine, exercised
//! through the public crate API:
//!
//! * messages received out of tag order are buffered (the NIC holds them)
//!   and later matched without re-delivery,
//! * wait/compute accounting is exact under a hand-computable machine model,
//! * repeated runs of the same program produce bit-identical clocks.

use tilecc_cluster::{run_cluster, Comm, EngineOptions, FaultPlan, MachineModel};

fn model() -> MachineModel {
    MachineModel {
        compute_per_iter: 1.0,
        send_overhead: 1.0,
        recv_overhead: 2.0,
        wire_latency: 4.0,
        per_byte: 0.5,
    }
}

#[test]
fn out_of_order_tags_are_buffered_and_matched() {
    // Rank 0 sends tags 1..=4 in ascending order; rank 1 receives them in
    // descending order. Every receive must yield the payload matching its
    // tag, which forces the first three arrivals into the pending buffer.
    let report = run_cluster(2, MachineModel::zero_comm(0.0), |comm| {
        if comm.rank() == 0 {
            for tag in 1..=4i64 {
                comm.send_tagged(1, tag, vec![tag as f64 * 10.0], 8);
            }
            Vec::new()
        } else {
            let mut got = Vec::new();
            for tag in (1..=4i64).rev() {
                let v = comm.recv_tagged(0, tag);
                assert_eq!(v, vec![tag as f64 * 10.0], "payload must match tag {tag}");
                got.push(v[0]);
            }
            got
        }
    });
    assert_eq!(report.results[1], vec![40.0, 30.0, 20.0, 10.0]);
    // All four messages delivered exactly once despite the buffering.
    assert_eq!(report.stats[1].messages_received, 4);
    assert_eq!(report.total_messages(), 4);
}

#[test]
fn interleaved_senders_match_by_source_and_tag() {
    // Ranks 1 and 2 both send tags {5, 6} to rank 0, which drains them in
    // an order that interleaves sources and reverses tags per source.
    let report = run_cluster(3, MachineModel::zero_comm(0.0), |comm| match comm.rank() {
        0 => {
            let mut sum = 0.0;
            for (from, tag) in [(1usize, 6i64), (2, 6), (1, 5), (2, 5)] {
                let v = comm.recv_tagged(from, tag);
                assert_eq!(v, vec![(from as i64 * 100 + tag) as f64]);
                sum += v[0];
            }
            sum
        }
        r => {
            for tag in [5i64, 6] {
                comm.send_tagged(0, tag, vec![(r as i64 * 100 + tag) as f64], 8);
            }
            0.0
        }
    });
    assert_eq!(report.results[0], 105.0 + 106.0 + 205.0 + 206.0);
}

#[test]
fn wait_and_compute_accounting_is_exact() {
    // Hand-computed schedule under `model()`:
    //   rank 0: compute 3 iters            → t = 3   (compute_time = 3)
    //           send tag 10, 8 B: 1 + 8·0.5 → t = 8   (arrives 8 + 4 = 12)
    //           send tag 20, 8 B           → t = 13  (arrives 13 + 4 = 17)
    //   rank 1: recv tag 20: tag-10 message arrives first and is buffered
    //           without advancing the clock; tag 20 is ready at 17, so the
    //           receiver waits 17 − 0 = 17, then pays recv_overhead → t = 19
    //           recv tag 10: already buffered (ready 12 < 19, no wait) → 21
    let report = run_cluster(2, model(), |comm| {
        if comm.rank() == 0 {
            comm.advance_compute(3);
            comm.send_tagged(1, 10, vec![1.0], 8);
            comm.send_tagged(1, 20, vec![2.0], 8);
            comm.local_time()
        } else {
            assert_eq!(comm.recv_tagged(0, 20), vec![2.0]);
            assert_eq!(comm.recv_tagged(0, 10), vec![1.0]);
            comm.local_time()
        }
    });
    assert!((report.results[0] - 13.0).abs() < 1e-12);
    assert!((report.results[1] - 21.0).abs() < 1e-12);
    assert!((report.stats[0].compute_time - 3.0).abs() < 1e-12);
    assert!((report.stats[0].wait_time - 0.0).abs() < 1e-12);
    assert!((report.stats[1].wait_time - 17.0).abs() < 1e-12);
    assert!((report.stats[1].compute_time - 0.0).abs() < 1e-12);
    assert!((report.makespan() - 21.0).abs() < 1e-12);
    assert_eq!(report.total_bytes(), 16);
}

/// A small tag-heavy ring program used by the determinism tests. Returns
/// `(received-data checksum, final virtual clock)`: the checksum must be
/// bitwise stable even under faults, while retransmission backoff is allowed
/// to shift the clock.
fn ring_program(comm: &mut tilecc_cluster::ThreadedComm) -> (f64, f64) {
    let (r, n) = (comm.rank(), comm.size());
    let next = (r + 1) % n;
    let prev = (r + n - 1) % n;
    comm.advance_compute(1 + r as u64);
    for round in 0..3i64 {
        comm.send_tagged(next, round, vec![r as f64 + round as f64], 16);
    }
    let mut acc = 0.0;
    for round in 0..3i64 {
        // Receive rounds out of tag order on odd ranks to stress the buffer.
        let want = if r % 2 == 1 { 2 - round } else { round };
        let v = comm.recv_tagged(prev, want);
        assert_eq!(v, vec![prev as f64 + want as f64]);
        acc += 0.5 * v[0] + acc * 0.25;
        comm.advance_compute(2);
    }
    (acc, comm.local_time())
}

#[test]
fn repeated_runs_have_bit_identical_makespans() {
    let runs: Vec<(u64, Vec<u64>)> = (0..5)
        .map(|_| {
            let r = run_cluster(4, model(), ring_program);
            let data: Vec<u64> = r.results.iter().map(|(acc, _)| acc.to_bits()).collect();
            (r.makespan().to_bits(), data)
        })
        .collect();
    assert!(
        runs.iter().all(|b| *b == runs[0]),
        "makespans and data must be bit-identical across runs: {runs:?}"
    );
}

#[test]
fn faulty_runs_match_clean_tag_semantics() {
    // The reliability layer must preserve tag matching: a lossy, duplicating,
    // reordering substrate still yields the same per-rank results bitwise.
    let clean = run_cluster(4, model(), ring_program);
    let opts = EngineOptions {
        fault: Some(FaultPlan::chaos(0x7A65, 0.25)),
        ..EngineOptions::default()
    };
    let faulty = tilecc_cluster::run_cluster_opts(4, model(), opts, ring_program)
        .expect("reliability layer must mask injected faults");
    for ((c, _), (f, _)) in clean.results.iter().zip(&faulty.results) {
        assert_eq!(c.to_bits(), f.to_bits(), "per-rank data must match bitwise");
    }
    assert!(
        faulty.total_retransmissions() > 0,
        "25% drop must force retransmissions"
    );
}
