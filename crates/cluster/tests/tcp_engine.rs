//! Integration tests for the loopback TCP engine: smoke runs over real
//! sockets, bitwise threaded-vs-TCP equivalence (clean and faulty), and
//! watchdog behaviour through the TCP transport.

use std::time::Duration;
use tilecc_cluster::{
    run_cluster_opts, run_cluster_tcp, Comm, EngineOptions, FaultPlan, MachineModel, RunError,
};

fn test_model() -> MachineModel {
    MachineModel {
        compute_per_iter: 1e-7,
        send_overhead: 3e-5,
        recv_overhead: 3e-5,
        wire_latency: 4e-5,
        per_byte: 8e-8,
    }
}

fn opts_with(fault: Option<FaultPlan>) -> EngineOptions {
    EngineOptions {
        fault,
        wall_timeout: Some(Duration::from_secs(60)),
        ..EngineOptions::default()
    }
}

/// A pipeline body exercising sends, tagged receives, compute and stats —
/// generic over the backend so the exact same closure runs on both.
fn wavefront_body<C: Comm>(comm: &mut C) -> (f64, Vec<u64>) {
    let rank = comm.rank();
    let size = comm.size();
    let mut acc = vec![rank as u64];
    for step in 0..3i64 {
        if rank > 0 {
            let v = comm.recv_tagged(rank - 1, step);
            acc.push(v[0].to_bits());
        }
        comm.advance_compute(100 + 10 * rank as u64);
        if rank + 1 < size {
            comm.send_tagged(rank + 1, step, vec![(rank * 100) as f64 + step as f64], 64);
        }
    }
    (comm.local_time(), acc)
}

#[test]
fn tcp_loopback_smoke_run() {
    let report = run_cluster_tcp(4, test_model(), opts_with(None), wavefront_body).unwrap();
    assert_eq!(report.results.len(), 4);
    assert!(report.makespan() > 0.0);
    // 3 steps on each of the 3 forward links.
    assert_eq!(report.total_messages(), 9);
    assert_eq!(report.total_bytes(), 9 * 64);
    // Every rank's returned clock equals its reported clock.
    for (rank, (t, _)) in report.results.iter().enumerate() {
        assert_eq!(t.to_bits(), report.local_times[rank].to_bits());
    }
}

/// The heart of the backend contract: the same program under the same
/// options produces bit-identical clocks, data and counters on threads
/// and on sockets.
fn assert_backends_agree(fault: Option<FaultPlan>) {
    let threaded =
        run_cluster_opts(4, test_model(), opts_with(fault.clone()), wavefront_body).unwrap();
    let tcp = run_cluster_tcp(4, test_model(), opts_with(fault), wavefront_body).unwrap();
    assert_eq!(threaded.local_times.len(), tcp.local_times.len());
    for rank in 0..threaded.local_times.len() {
        assert_eq!(
            threaded.local_times[rank].to_bits(),
            tcp.local_times[rank].to_bits(),
            "rank {rank} clock must match bitwise"
        );
        assert_eq!(
            threaded.results[rank].1, tcp.results[rank].1,
            "rank {rank} received data must match bitwise"
        );
        let (a, b) = (&threaded.stats[rank], &tcp.stats[rank]);
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.messages_received, b.messages_received);
        assert_eq!(a.bytes_received, b.bytes_received);
        assert_eq!(a.retransmissions, b.retransmissions);
        assert_eq!(a.duplicates_suppressed, b.duplicates_suppressed);
        assert_eq!(a.wait_time.to_bits(), b.wait_time.to_bits());
        assert_eq!(a.retrans_time.to_bits(), b.retrans_time.to_bits());
    }
    assert_eq!(threaded.makespan().to_bits(), tcp.makespan().to_bits());
}

#[test]
fn tcp_matches_threaded_bitwise_clean() {
    assert_backends_agree(None);
}

#[test]
fn tcp_matches_threaded_bitwise_under_chaos() {
    // Heavy chaos: drops, duplicates, reorders and delays all at 30%. The
    // reliability layer must mask everything identically on both backends.
    let plan = FaultPlan::chaos(2026, 0.3);
    let threaded = run_cluster_opts(
        4,
        test_model(),
        opts_with(Some(plan.clone())),
        wavefront_body,
    )
    .unwrap();
    assert!(
        threaded.total_retransmissions() > 0 || threaded.total_duplicates_suppressed() > 0,
        "chaos plan must actually perturb this schedule"
    );
    assert_backends_agree(Some(plan));
}

#[test]
fn tcp_deadlock_is_detected() {
    // Both ranks receive first: a cycle with no message in flight. The
    // watchdog must name both ranks and their waits instead of hanging.
    let err = run_cluster_tcp(2, test_model(), opts_with(None), |comm: &mut _| {
        let peer = 1 - comm.rank();
        let _ = Comm::recv_tagged(comm, peer, 7);
    })
    .unwrap_err();
    match err {
        RunError::Deadlock {
            blocked_ranks,
            waiting_on,
        } => {
            assert_eq!(blocked_ranks, vec![0, 1]);
            assert!(waiting_on.contains(&(0, 1, 7)), "{waiting_on:?}");
            assert!(waiting_on.contains(&(1, 0, 7)), "{waiting_on:?}");
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn tcp_rank_panic_is_contained() {
    let err = run_cluster_tcp(3, test_model(), opts_with(None), |comm: &mut _| {
        if comm.rank() == 1 {
            panic!("injected test failure");
        }
        // Ranks 0 and 2 wait on the dead rank and observe the disconnect.
        let _ = comm.try_recv(1);
    })
    .unwrap_err();
    match err {
        RunError::RankPanicked { rank, payload } => {
            assert_eq!(rank, 1);
            assert!(payload.contains("injected test failure"), "{payload}");
        }
        other => panic!("expected rank panic, got {other}"),
    }
}
