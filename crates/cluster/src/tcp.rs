//! The TCP cluster backend: the [`Comm`] contract over real sockets.
//!
//! Where the threaded engine moves [`Envelope`]s through in-process
//! channels, this backend serializes every message through the TCMP wire
//! format ([`crate::wire`]) and moves it over localhost (or cross-machine)
//! TCP connections. The virtual-clock arithmetic, the reliability sublayer
//! ([`crate::reliability`]), and the fault-injection decisions are shared
//! with the threaded engine, so for the same program the two backends
//! produce **bitwise-identical data, identical virtual clocks, and
//! identical logical counters** — faulty runs included. `ready_at` travels
//! as an `f64` bit pattern and fault decisions are pure hashes of
//! `(seed, link, seq, attempt)`, so nothing depends on real-time races.
//!
//! # Topology
//!
//! Connection establishment is rendezvous-based: every rank binds an
//! ephemeral listener, reports it to the rendezvous ([`Rendezvous`]) with
//! a `HELLO` frame, receives the full address list (`ADDRS`), then builds
//! a full mesh — dialing every lower-ranked peer (announcing itself with a
//! `PEER` frame) and accepting from every higher-ranked one. One
//! bidirectional socket serves each unordered rank pair.
//!
//! Per peer, a *writer thread* drains a bounded queue of pre-encoded
//! frames onto the socket, and a *reader thread* decodes incoming frames
//! into the same tag-matching receive path the threaded engine uses. On
//! clean exit writers flush and send `FIN` (`shutdown(Write)`); readers
//! keep draining to end-of-stream so a socket is never reset while it may
//! still carry undelivered frames.
//!
//! # Process models
//!
//! * [`run_cluster_tcp`] — every rank is a thread of this process, but all
//!   communication crosses real sockets. Drop-in replacement for
//!   [`crate::run_cluster_opts`]; used by tests, the fuzz harness, and
//!   in-process callers.
//! * [`run_worker`] + [`Rendezvous`]/[`collect_workers`] — the
//!   multi-process model: a driver process spawns one worker process per
//!   rank, workers run [`run_worker`] and report results over their
//!   rendezvous (control) connection, and the driver supervises them with
//!   a heartbeat-fed deadlock watchdog mirroring the threaded engine's.

use crate::comm::{Comm, CommAbort, CommStats, Envelope, Restored};
use crate::error::{CommError, RunError};
use crate::fault::{FaultPlan, RankStall};
use crate::model::MachineModel;
use crate::obs::{
    Counter, GaugeId, HistId, Phase, RankMetrics, RankObs, SpanEdge, StatsSnapshot, VirtAcc,
};
use crate::reliability::{retransmit_pauses, Admit, LinkSeq, ReplayLog};
use crate::threaded::{
    collect, install_quiet_panic_hook, new_replay_logs, panic_message, CkptState, CommScheme,
    EngineOptions, Monitor, RankEnd, RankPhase, RecoveryCtl, ReplayLogs, RunReport, ABORT_GRACE,
    COLLECT_POLL, RECV_POLL,
};
use crate::trace::{Event, Trace};
use crate::wire::{self, Frame, FrameKind};
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Deadline for rendezvous and mesh handshakes.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);
/// Retry budget for dialing a listener that refuses the connection (a
/// respawned worker racing a fresh rendezvous, a peer's mesh listener not
/// yet bound). Deliberately shorter than [`HANDSHAKE_TIMEOUT`]: a plain
/// misconfiguration must fail fast, not after the handshake deadline.
const CONNECT_RETRY_BUDGET: Duration = Duration::from_secs(10);
/// Bounded depth (frames) of each per-peer writer queue.
const SEND_QUEUE_FRAMES: usize = 64;
/// How often a worker ships a heartbeat (`PROGRESS` frame) to the driver.
const HEARTBEAT_PERIOD: Duration = Duration::from_millis(50);
/// Consecutive silent driver sweeps with every live worker blocked before
/// the multi-process watchdog declares a deadlock. Sweeps run every
/// [`COLLECT_POLL`]; this must comfortably exceed [`HEARTBEAT_PERIOD`] so
/// a quiet-but-alive worker is never misread (~600 ms of global silence).
const DRIVER_STABLE_SWEEPS: u32 = 60;
/// How long a worker waits for the driver's `BYE` after its result.
const BYE_TIMEOUT: Duration = Duration::from_secs(60);

fn transport_error(stage: &str, e: impl std::fmt::Display) -> CommError {
    CommError::Transport {
        detail: format!("{stage}: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Connection establishment
// ---------------------------------------------------------------------------

/// The rendezvous listener: ranks report their mesh listeners here and
/// receive the full address list back. In the multi-process model the
/// driver owns it and keeps the per-rank control connections for results
/// and heartbeats.
pub struct Rendezvous {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Rendezvous {
    /// Bind an ephemeral rendezvous listener on localhost.
    pub fn bind() -> Result<Rendezvous, CommError> {
        Rendezvous::bind_to("127.0.0.1:0")
    }

    /// Bind the rendezvous listener on an explicit local address
    /// (`host:port`; port 0 picks an ephemeral port) — the driver's
    /// `--bind-addr` knob for multi-machine runs.
    pub fn bind_to(addr: &str) -> Result<Rendezvous, CommError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| transport_error("rendezvous bind", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| transport_error("rendezvous addr", e))?;
        Ok(Rendezvous { listener, addr })
    }

    /// The `host:port` workers should `--connect` to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept `size` `HELLO`s (each announcing a rank's mesh listener and
    /// expected world size), then broadcast the `ADDRS` list. Returns the
    /// control connections in rank order.
    pub fn coordinate(&self, size: usize, deadline: Duration) -> Result<Vec<TcpStream>, CommError> {
        let until = Instant::now() + deadline;
        self.listener
            .set_nonblocking(true)
            .map_err(|e| transport_error("rendezvous nonblocking", e))?;
        let mut controls: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        let mut addrs: Vec<Option<String>> = vec![None; size];
        let mut pending = 0usize;
        while pending < size {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
                        .map_err(|e| transport_error("rendezvous control", e))?;
                    let hello = wire::read_frame(&mut stream)
                        .map_err(|e| transport_error("rendezvous hello", e))?;
                    if hello.kind != FrameKind::Hello {
                        return Err(transport_error(
                            "rendezvous hello",
                            format!("unexpected {:?} frame", hello.kind),
                        ));
                    }
                    let rank = hello.src as usize;
                    if rank >= size {
                        return Err(transport_error(
                            "rendezvous hello",
                            format!("rank {rank} out of range for world size {size}"),
                        ));
                    }
                    if hello.seq != size as u64 {
                        return Err(transport_error(
                            "rendezvous hello",
                            format!(
                                "rank {rank} expects world size {}, driver has {size}",
                                hello.seq
                            ),
                        ));
                    }
                    if controls[rank].is_some() {
                        return Err(transport_error(
                            "rendezvous hello",
                            format!("duplicate hello from rank {rank}"),
                        ));
                    }
                    addrs[rank] = Some(
                        String::from_utf8(hello.payload)
                            .map_err(|e| transport_error("rendezvous hello", e))?,
                    );
                    controls[rank] = Some(stream);
                    pending += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= until {
                        let missing: Vec<usize> =
                            (0..size).filter(|&r| controls[r].is_none()).collect();
                        return Err(transport_error(
                            "rendezvous",
                            format!("timed out waiting for ranks {missing:?}"),
                        ));
                    }
                    thread::sleep(COLLECT_POLL);
                }
                Err(e) => return Err(transport_error("rendezvous accept", e)),
            }
        }
        let list: Vec<String> = addrs
            .into_iter()
            .map(|a| a.expect("all collected"))
            .collect();
        let mut broadcast = Frame::control(FrameKind::Addrs, u32::MAX);
        broadcast.payload = list.join("\n").into_bytes();
        let mut out = Vec::with_capacity(size);
        for (rank, control) in controls.into_iter().enumerate() {
            let mut control = control.expect("all collected");
            wire::write_frame(&mut control, &broadcast)
                .map_err(|e| transport_error(&format!("rendezvous addrs to rank {rank}"), e))?;
            out.push(control);
        }
        Ok(out)
    }
}

/// One rank's established connections: the per-peer mesh sockets and the
/// control connection to the rendezvous.
struct Mesh {
    peers: Vec<Option<TcpStream>>,
    control: TcpStream,
}

/// Dial with bounded exponential backoff. A respawned worker can race the
/// driver's fresh rendezvous listener (or a peer's mesh listener), so a
/// refused connection is retried with doubling pauses until
/// [`CONNECT_RETRY_BUDGET`] is spent instead of failing on the first
/// attempt.
fn connect_backoff(addr: &SocketAddr, stage: &str) -> Result<TcpStream, CommError> {
    let until = Instant::now() + CONNECT_RETRY_BUDGET;
    let mut pause = Duration::from_millis(50);
    loop {
        let left = until.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(transport_error(stage, "timed out retrying connect"));
        }
        match TcpStream::connect_timeout(addr, left) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() + pause >= until {
                    return Err(transport_error(stage, e));
                }
                thread::sleep(pause);
                pause = (pause * 2).min(Duration::from_secs(2));
            }
        }
    }
}

/// Build this rank's side of the full mesh through the rendezvous at
/// `rendezvous` (`host:port`), binding the mesh listener on `bind_addr`.
fn connect_mesh(
    rank: usize,
    size: usize,
    rendezvous: &str,
    bind_addr: &str,
) -> Result<Mesh, CommError> {
    let listener = TcpListener::bind(bind_addr).map_err(|e| transport_error("mesh bind", e))?;
    let my_addr = listener
        .local_addr()
        .map_err(|e| transport_error("mesh addr", e))?;
    let rdv_addr = rendezvous
        .to_socket_addrs()
        .map_err(|e| transport_error("rendezvous resolve", e))?
        .next()
        .ok_or_else(|| transport_error("rendezvous resolve", "no address"))?;
    let mut control = connect_backoff(&rdv_addr, "rendezvous connect")?;
    control
        .set_nodelay(true)
        .map_err(|e| transport_error("rendezvous connect", e))?;
    control
        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| transport_error("rendezvous connect", e))?;
    let mut hello = Frame::control(FrameKind::Hello, rank as u32);
    hello.seq = size as u64;
    hello.payload = my_addr.to_string().into_bytes();
    wire::write_frame(&mut control, &hello).map_err(|e| transport_error("hello", e))?;
    let addrs_frame =
        wire::read_frame(&mut control).map_err(|e| transport_error("awaiting addrs", e))?;
    if addrs_frame.kind != FrameKind::Addrs {
        return Err(transport_error(
            "awaiting addrs",
            format!("unexpected {:?} frame", addrs_frame.kind),
        ));
    }
    let addrs: Vec<String> = String::from_utf8(addrs_frame.payload)
        .map_err(|e| transport_error("addrs payload", e))?
        .lines()
        .map(str::to_string)
        .collect();
    if addrs.len() != size {
        return Err(transport_error(
            "addrs payload",
            format!("{} addresses for world size {size}", addrs.len()),
        ));
    }

    let mut peers: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
    // Dial every lower rank, announcing who we are.
    for (peer, addr) in addrs.iter().enumerate().take(rank) {
        let peer_addr = addr
            .to_socket_addrs()
            .map_err(|e| transport_error("peer resolve", e))?
            .next()
            .ok_or_else(|| transport_error("peer resolve", "no address"))?;
        let mut stream = connect_backoff(&peer_addr, &format!("dial rank {peer}"))?;
        stream
            .set_nodelay(true)
            .map_err(|e| transport_error("peer setup", e))?;
        wire::write_frame(&mut stream, &Frame::control(FrameKind::Peer, rank as u32))
            .map_err(|e| transport_error(&format!("peer handshake to rank {peer}"), e))?;
        peers[peer] = Some(stream);
    }
    // Accept from every higher rank.
    listener
        .set_nonblocking(true)
        .map_err(|e| transport_error("mesh accept", e))?;
    let until = Instant::now() + HANDSHAKE_TIMEOUT;
    let mut accepted = 0usize;
    while accepted < size - rank - 1 {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nodelay(true)
                    .map_err(|e| transport_error("peer setup", e))?;
                stream
                    .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
                    .map_err(|e| transport_error("peer setup", e))?;
                let peer_frame = wire::read_frame(&mut stream)
                    .map_err(|e| transport_error("peer handshake", e))?;
                if peer_frame.kind != FrameKind::Peer {
                    return Err(transport_error(
                        "peer handshake",
                        format!("unexpected {:?} frame", peer_frame.kind),
                    ));
                }
                let peer = peer_frame.src as usize;
                if peer <= rank || peer >= size || peers[peer].is_some() {
                    return Err(transport_error(
                        "peer handshake",
                        format!("unexpected peer rank {peer}"),
                    ));
                }
                // Reader threads block indefinitely from here on.
                stream
                    .set_read_timeout(None)
                    .map_err(|e| transport_error("peer setup", e))?;
                peers[peer] = Some(stream);
                accepted += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= until {
                    let missing: Vec<usize> =
                        (rank + 1..size).filter(|&p| peers[p].is_none()).collect();
                    return Err(transport_error(
                        "mesh accept",
                        format!("timed out waiting for ranks {missing:?}"),
                    ));
                }
                thread::sleep(COLLECT_POLL);
            }
            Err(e) => return Err(transport_error("mesh accept", e)),
        }
    }
    Ok(Mesh { peers, control })
}

// ---------------------------------------------------------------------------
// The endpoint
// ---------------------------------------------------------------------------

/// Everything needed to assemble a [`TcpComm`] besides the sockets.
struct TcpCommConfig {
    rank: usize,
    size: usize,
    model: MachineModel,
    scheme: CommScheme,
    fault: Option<Arc<FaultPlan>>,
    trace: bool,
    obs: Option<RankObs>,
    connect_ns: u64,
    /// Sender-side replay-log matrix (`Some` only with a recovery policy;
    /// shared across ranks in-process, this rank's row only in a worker).
    replay_logs: Option<ReplayLogs>,
    /// Crash-recovery mode (`None` = a crash fails the run).
    recovery: Option<TcpRecovery>,
}

/// How a [`TcpComm`] endpoint recovers from a crash.
enum TcpRecovery {
    /// In-process ranks rewind in place from an in-memory checkpoint —
    /// exactly the threaded engine's mechanism (shared [`RecoveryCtl`]).
    InProcess(RecoveryCtl),
    /// A worker process checkpoints to a file and recovers by respawn: the
    /// driver restarts the world, the respawned processes restore their
    /// files and re-synchronize over `RESUME` frames.
    Worker(WorkerRecovery),
}

/// Worker-process recovery state (see [`TcpRecovery::Worker`]).
struct WorkerRecovery {
    /// Checkpoint cadence requested from the executor.
    interval: u64,
    /// Checkpoint file, atomically replaced each interval.
    path: PathBuf,
    /// Resume state restored from the file, consumed once by the executor.
    resume: Option<Restored>,
    /// Whether this process was respawned into an existing run (`--resume`):
    /// gates the resume barrier and disarms the kill hook.
    resume_run: bool,
    /// Re-execution send frontier per link, from each peer's `RESUME`
    /// frame: sends below it redo the virtual accounting but skip the
    /// physical push (the peer consumed them before its checkpoint).
    resend_skip: Vec<u64>,
    /// Receives `(peer, frontier)` from reader threads when peers announce
    /// `RESUME`; the resume barrier drains one entry per peer.
    resume_rx: Option<Receiver<(usize, u64)>>,
    /// Checkpoints taken by this process (drives the kill hook).
    ckpts_taken: u64,
    /// Test hook: SIGKILL this process at its N-th checkpoint.
    kill_at: Option<u64>,
}

/// Recovery handles given to a reader thread: the replay-log row it trims
/// and replays, the writer queue it injects replays into, and the resume
/// channel it signals the barrier through.
struct ReaderCtl {
    logs: ReplayLogs,
    resume_tx: Sender<(usize, u64)>,
    out_tx: SyncSender<Vec<u8>>,
    /// Writer-queue depth of the peer's link, bumped for injected replays
    /// so the gauge stays balanced with the writer thread's decrements.
    out_depth: Arc<AtomicU64>,
    rank: usize,
    peer: usize,
}

/// The socket-backed [`Comm`] endpoint.
///
/// Virtual-clock arithmetic, fault injection, and reliability bookkeeping
/// mirror [`crate::ThreadedComm`] operation for operation, so both
/// backends yield identical clocks and counters; only the substrate
/// differs — outgoing envelopes are encoded to TCMP frames on the calling
/// thread (measured as `serialize_ns`) and queued to per-peer writer
/// threads, while per-peer reader threads decode arrivals (measured as
/// `deserialize_ns`) into the receive path.
///
/// Constructed by [`run_cluster_tcp`] (in-process ranks) and
/// [`run_worker`] (one rank of a multi-process run).
pub struct TcpComm {
    rank: usize,
    size: usize,
    model: MachineModel,
    scheme: CommScheme,
    clock: f64,
    comm_lane: f64,
    lane_busy: f64,
    stats: CommStats,
    trace: Option<Trace>,
    /// Pre-encoded frames to each peer's writer thread.
    writers: Vec<Option<SyncSender<Vec<u8>>>>,
    /// Decoded envelopes from each peer's reader thread.
    rxs: Vec<Option<Receiver<Envelope>>>,
    /// Per-peer buffers of arrived-but-unmatched messages (tag matching).
    pending: Vec<Vec<Envelope>>,
    monitor: Arc<Monitor>,
    fault: Option<Arc<FaultPlan>>,
    crash_at: Option<f64>,
    stall: Option<RankStall>,
    links: LinkSeq,
    holdback: Vec<Option<Envelope>>,
    obs: Option<RankObs>,
    /// Per-peer writer-queue depth (frames queued, not yet written): bumped
    /// on every enqueue, decremented by the writer thread per frame drained.
    /// Feeds the `writer_queue_depth` gauge (current value + high-water).
    writer_depth: Vec<Arc<AtomicU64>>,
    /// Sender-side replay logs (`Some` only with a recovery policy).
    replay_logs: Option<ReplayLogs>,
    /// Crash-recovery state (`Some` only with a recovery policy).
    recovery: Option<TcpRecovery>,
}

impl TcpComm {
    fn build(
        cfg: TcpCommConfig,
        peers: Vec<Option<TcpStream>>,
        monitor: Arc<Monitor>,
    ) -> (TcpComm, Vec<JoinHandle<()>>) {
        let size = cfg.size;
        let metrics = cfg.obs.as_ref().map(|o| o.metrics());
        let mut writers: Vec<Option<SyncSender<Vec<u8>>>> = (0..size).map(|_| None).collect();
        let mut rxs: Vec<Option<Receiver<Envelope>>> = (0..size).map(|_| None).collect();
        let writer_depth: Vec<Arc<AtomicU64>> =
            (0..size).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut writer_handles = Vec::new();
        // Worker-mode recovery: reader threads signal each peer's `RESUME`
        // frontier through this channel to the resume barrier.
        let mut recovery = cfg.recovery;
        let resume_tx = match &mut recovery {
            Some(TcpRecovery::Worker(w)) => {
                let (tx, rx) = channel();
                w.resume_rx = Some(rx);
                Some(tx)
            }
            _ => None,
        };
        for (peer, stream) in peers.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            let read_half = stream.try_clone().expect("socket clone");
            let (out_tx, out_rx) = sync_channel::<Vec<u8>>(SEND_QUEUE_FRAMES);
            let (in_tx, in_rx) = channel::<Envelope>();
            let depth = writer_depth[peer].clone();
            let writer = thread::Builder::new()
                .name(format!("tilecc-tcp-w{}-{}", cfg.rank, peer))
                .spawn(move || {
                    let mut stream = stream;
                    // An empty buffer is the close sentinel from the
                    // endpoint's `Drop`: reader threads also hold a sender
                    // (replay injection), so channel closure alone cannot
                    // signal the flush. The sentinel is never counted in
                    // the depth gauge, so only real frames decrement it.
                    while let Ok(buf) = out_rx.recv() {
                        if buf.is_empty() {
                            break;
                        }
                        depth.fetch_sub(1, Ordering::Relaxed);
                        if std::io::Write::write_all(&mut stream, &buf).is_err() {
                            break;
                        }
                    }
                    // Flush done (or socket dead): announce end-of-stream but
                    // keep our read side open — the peer may still be
                    // flushing frames to us, and resetting the socket could
                    // destroy them in flight.
                    let _ = stream.shutdown(Shutdown::Write);
                })
                .expect("failed to spawn tcp writer thread");
            let reader_metrics = metrics.clone();
            // Worker-mode readers also service recovery frames: `CKPT_ACK`
            // trims our replay log, `RESUME` injects replays into the
            // peer's writer queue ahead of any fresh sends.
            let ctl = match (&cfg.replay_logs, &resume_tx) {
                (Some(logs), Some(tx)) => Some(ReaderCtl {
                    logs: logs.clone(),
                    resume_tx: tx.clone(),
                    out_tx: out_tx.clone(),
                    out_depth: writer_depth[peer].clone(),
                    rank: cfg.rank,
                    peer,
                }),
                _ => None,
            };
            thread::Builder::new()
                .name(format!("tilecc-tcp-r{}-{}", cfg.rank, peer))
                .spawn(move || reader_loop(read_half, in_tx, reader_metrics, ctl))
                .expect("failed to spawn tcp reader thread");
            writers[peer] = Some(out_tx);
            rxs[peer] = Some(in_rx);
            writer_handles.push(writer);
        }
        if let Some(o) = &cfg.obs {
            o.gauge_set(GaugeId::ConnectNs, cfg.connect_ns);
        }
        let comm = TcpComm {
            rank: cfg.rank,
            size,
            model: cfg.model,
            scheme: cfg.scheme,
            clock: 0.0,
            comm_lane: 0.0,
            lane_busy: 0.0,
            stats: CommStats::default(),
            trace: cfg.trace.then(Trace::default),
            writers,
            rxs,
            pending: (0..size).map(|_| Vec::new()).collect(),
            monitor,
            crash_at: cfg.fault.as_ref().and_then(|fp| fp.crash_time(cfg.rank)),
            stall: cfg.fault.as_ref().and_then(|fp| fp.stall_of(cfg.rank)),
            fault: cfg.fault,
            links: LinkSeq::new(size),
            holdback: (0..size).map(|_| None).collect(),
            obs: cfg.obs,
            writer_depth,
            replay_logs: cfg.replay_logs,
            recovery,
        };
        (comm, writer_handles)
    }

    /// Fire any virtual-time-triggered faults (identical to the threaded
    /// engine: a stall jumps the clock once, a crash panics).
    fn fault_tick(&mut self) {
        if let Some(stall) = self.stall {
            if self.clock >= stall.at {
                self.stall = None;
                self.clock += stall.duration;
                self.stats.wait_time += stall.duration;
                if let Some(o) = &self.obs {
                    o.virt_add(VirtAcc::Stall, stall.duration);
                }
            }
        }
        if let Some(at) = self.crash_at {
            if self.clock >= at {
                std::panic::panic_any(crate::threaded::InjectedCrash {
                    rank: self.rank,
                    at,
                    clock: self.clock,
                });
            }
        }
    }

    /// Encode one envelope and queue it to the peer's writer thread.
    fn push_link(&self, to: usize, env: &Envelope) -> Result<(), CommError> {
        self.monitor.bump();
        let t0 = self.obs.as_ref().map(|o| o.now_ns());
        let buf = wire::encode_envelope(self.rank as u32, env);
        if let (Some(o), Some(t0)) = (&self.obs, t0) {
            o.observe(HistId::SerializeNs, o.now_ns().saturating_sub(t0));
        }
        // Count the frame before enqueueing so the writer thread can never
        // decrement below zero, then roll back on a failed enqueue.
        self.writer_depth[to].fetch_add(1, Ordering::Relaxed);
        if self.writers[to]
            .as_ref()
            .expect("no link to peer")
            .send(buf)
            .is_err()
        {
            self.writer_depth[to].fetch_sub(1, Ordering::Relaxed);
            return Err(if self.monitor.aborted() {
                CommError::Aborted
            } else {
                CommError::PeerDisconnected { rank: to }
            });
        }
        if let Some(o) = &self.obs {
            o.gauge_set(
                GaugeId::WriterQueueDepth,
                self.writer_depth[to].load(Ordering::Relaxed),
            );
        }
        Ok(())
    }

    /// Queue a *redundant* envelope (duplicate copy or released reorder
    /// hold). A peer that already exited is not an error — see
    /// `ThreadedComm::push_link_redundant`.
    fn push_link_redundant(&self, to: usize, env: &Envelope) -> Result<(), CommError> {
        match self.push_link(to, env) {
            Ok(())
            | Err(CommError::PeerDisconnected { .. })
            | Err(CommError::Disconnected { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Release every held-back (reorder-injected) envelope.
    fn flush_holdbacks(&mut self) -> Result<(), CommError> {
        for to in 0..self.size {
            if let Some(env) = self.holdback[to].take() {
                self.push_link_redundant(to, &env)?;
            }
        }
        Ok(())
    }

    /// The next in-sequence envelope from `from`, suppressing duplicates
    /// and re-sequencing out-of-order arrivals — the socket twin of the
    /// threaded engine's receive loop.
    fn next_in_order(&mut self, from: usize, tag: i64) -> Result<Envelope, CommError> {
        if let Some(env) = self.links.take_ready(from) {
            return Ok(env);
        }
        self.monitor
            .set(self.rank, RankPhase::Blocked { from, tag });
        let result = loop {
            let rx = self.rxs[from].as_ref().expect("no link from peer");
            match rx.recv_timeout(RECV_POLL) {
                Ok(env) => {
                    self.monitor.bump();
                    match self.links.admit(from, env) {
                        Admit::Deliver(env) => break Ok(env),
                        Admit::Duplicate => {
                            self.stats.duplicates_suppressed += 1;
                            if let Some(o) = &self.obs {
                                o.add(Counter::DupsSuppressed, 1);
                            }
                        }
                        Admit::Buffered => {}
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.monitor.aborted() {
                        break Err(CommError::Aborted);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    break Err(if self.monitor.aborted() {
                        CommError::Aborted
                    } else {
                        CommError::PeerDisconnected { rank: from }
                    });
                }
            }
        };
        self.monitor.set(self.rank, RankPhase::Running);
        result
    }

    /// Restart-the-world synchronization for a resumed worker: announce
    /// this rank's restored receive frontier to every peer (`RESUME`), then
    /// wait for every peer's announcement. Reader threads queue the logged
    /// replays *before* signalling, and the writer queue is FIFO, so every
    /// replayed envelope reaches a peer ahead of any fresh send.
    fn worker_resume_barrier(&mut self) -> Result<(), CommError> {
        let size = self.size;
        let rank = self.rank;
        let expects: Vec<u64> = (0..size).map(|p| self.links.expect_of(p)).collect();
        let Some(TcpRecovery::Worker(w)) = self.recovery.as_mut() else {
            return Ok(());
        };
        if !w.resume_run {
            return Ok(());
        }
        for (peer, writer) in self.writers.iter().enumerate() {
            if peer == rank {
                continue;
            }
            let mut frame = Frame::control(FrameKind::Resume, rank as u32);
            frame.seq = expects[peer];
            self.writer_depth[peer].fetch_add(1, Ordering::Relaxed);
            writer
                .as_ref()
                .expect("no link to peer")
                .send(frame.encode())
                .map_err(|_| CommError::PeerDisconnected { rank: peer })?;
        }
        let rx = w
            .resume_rx
            .as_ref()
            .expect("worker recovery has a resume channel");
        for _ in 0..size.saturating_sub(1) {
            let (peer, frontier) = rx.recv_timeout(HANDSHAKE_TIMEOUT).map_err(|_| {
                transport_error("resume barrier", "timed out waiting for peer RESUME frames")
            })?;
            w.resend_skip[peer] = frontier;
        }
        Ok(())
    }
}

/// Reader-thread body: decode frames off one peer socket into the receive
/// channel. Runs until end-of-stream so the socket is fully drained even
/// after the local rank finished (a reset could otherwise destroy frames
/// a *third* rank still needs — TCP resets discard receive buffers).
fn reader_loop(
    mut stream: TcpStream,
    in_tx: std::sync::mpsc::Sender<Envelope>,
    metrics: Option<Arc<RankMetrics>>,
    ctl: Option<ReaderCtl>,
) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(frame) if frame.kind == FrameKind::Data || frame.kind == FrameKind::Replay => {
                let t0 = Instant::now();
                match wire::decode_envelope(&frame) {
                    Ok(env) => {
                        if let Some(m) = &metrics {
                            m.hist(HistId::DeserializeNs)
                                .observe(t0.elapsed().as_nanos() as u64);
                        }
                        // A closed receiver means the local rank finished;
                        // keep draining the socket regardless.
                        let _ = in_tx.send(env);
                    }
                    Err(_) => break,
                }
            }
            // The peer's checkpoint acknowledges every envelope below `seq`
            // on this link: drop them from our replay log.
            Ok(frame) if frame.kind == FrameKind::CkptAck => {
                if let Some(ctl) = &ctl {
                    ctl.logs[ctl.rank][ctl.peer]
                        .lock()
                        .expect("replay log poisoned")
                        .trim_below(frame.seq);
                }
            }
            // A respawned peer announces its restored receive frontier:
            // queue the retained envelopes from there on — ahead of any
            // fresh send, since the writer queue is FIFO — then signal the
            // resume barrier.
            Ok(frame) if frame.kind == FrameKind::Resume => {
                if let Some(ctl) = &ctl {
                    let replays = ctl.logs[ctl.rank][ctl.peer]
                        .lock()
                        .expect("replay log poisoned")
                        .replay_from(frame.seq);
                    for env in replays {
                        ctl.out_depth.fetch_add(1, Ordering::Relaxed);
                        if ctl
                            .out_tx
                            .send(wire::encode_replay(ctl.rank as u32, &env))
                            .is_err()
                        {
                            ctl.out_depth.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                    let _ = ctl.resume_tx.send((ctl.peer, frame.seq));
                }
            }
            // Stray control frames on a mesh socket: ignore.
            Ok(_) => {}
            // Closed, truncated, or reset: the peer is gone.
            Err(_) => break,
        }
    }
}

impl Comm for TcpComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn try_send_tagged(
        &mut self,
        to: usize,
        tag: i64,
        payload: Vec<f64>,
        nominal_bytes: usize,
    ) -> Result<(), CommError> {
        assert!(to != self.rank, "send to self is not supported");
        self.fault_tick();
        let wall_t0 = self.obs.as_ref().map(|o| o.now_ns());
        let virt_t0 = self.clock;
        let seq = self.links.assign(to);
        // Recovery re-execution: a send the receiver already holds redoes
        // every virtual charge and counter but skips the physical push —
        // in-process below the crash-time frontier, worker mode below the
        // peer's announced `RESUME` frontier.
        let skip_physical = match &self.recovery {
            Some(TcpRecovery::InProcess(r)) => seq < r.resend_skip[to],
            Some(TcpRecovery::Worker(w)) => seq < w.resend_skip[to],
            None => false,
        };

        if let Some(fault) = self.fault.clone() {
            for pause in
                retransmit_pauses(&fault, &self.model, self.rank, to, tag, seq, nominal_bytes)?
            {
                self.stats.retransmissions += 1;
                self.stats.retrans_time += pause;
                match self.scheme {
                    CommScheme::Blocking => {
                        self.clock += pause;
                        if let Some(o) = &self.obs {
                            o.virt_add(VirtAcc::Retrans, pause);
                        }
                    }
                    CommScheme::Overlapped => {
                        let lane_start = self.comm_lane.max(self.clock);
                        self.comm_lane = lane_start + pause;
                        self.lane_busy += pause;
                    }
                }
                if let Some(o) = &self.obs {
                    o.add(Counter::FaultDrops, 1);
                    o.add(Counter::Retransmits, 1);
                    // Modelled backoff latency, in virtual nanoseconds; a
                    // histogram, so it never perturbs the clock partition.
                    o.observe(HistId::RetransNs, (pause * 1e9) as u64);
                }
            }
        }

        let send_cost = match self.scheme {
            CommScheme::Blocking => self.model.send_cost(nominal_bytes),
            CommScheme::Overlapped => 0.0,
        };
        self.clock += send_cost;
        let ready_at = match self.scheme {
            CommScheme::Blocking => self.clock + self.model.wire_latency,
            CommScheme::Overlapped => {
                let lane_start = self.comm_lane.max(self.clock);
                let lane_end = lane_start + self.model.send_cost(nominal_bytes);
                self.comm_lane = lane_end;
                self.lane_busy += self.model.send_cost(nominal_bytes);
                lane_end + self.model.wire_latency
            }
        };
        let mut env = Envelope {
            payload,
            tag,
            ready_at,
            seq,
            bytes: nominal_bytes,
        };
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += nominal_bytes as u64;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Send {
                at: self.clock,
                to,
                bytes: nominal_bytes,
                tag,
            });
        }
        if let Some(o) = &self.obs {
            o.add(Counter::MessagesSent, 1);
            o.add(Counter::BytesSent, nominal_bytes as u64);
            o.virt_add(VirtAcc::Send, send_cost);
        }

        let (duplicate, reorder) = match &self.fault {
            Some(f) if f.perturbs_links() => {
                if let Some(extra) = f.delayed(self.rank, to, seq) {
                    env.ready_at += extra;
                    if let Some(o) = &self.obs {
                        o.add(Counter::FaultDelays, 1);
                    }
                }
                let (dup, reord) = (
                    f.duplicated(self.rank, to, seq),
                    f.reordered(self.rank, to, seq),
                );
                if let Some(o) = &self.obs {
                    if dup {
                        o.add(Counter::FaultDups, 1);
                    }
                    if reord {
                        o.add(Counter::FaultReorders, 1);
                    }
                }
                (dup, reord)
            }
            _ => (false, false),
        };
        // Retain the primary copy (post delay perturbation, so a replay
        // reproduces the receiver's wait bitwise) until the receiver's
        // checkpoint acknowledges it. Only log-extending sends are
        // recorded: a skipped in-process re-execution send below the crash
        // frontier is already retained, while a resumed worker's skipped
        // sends past its own checkpoint frontier extend the row restored
        // from the file and must be logged even though the peer holds them.
        if let Some(logs) = &self.replay_logs {
            let mut log = logs[self.rank][to].lock().expect("replay log poisoned");
            if env.seq == log.high() {
                log.record(env.clone());
            }
        }
        if !skip_physical {
            if reorder {
                if duplicate {
                    self.push_link(to, &env)?;
                }
                if let Some(prev) = self.holdback[to].take() {
                    self.push_link_redundant(to, &prev)?;
                }
                self.holdback[to] = Some(env);
            } else {
                if duplicate {
                    self.push_link(to, &env)?;
                    self.push_link_redundant(to, &env)?;
                } else {
                    self.push_link(to, &env)?;
                }
                if let Some(prev) = self.holdback[to].take() {
                    self.push_link_redundant(to, &prev)?;
                }
            }
        }
        if let Some(wall_t0) = wall_t0 {
            let virt_t1 = self.clock;
            let outstanding = self.holdback.iter().filter(|h| h.is_some()).count() as u64;
            if let Some(o) = &mut self.obs {
                o.gauge_set(GaugeId::OutstandingSends, outstanding);
                o.edge_span(
                    Phase::Send,
                    wall_t0,
                    (virt_t0, virt_t1),
                    nominal_bytes as u64,
                    SpanEdge {
                        peer: to as u32,
                        tag,
                        seq,
                    },
                );
            }
        }
        Ok(())
    }

    fn try_recv_tagged(&mut self, from: usize, tag: i64) -> Result<Vec<f64>, CommError> {
        assert!(from != self.rank, "recv from self is not supported");
        self.fault_tick();
        self.flush_holdbacks()?;
        let wall_t0 = self.obs.as_ref().map(|o| o.now_ns());
        let start = self.clock;
        let env = if let Some(pos) = self.pending[from].iter().position(|e| e.tag == tag) {
            self.pending[from].remove(pos)
        } else {
            loop {
                let env = self.next_in_order(from, tag)?;
                if env.tag == tag {
                    break env;
                }
                self.pending[from].push(env);
            }
        };
        if env.ready_at > self.clock {
            let waited = env.ready_at - self.clock;
            self.stats.wait_time += waited;
            self.clock = env.ready_at;
            if let Some(o) = &self.obs {
                o.virt_add(VirtAcc::Wait, waited);
            }
        }
        let ready = self.clock;
        if self.scheme == CommScheme::Blocking {
            self.clock += self.model.recv_overhead;
            if let Some(o) = &self.obs {
                o.virt_add(VirtAcc::RecvOverhead, self.model.recv_overhead);
            }
        }
        self.stats.messages_received += 1;
        self.stats.bytes_received += env.bytes as u64;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Recv {
                start,
                ready,
                end: self.clock,
                from,
                tag,
            });
        }
        if let Some(wall_t0) = wall_t0 {
            let virt_t1 = self.clock;
            let pending_depth = self.pending.iter().map(|p| p.len()).sum::<usize>() as u64;
            let reseq_depth = self.links.resequence_depth();
            if let Some(o) = &mut self.obs {
                o.add(Counter::MessagesReceived, 1);
                o.add(Counter::BytesReceived, env.bytes as u64);
                o.observe(HistId::RecvWaitNs, o.now_ns().saturating_sub(wall_t0));
                o.gauge_set(GaugeId::PendingDepth, pending_depth);
                o.gauge_set(GaugeId::ResequenceDepth, reseq_depth);
                o.edge_span(
                    Phase::Recv,
                    wall_t0,
                    (start, virt_t1),
                    env.bytes as u64,
                    SpanEdge {
                        peer: from as u32,
                        tag,
                        seq: env.seq,
                    },
                );
            }
        }
        Ok(env.payload)
    }

    fn drain_sends(&mut self) -> f64 {
        let overshoot = (self.comm_lane - self.clock).max(0.0);
        let hidden = (self.lane_busy - overshoot).max(0.0);
        if let Some(o) = &self.obs {
            if overshoot > 0.0 {
                o.virt_add(VirtAcc::Drain, overshoot);
            }
            if hidden > 0.0 {
                o.virt_add(VirtAcc::OverlapHidden, hidden);
            }
        }
        self.clock += overshoot;
        self.comm_lane = self.clock;
        self.lane_busy = 0.0;
        overshoot
    }

    fn advance_compute(&mut self, iters: u64) {
        self.fault_tick();
        let dt = self.model.compute_cost(iters);
        let start = self.clock;
        self.clock += dt;
        self.stats.compute_time += dt;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Compute {
                start,
                end: self.clock,
                iters,
            });
        }
        if let Some(o) = &self.obs {
            o.virt_add(VirtAcc::Compute, dt);
        }
    }

    fn local_time(&self) -> f64 {
        self.clock
    }

    fn model(&self) -> &MachineModel {
        &self.model
    }

    fn stats(&self) -> CommStats {
        self.stats
    }

    fn obs(&mut self) -> Option<&mut RankObs> {
        self.obs.as_mut()
    }

    fn recovery_interval(&self) -> Option<u64> {
        match &self.recovery {
            Some(TcpRecovery::InProcess(r)) => Some(r.interval),
            Some(TcpRecovery::Worker(w)) => Some(w.interval),
            None => None,
        }
    }

    fn checkpoint(&mut self, chain_pos: u64, app: &[u8]) {
        if self.recovery.is_none() {
            return;
        }
        // Snapshot observability state *before* counting the checkpoint, so
        // a restore followed by a re-checkpoint at the same position counts
        // it exactly once — like the fault-free run.
        let (counters, virts) = match &self.obs {
            Some(o) => {
                let m = o.metrics();
                (
                    Some(Counter::ALL.iter().map(|&c| m.get(c)).collect()),
                    Some(VirtAcc::ALL.iter().map(|&a| m.virt_get(a)).collect()),
                )
            }
            None => (None, None),
        };
        let ckpt = CkptState {
            chain_pos,
            app: app.to_vec(),
            clock: self.clock,
            comm_lane: self.comm_lane,
            lane_busy: self.lane_busy,
            stats: self.stats,
            next: self.links.next_frontier(),
            expect: self.links.expect_frontier(),
            pending: self.pending.clone(),
            trace_len: self.trace.as_ref().map_or(0, |t| t.events.len()),
            counters,
            virts,
        };
        // Transport-level write accounting: the in-process path snapshots
        // only the application state, worker mode persists the full encoded
        // checkpoint file.
        let mut ckpt_bytes = app.len() as u64;
        match self.recovery.as_mut().expect("recovery checked above") {
            TcpRecovery::InProcess(rec) => {
                // In-process ranks share the log matrix: acknowledge the
                // consumed envelopes by trimming the incoming logs directly.
                if let Some(logs) = &self.replay_logs {
                    for from in 0..self.size {
                        if from != self.rank {
                            logs[from][self.rank]
                                .lock()
                                .expect("replay log poisoned")
                                .trim_below(self.links.expect_of(from));
                        }
                    }
                }
                rec.ckpt = Some(ckpt);
            }
            TcpRecovery::Worker(w) => {
                // A worker persists the checkpoint — endpoint snapshot plus
                // its own outgoing replay-log row — then acknowledges the
                // consumed envelopes with a `CKPT_ACK` per peer.
                let row: Vec<(u64, Vec<Envelope>)> = (0..self.size)
                    .map(|to| match &self.replay_logs {
                        Some(logs) if to != self.rank => {
                            let log = logs[self.rank][to].lock().expect("replay log poisoned");
                            (log.base(), log.items().cloned().collect())
                        }
                        _ => (0, Vec::new()),
                    })
                    .collect();
                let bytes = encode_ckpt(&ckpt, &row);
                ckpt_bytes = bytes.len() as u64;
                if let Err(e) = write_ckpt_file(&w.path, &bytes) {
                    // A failed write must not kill the run: the previous
                    // checkpoint (or a fresh start) still recovers it.
                    eprintln!("tilecc worker {}: checkpoint write failed: {e}", self.rank);
                }
                w.ckpts_taken += 1;
                for (peer, writer) in self.writers.iter().enumerate() {
                    if peer == self.rank {
                        continue;
                    }
                    let mut frame = Frame::control(FrameKind::CkptAck, self.rank as u32);
                    frame.seq = self.links.expect_of(peer);
                    if let Some(writer) = writer {
                        self.writer_depth[peer].fetch_add(1, Ordering::Relaxed);
                        if writer.send(frame.encode()).is_err() {
                            self.writer_depth[peer].fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
                // Test hook: hard-kill this process at its N-th checkpoint
                // (first life only — a respawn must not re-fire the kill).
                if !w.resume_run && w.kill_at == Some(w.ckpts_taken) {
                    kill_self();
                }
            }
        }
        if let Some(o) = &self.obs {
            o.add(Counter::Checkpoints, 1);
            o.add(Counter::CkptWrites, 1);
            o.add(Counter::CkptBytes, ckpt_bytes);
            if let Some(logs) = &self.replay_logs {
                let depth: u64 = (0..self.size)
                    .filter(|&to| to != self.rank)
                    .map(|to| {
                        logs[self.rank][to]
                            .lock()
                            .expect("replay log poisoned")
                            .len() as u64
                    })
                    .sum();
                o.gauge_set(GaugeId::ReplayLogDepth, depth);
            }
        }
    }

    fn try_restore(&mut self) -> Option<Restored> {
        // Only in-process ranks restore in place; a worker recovers at the
        // process level (its crash reaches the driver, which restarts the
        // world with `--resume`).
        match &self.recovery {
            Some(TcpRecovery::InProcess(rec)) => rec.ckpt.as_ref()?,
            _ => return None,
        };
        // Consume one unit of the run-wide restore budget.
        {
            let Some(TcpRecovery::InProcess(rec)) = &self.recovery else {
                unreachable!("matched above");
            };
            loop {
                let left = rec.budget.load(Ordering::SeqCst);
                if left == 0 {
                    return None;
                }
                if rec
                    .budget
                    .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    break;
                }
            }
        }
        // Crash-time reorder holds may contain envelopes the receiver still
        // needs; release them before rewinding (their seq numbers lie past
        // the checkpoint frontier, so re-execution will skip re-pushing).
        let _ = self.flush_holdbacks();
        let clock_crash = self.clock;
        let next_crash = self.links.next_frontier();
        let expect_crash = self.links.expect_frontier();

        let Some(TcpRecovery::InProcess(rec)) = self.recovery.as_mut() else {
            unreachable!("matched above");
        };
        let ckpt = rec.ckpt.as_ref().expect("checked above");
        self.clock = ckpt.clock;
        self.comm_lane = ckpt.comm_lane;
        self.lane_busy = ckpt.lane_busy;
        self.stats = ckpt.stats;
        self.links.rewind(&ckpt.next, &ckpt.expect);
        self.pending = ckpt.pending.clone();
        if let Some(tr) = &mut self.trace {
            tr.events.truncate(ckpt.trace_len);
        }
        if let Some(o) = &self.obs {
            let m = o.metrics();
            if let Some(counters) = &ckpt.counters {
                for (&c, &v) in Counter::ALL.iter().zip(counters) {
                    m.set(c, v);
                }
            }
            if let Some(virts) = &ckpt.virts {
                for (&a, &v) in VirtAcc::ALL.iter().zip(virts) {
                    m.virt_set(a, v);
                }
            }
        }
        // Re-inject the lost in-flight window from the peers' replay logs:
        // everything consumed between the checkpoint and the crash.
        if let Some(logs) = &self.replay_logs {
            for from in 0..self.size {
                if from != self.rank {
                    let replayed = logs[from][self.rank]
                        .lock()
                        .expect("replay log poisoned")
                        .range(ckpt.expect[from], expect_crash[from]);
                    for env in replayed {
                        self.links.reinject(from, env);
                    }
                }
            }
        }
        rec.resend_skip = next_crash;
        rec.debt += clock_crash - ckpt.clock;
        rec.used += 1;
        let (chain_pos, app) = (ckpt.chain_pos, ckpt.app.clone());
        let used = rec.used;
        self.stats.recoveries = used;
        // The crash fired; a restored rank does not re-crash.
        self.crash_at = None;
        if let Some(o) = &self.obs {
            o.add(Counter::Recoveries, 1);
        }
        self.monitor.bump();
        Some(Restored { chain_pos, app })
    }

    fn resume_state(&mut self) -> Option<Restored> {
        match self.recovery.as_mut() {
            Some(TcpRecovery::Worker(w)) => w.resume.take(),
            _ => None,
        }
    }

    fn settle_recovery(&mut self) -> f64 {
        // Worker-mode recovery carries no debt: a respawned process resumes
        // its checkpointed clock and never rewinds a live one.
        let Some(TcpRecovery::InProcess(rec)) = self.recovery.as_mut() else {
            return 0.0;
        };
        let debt = rec.debt;
        rec.debt = 0.0;
        if debt > 0.0 {
            self.clock += debt;
            self.stats.recovery_time += debt;
            if let Some(o) = &self.obs {
                o.virt_add(VirtAcc::Recovery, debt);
            }
        }
        debt
    }
}

impl Drop for TcpComm {
    fn drop(&mut self) {
        let _ = self.flush_holdbacks();
        // Release the writer threads: they flush what is queued, then send
        // FIN; readers drain to end-of-stream. With recovery active the
        // reader threads hold queue senders too (replay injection), so
        // dropping this endpoint's senders does not close the channels —
        // hand every writer the explicit flush-and-exit sentinel instead.
        for tx in self.writers.iter().flatten() {
            let _ = tx.send(Vec::new());
        }
    }
}

// ---------------------------------------------------------------------------
// In-process runner
// ---------------------------------------------------------------------------

/// Run an SPMD program over `size` ranks communicating through real
/// localhost sockets, all within this process — the TCP twin of
/// [`crate::run_cluster_opts`], sharing its watchdog (deadlock detection,
/// wall cap) and failure reporting.
pub fn run_cluster_tcp<R, F>(
    size: usize,
    model: MachineModel,
    options: EngineOptions,
    f: F,
) -> Result<RunReport<R>, RunError>
where
    R: Send + 'static,
    F: Fn(&mut TcpComm) -> R + Send + Sync + 'static,
{
    assert!(size > 0, "cluster needs at least one process");
    install_quiet_panic_hook();
    let rendezvous = Rendezvous::bind().map_err(|error| RunError::Comm { rank: 0, error })?;
    let rdv_addr = rendezvous.addr().to_string();
    // The coordinator keeps the control sockets alive until the run ends.
    let coordinator = thread::spawn(move || rendezvous.coordinate(size, HANDSHAKE_TIMEOUT));

    let scheme = options.scheme;
    let fault = options.fault.clone().map(Arc::new);
    // In-process recovery mirrors the threaded engine exactly: a shared
    // replay-log matrix and a run-wide restore budget.
    let recovery_opts = options.recovery;
    let replay_logs = recovery_opts.map(|_| new_replay_logs(size));
    let recovery_budget = recovery_opts.map(|r| Arc::new(AtomicU64::new(r.max_recoveries)));
    let monitor = Arc::new(Monitor::new(size));
    let f = Arc::new(f);
    let (done_tx, done_rx) = channel();
    for rank in 0..size {
        let f = f.clone();
        let monitor_for_rank = monitor.clone();
        let done = done_tx.clone();
        let fault = fault.clone();
        let obs = options
            .obs
            .as_ref()
            .map(|reg| RankObs::new(reg.clone(), rank));
        let trace = options.trace;
        let rdv_addr = rdv_addr.clone();
        let rank_logs = replay_logs.clone();
        let rank_budget = recovery_budget.clone();
        thread::Builder::new()
            .name(format!("tilecc-tcp-rank-{rank}"))
            .spawn(move || {
                let connect_t0 = Instant::now();
                let mesh = match connect_mesh(rank, size, &rdv_addr, "127.0.0.1:0") {
                    Ok(mesh) => mesh,
                    Err(error) => {
                        monitor_for_rank.set(rank, RankPhase::Done);
                        let _ = done.send((
                            rank,
                            RankEnd::CommFail(error),
                            0.0,
                            CommStats::default(),
                            Trace::default(),
                        ));
                        return;
                    }
                };
                // Keep the control socket open for the run's duration so the
                // coordinator's accept bookkeeping stays simple.
                let _control = mesh.control;
                let (mut comm, writer_handles) = TcpComm::build(
                    TcpCommConfig {
                        rank,
                        size,
                        model,
                        scheme,
                        fault,
                        trace,
                        obs,
                        connect_ns: connect_t0.elapsed().as_nanos() as u64,
                        replay_logs: rank_logs,
                        recovery: recovery_opts.map(|r| {
                            TcpRecovery::InProcess(RecoveryCtl {
                                interval: r.interval.max(1),
                                budget: rank_budget.clone().expect("budget set with recovery"),
                                ckpt: None,
                                resend_skip: vec![0; size],
                                debt: 0.0,
                                used: 0,
                            })
                        }),
                    },
                    mesh.peers,
                    monitor_for_rank.clone(),
                );
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let r = f(&mut comm);
                    // Charge the accumulated recovery debt once, at the end:
                    // every message timestamp stayed bitwise fault-free, and
                    // the final clock is fault-free time + recovery time.
                    comm.settle_recovery();
                    r
                }));
                monitor_for_rank.set(rank, RankPhase::Done);
                let end = match outcome {
                    Ok(r) => RankEnd::Ok(r),
                    Err(payload) => match payload.downcast::<CommAbort>() {
                        Ok(abort) => RankEnd::CommFail(abort.error),
                        Err(payload) => RankEnd::Panic(panic_message(payload.as_ref())),
                    },
                };
                let (clock, stats) = (comm.clock, comm.stats);
                let trace = comm.trace.take().unwrap_or_default();
                // Close our endpoint: writers flush + FIN, blocked peers
                // observe end-of-stream instead of hanging.
                drop(comm);
                for h in writer_handles {
                    let _ = h.join();
                }
                let _ = done.send((rank, end, clock, stats, trace));
            })
            .expect("failed to spawn tcp rank thread");
    }
    drop(done_tx);

    let result = collect(size, monitor, done_rx, &options);
    let _ = coordinator.join();
    result
}

// ---------------------------------------------------------------------------
// Multi-process workers
// ---------------------------------------------------------------------------

/// Configuration of one worker process's rank ([`run_worker`]).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// This worker's rank.
    pub rank: usize,
    /// World size (number of worker processes).
    pub size: usize,
    /// The driver's rendezvous address (`host:port`).
    pub rendezvous: String,
    /// Machine model, which must match the driver's.
    pub model: MachineModel,
    /// Engine options; `scheme`, `fault`, `trace`, and `obs` apply
    /// (watchdog fields are the driver's job in the multi-process model).
    pub options: EngineOptions,
    /// Local address (`host:port`, usually port 0) to bind the mesh
    /// listener on; loopback by default.
    pub bind_addr: String,
    /// Heartbeat cadence to the driver (pair it with the driver's
    /// dead-peer timeout: the timeout must comfortably exceed this).
    pub heartbeat: Duration,
    /// Checkpoint/recovery policy (`None` disables checkpointing).
    pub ckpt: Option<WorkerCkptConfig>,
}

impl WorkerConfig {
    /// A worker with default transport knobs: loopback bind, the default
    /// heartbeat cadence, no checkpointing.
    pub fn new(
        rank: usize,
        size: usize,
        rendezvous: String,
        model: MachineModel,
        options: EngineOptions,
    ) -> WorkerConfig {
        WorkerConfig {
            rank,
            size,
            rendezvous,
            model,
            options,
            bind_addr: "127.0.0.1:0".into(),
            heartbeat: HEARTBEAT_PERIOD,
            ckpt: None,
        }
    }
}

/// Checkpoint/recovery policy for one worker process.
#[derive(Clone, Debug)]
pub struct WorkerCkptConfig {
    /// Checkpoint file, atomically replaced at each checkpoint.
    pub path: PathBuf,
    /// Chain steps between checkpoints (min 1).
    pub interval: u64,
    /// Resume from `path` instead of starting fresh — set by the driver on
    /// every worker of a restarted (restart-the-world) run. A missing file
    /// resumes from position zero, which is only possible when the process
    /// died before its first checkpoint.
    pub resume: bool,
    /// Restores this rank has undergone (the driver's respawn count),
    /// surfaced as `CommStats::recoveries`.
    pub recovered: u64,
}

/// A worker's channel back to the driver after a successful run: used to
/// ship the result payload and wait for the driver's `BYE` barrier.
pub struct WorkerHandle {
    rank: usize,
    control: Arc<Mutex<TcpStream>>,
}

impl WorkerHandle {
    /// Send the `RESULT` frame: final virtual clock plus a caller-defined
    /// payload (serialized stats and gathered data).
    pub fn send_result(&self, local_time: f64, payload: Vec<u8>) -> Result<(), CommError> {
        let mut frame = Frame::control(FrameKind::Result, self.rank as u32);
        frame.ready_at = local_time;
        frame.payload = payload;
        let mut control = self.control.lock().expect("control poisoned");
        wire::write_frame(&mut *control, &frame).map_err(|e| transport_error("send result", e))
    }

    /// Ship the rank's *final* metrics snapshot as an absolute `STATS`
    /// frame (`seq = u64::MAX`, so it outranks every heartbeat delta).
    /// Call it before [`WorkerHandle::send_result`]: the control socket is
    /// ordered, so the driver holds the complete final snapshot by the
    /// time the result lands — that is what makes the driver-merged report
    /// bitwise-identical to an in-process run's.
    pub fn send_stats(&self, snap: &StatsSnapshot) -> Result<(), CommError> {
        let mut frame = Frame::control(FrameKind::Stats, self.rank as u32);
        frame.seq = u64::MAX;
        frame.nominal = 1;
        frame.payload = snap.encode_delta(&StatsSnapshot::zero());
        let mut control = self.control.lock().expect("control poisoned");
        wire::write_frame(&mut *control, &frame).map_err(|e| transport_error("send stats", e))
    }

    /// Block until the driver's `BYE` arrives — the signal that every
    /// rank's result is safely at the driver, so this process may exit
    /// without resetting sockets that still carry undelivered frames.
    pub fn wait_bye(&self) -> Result<(), CommError> {
        let mut control = self.control.lock().expect("control poisoned");
        control
            .set_read_timeout(Some(BYE_TIMEOUT))
            .map_err(|e| transport_error("await bye", e))?;
        loop {
            match wire::read_frame(&mut *control) {
                Ok(frame) if frame.kind == FrameKind::Bye => return Ok(()),
                Ok(_) => {}
                Err(e) => return Err(transport_error("await bye", e)),
            }
        }
    }
}

/// Encode a typed [`CommError`] into `ERROR`-frame scalars `(tag, nominal,
/// aux)` — `aux` rides in the frame's otherwise-unused `ready_at` slot and
/// carries [`CommError::RetransmitExhausted`]'s tag as a bit pattern; the
/// inverse of [`decode_comm_error`].
fn encode_comm_error(e: &CommError) -> (i64, u64, f64) {
    match e {
        CommError::Disconnected { peer } => (1, *peer as u64, 0.0),
        CommError::RetransmitExhausted {
            rank,
            tag,
            attempts,
        } => (
            2,
            (*rank as u64) | ((*attempts as u64) << 32),
            f64::from_bits(*tag as u64),
        ),
        CommError::Aborted => (3, 0, 0.0),
        CommError::PeerDisconnected { rank } => (4, *rank as u64, 0.0),
        CommError::Transport { .. } => (5, 0, 0.0),
    }
}

/// Reconstruct a typed [`CommError`] from `ERROR`-frame scalars; the
/// payload text supplies [`CommError::Transport`]'s detail.
fn decode_comm_error(tag: i64, nominal: u64, aux: f64, text: &str) -> CommError {
    match tag {
        1 => CommError::Disconnected {
            peer: (nominal & 0xFFFF_FFFF) as usize,
        },
        2 => CommError::RetransmitExhausted {
            rank: (nominal & 0xFFFF_FFFF) as usize,
            tag: aux.to_bits() as i64,
            attempts: (nominal >> 32) as u32,
        },
        3 => CommError::Aborted,
        4 => CommError::PeerDisconnected {
            rank: (nominal & 0xFFFF_FFFF) as usize,
        },
        _ => CommError::Transport {
            detail: text.to_string(),
        },
    }
}

// ---------------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------------

/// Magic prefix of a worker checkpoint file.
const CKPT_MAGIC: [u8; 4] = *b"TCKP";
/// Checkpoint file format version.
const CKPT_VERSION: u16 = 1;

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    push_u64(buf, v.to_bits());
}

fn push_env(buf: &mut Vec<u8>, env: &Envelope) {
    push_u64(buf, env.tag as u64);
    push_u64(buf, env.seq);
    push_f64(buf, env.ready_at);
    push_u64(buf, env.bytes as u64);
    push_u64(buf, env.payload.len() as u64);
    for v in &env.payload {
        push_f64(buf, *v);
    }
}

/// Serialize a worker checkpoint: the endpoint snapshot plus this rank's
/// outgoing replay-log row, all little-endian with `f64`s as bit patterns,
/// so a resumed run is bitwise identical to an uninterrupted one.
fn encode_ckpt(ckpt: &CkptState, row: &[(u64, Vec<Envelope>)]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&CKPT_MAGIC);
    b.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    push_u64(&mut b, ckpt.chain_pos);
    push_u64(&mut b, ckpt.app.len() as u64);
    b.extend_from_slice(&ckpt.app);
    push_f64(&mut b, ckpt.clock);
    push_f64(&mut b, ckpt.comm_lane);
    push_f64(&mut b, ckpt.lane_busy);
    let st = &ckpt.stats;
    push_u64(&mut b, st.messages_sent);
    push_u64(&mut b, st.bytes_sent);
    push_u64(&mut b, st.messages_received);
    push_u64(&mut b, st.bytes_received);
    push_f64(&mut b, st.wait_time);
    push_f64(&mut b, st.compute_time);
    push_u64(&mut b, st.retransmissions);
    push_f64(&mut b, st.retrans_time);
    push_u64(&mut b, st.duplicates_suppressed);
    push_u64(&mut b, st.recoveries);
    push_f64(&mut b, st.recovery_time);
    push_u64(&mut b, ckpt.next.len() as u64);
    for &v in &ckpt.next {
        push_u64(&mut b, v);
    }
    for &v in &ckpt.expect {
        push_u64(&mut b, v);
    }
    for peer in &ckpt.pending {
        push_u64(&mut b, peer.len() as u64);
        for env in peer {
            push_env(&mut b, env);
        }
    }
    match &ckpt.counters {
        Some(cs) => {
            push_u64(&mut b, 1);
            push_u64(&mut b, cs.len() as u64);
            for &c in cs {
                push_u64(&mut b, c);
            }
        }
        None => push_u64(&mut b, 0),
    }
    match &ckpt.virts {
        Some(vs) => {
            push_u64(&mut b, 1);
            push_u64(&mut b, vs.len() as u64);
            for &v in vs {
                push_f64(&mut b, v);
            }
        }
        None => push_u64(&mut b, 0),
    }
    for (base, items) in row {
        push_u64(&mut b, *base);
        push_u64(&mut b, items.len() as u64);
        for env in items {
            push_env(&mut b, env);
        }
    }
    b
}

/// Bounds-checked little-endian reader over a checkpoint file.
struct CkptCursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> CkptCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.at + n > self.buf.len() {
            return Err("truncated checkpoint file".into());
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("slice size"),
        ))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn env(&mut self) -> Result<Envelope, String> {
        let tag = self.u64()? as i64;
        let seq = self.u64()?;
        let ready_at = self.f64()?;
        let bytes = self.u64()? as usize;
        let n = self.u64()? as usize;
        let mut payload = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            payload.push(self.f64()?);
        }
        Ok(Envelope {
            payload,
            tag,
            ready_at,
            seq,
            bytes,
        })
    }
}

/// Deserialize a worker checkpoint; the inverse of [`encode_ckpt`]. The
/// worker's trace restarts empty on respawn, so `trace_len` is zero.
#[allow(clippy::type_complexity)]
fn decode_ckpt(bytes: &[u8]) -> Result<(CkptState, Vec<(u64, Vec<Envelope>)>), String> {
    let mut c = CkptCursor { buf: bytes, at: 0 };
    if c.take(4)? != CKPT_MAGIC {
        return Err("bad checkpoint magic".into());
    }
    let version = u16::from_le_bytes(c.take(2)?.try_into().expect("slice size"));
    if version != CKPT_VERSION {
        return Err(format!(
            "checkpoint version {version} (this build reads {CKPT_VERSION})"
        ));
    }
    let chain_pos = c.u64()?;
    let app_len = c.u64()? as usize;
    let app = c.take(app_len)?.to_vec();
    let clock = c.f64()?;
    let comm_lane = c.f64()?;
    let lane_busy = c.f64()?;
    let stats = CommStats {
        messages_sent: c.u64()?,
        bytes_sent: c.u64()?,
        messages_received: c.u64()?,
        bytes_received: c.u64()?,
        wait_time: c.f64()?,
        compute_time: c.f64()?,
        retransmissions: c.u64()?,
        retrans_time: c.f64()?,
        duplicates_suppressed: c.u64()?,
        recoveries: c.u64()?,
        recovery_time: c.f64()?,
    };
    let size = c.u64()? as usize;
    let mut next = Vec::with_capacity(size);
    for _ in 0..size {
        next.push(c.u64()?);
    }
    let mut expect = Vec::with_capacity(size);
    for _ in 0..size {
        expect.push(c.u64()?);
    }
    let mut pending = Vec::with_capacity(size);
    for _ in 0..size {
        let n = c.u64()? as usize;
        let mut envs = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            envs.push(c.env()?);
        }
        pending.push(envs);
    }
    let counters = if c.u64()? == 1 {
        let n = c.u64()? as usize;
        let mut cs = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            cs.push(c.u64()?);
        }
        Some(cs)
    } else {
        None
    };
    let virts = if c.u64()? == 1 {
        let n = c.u64()? as usize;
        let mut vs = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            vs.push(c.f64()?);
        }
        Some(vs)
    } else {
        None
    };
    let mut row = Vec::with_capacity(size);
    for _ in 0..size {
        let base = c.u64()?;
        let n = c.u64()? as usize;
        let mut items = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            items.push(c.env()?);
        }
        row.push((base, items));
    }
    Ok((
        CkptState {
            chain_pos,
            app,
            clock,
            comm_lane,
            lane_busy,
            stats,
            next,
            expect,
            pending,
            trace_len: 0,
            counters,
            virts,
        },
        row,
    ))
}

/// Atomically replace the checkpoint file (sibling tmp + rename), so a
/// crash mid-write can never leave a torn checkpoint behind.
fn write_ckpt_file(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Test hook: `TILECC_CRASH_KILL="<rank>:<n>"` hard-kills worker `rank`
/// at its `n`-th checkpoint, so integration tests (and the CI recovery
/// smoke job) can exercise real process death and respawn.
fn kill_at_from_env(rank: usize) -> Option<u64> {
    let spec = std::env::var("TILECC_CRASH_KILL").ok()?;
    let (r, n) = spec.split_once(':')?;
    if r.trim().parse::<usize>().ok()? != rank {
        return None;
    }
    n.trim().parse::<u64>().ok()
}

/// SIGKILL this process — no unwinding, no flushing: the hardest death a
/// worker can die short of pulling the plug.
fn kill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .arg("-9")
        .arg(&pid)
        .status();
    // SIGKILL cannot be handled, so reaching this line means the `kill`
    // binary was unavailable; abort is the closest stand-in.
    std::process::abort();
}

/// Heartbeat thread: ship this rank's phase and progress counter to the
/// driver every `period` (default [`HEARTBEAT_PERIOD`]) so the
/// multi-process watchdog can see blocked/running states exactly like the
/// threaded engine's monitor — and so the driver's dead-peer timeout can
/// tell a slow worker from a dead one.
///
/// With observability enabled, every heartbeat also piggybacks a `STATS`
/// frame: a delta-encoded [`StatsSnapshot`] of this rank's metrics (the
/// first one absolute, `nominal = 1`). The control socket is ordered and
/// reliable, so the driver can fold the deltas back losslessly.
fn spawn_heartbeat(
    rank: usize,
    control: Arc<Mutex<TcpStream>>,
    monitor: Arc<Monitor>,
    stop: Arc<AtomicBool>,
    period: Duration,
    metrics: Option<Arc<RankMetrics>>,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name(format!("tilecc-tcp-hb-{rank}"))
        .spawn(move || {
            let mut prev = StatsSnapshot::zero();
            let mut snap_seq: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                let mut frame = Frame::control(FrameKind::Progress, rank as u32);
                frame.seq = monitor.progress();
                match monitor.phase_of(rank) {
                    RankPhase::Running => frame.nominal = 0,
                    RankPhase::Blocked { from, tag } => {
                        frame.nominal = from as u64 + 1;
                        frame.tag = tag;
                    }
                    RankPhase::Done => frame.nominal = u64::MAX,
                }
                let stats = metrics.as_ref().map(|m| {
                    let cur = StatsSnapshot::capture(m);
                    snap_seq += 1;
                    let mut sf = Frame::control(FrameKind::Stats, rank as u32);
                    sf.seq = snap_seq;
                    // `prev` starts at zero, so the first delta is the
                    // absolute snapshot; flag it so a decoder can sync.
                    sf.nominal = u64::from(snap_seq == 1);
                    sf.payload = cur.encode_delta(&prev);
                    (cur, sf)
                });
                {
                    let mut control = control.lock().expect("control poisoned");
                    if wire::write_frame(&mut *control, &frame).is_err() {
                        return; // Driver gone; the run is over either way.
                    }
                    if let Some((cur, sf)) = stats {
                        if wire::write_frame(&mut *control, &sf).is_err() {
                            return;
                        }
                        prev = cur;
                    }
                }
                thread::sleep(period);
            }
        })
        .expect("failed to spawn heartbeat thread")
}

/// Run one rank of a multi-process TCP cluster inside this process:
/// connect the mesh through the driver's rendezvous, execute `f`, and
/// return its result plus the final clock and statistics together with
/// the [`WorkerHandle`] for shipping the result payload.
///
/// Failures are *typed and terminal*: a panic inside `f` becomes
/// [`RunError::RankPanicked`], a substrate failure (notably
/// [`CommError::PeerDisconnected`] when a peer process dies mid-run)
/// becomes [`RunError::Comm`] — in both cases a best-effort `ERROR` frame
/// is shipped to the driver first, and the caller is expected to exit
/// nonzero. A worker never hangs on a dead peer: the peer's socket
/// reaching end-of-stream unblocks any receive on it.
pub fn run_worker<R, F>(
    cfg: &WorkerConfig,
    f: F,
) -> Result<(R, f64, CommStats, WorkerHandle), RunError>
where
    F: FnOnce(&mut TcpComm) -> R,
{
    install_quiet_panic_hook();
    let rank = cfg.rank;
    let connect_t0 = Instant::now();
    let mesh = connect_mesh(rank, cfg.size, &cfg.rendezvous, &cfg.bind_addr)
        .map_err(|error| RunError::Comm { rank, error })?;
    let connect_ns = connect_t0.elapsed().as_nanos() as u64;
    let control = Arc::new(Mutex::new(mesh.control.try_clone().map_err(|e| {
        RunError::Comm {
            rank,
            error: transport_error("control clone", e),
        }
    })?));
    // Keep the original control handle alive too (dropping a clone does not
    // close the socket, but be explicit about ownership).
    let _control_keepalive = mesh.control;
    let monitor = Arc::new(Monitor::new(cfg.size));
    let stop = Arc::new(AtomicBool::new(false));
    let obs = cfg.options.obs.as_ref().map(|reg| {
        // Force the registry to the full world size so per-rank exports
        // index consistently even though only our slot is written.
        let _ = reg.rank_metrics(cfg.size.saturating_sub(1));
        RankObs::new(reg.clone(), rank)
    });
    let heartbeat = spawn_heartbeat(
        rank,
        control.clone(),
        monitor.clone(),
        stop.clone(),
        cfg.heartbeat,
        obs.as_ref().map(|o| o.metrics()),
    );
    // Checkpointing: load any previous checkpoint file up front (resumed
    // runs), seed this rank's replay-log row from it, and arm the kill
    // hook on first lives only.
    let mut resume_data = None;
    let (replay_logs, recovery) = match &cfg.ckpt {
        Some(ck) => {
            let logs = new_replay_logs(cfg.size);
            // A missing file is fine: the process died before its first
            // checkpoint and resumes from position zero with zero frontiers.
            if ck.resume {
                if let Ok(bytes) = std::fs::read(&ck.path) {
                    match decode_ckpt(&bytes) {
                        Ok(data) => resume_data = Some(data),
                        Err(detail) => {
                            return Err(RunError::Comm {
                                rank,
                                error: transport_error("checkpoint restore", detail),
                            })
                        }
                    }
                }
            }
            if let Some((_, row)) = &resume_data {
                for (to, (base, items)) in row.iter().enumerate() {
                    if to != rank {
                        *logs[rank][to].lock().expect("replay log poisoned") =
                            ReplayLog::restore(*base, items.clone());
                    }
                }
            }
            let recovery = TcpRecovery::Worker(WorkerRecovery {
                interval: ck.interval.max(1),
                path: ck.path.clone(),
                resume: resume_data.as_ref().map(|(ckpt, _)| Restored {
                    chain_pos: ckpt.chain_pos,
                    app: ckpt.app.clone(),
                }),
                resume_run: ck.resume,
                resend_skip: vec![0; cfg.size],
                resume_rx: None,
                ckpts_taken: 0,
                kill_at: kill_at_from_env(rank),
            });
            (Some(logs), Some(recovery))
        }
        None => (None, None),
    };
    let (mut comm, writer_handles) = TcpComm::build(
        TcpCommConfig {
            rank,
            size: cfg.size,
            model: cfg.model,
            scheme: cfg.options.scheme,
            fault: cfg.options.fault.clone().map(Arc::new),
            trace: cfg.options.trace,
            obs,
            connect_ns,
            replay_logs,
            recovery,
        },
        mesh.peers,
        monitor.clone(),
    );
    if let Some((ckpt, _)) = resume_data {
        // Rewind the fresh endpoint onto the checkpoint: clock, lanes,
        // statistics, reliability frontiers, tag-matching buffers, and the
        // observability counters — the resumed run continues bitwise.
        comm.clock = ckpt.clock;
        comm.comm_lane = ckpt.comm_lane;
        comm.lane_busy = ckpt.lane_busy;
        comm.stats = ckpt.stats;
        comm.links.rewind(&ckpt.next, &ckpt.expect);
        comm.pending = ckpt.pending;
        if let Some(o) = &comm.obs {
            let m = o.metrics();
            if let Some(counters) = &ckpt.counters {
                for (&c, &v) in Counter::ALL.iter().zip(counters) {
                    m.set(c, v);
                }
            }
            if let Some(virts) = &ckpt.virts {
                for (&a, &v) in VirtAcc::ALL.iter().zip(virts) {
                    m.virt_set(a, v);
                }
            }
        }
    }
    if let Some(ck) = &cfg.ckpt {
        comm.stats.recoveries = ck.recovered;
        if ck.recovered > 0 {
            // This rank's injected crash already fired in a previous life;
            // a respawned process must not re-fire it after the rewind.
            comm.crash_at = None;
        }
    }
    comm.worker_resume_barrier()
        .map_err(|error| RunError::Comm { rank, error })?;
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
    monitor.set(rank, RankPhase::Done);
    let (clock, stats) = (comm.clock, comm.stats);
    // Flush our endpoint (writers drain + FIN) before reporting.
    drop(comm);
    for h in writer_handles {
        let _ = h.join();
    }
    stop.store(true, Ordering::Relaxed);
    let _ = heartbeat.join();
    match outcome {
        Ok(r) => Ok((r, clock, stats, WorkerHandle { rank, control })),
        Err(payload) => {
            let error = match payload.downcast::<CommAbort>() {
                Ok(abort) => RunError::Comm {
                    rank,
                    error: abort.error,
                },
                Err(payload) => RunError::RankPanicked {
                    rank,
                    payload: panic_message(payload.as_ref()),
                },
            };
            let mut frame = Frame::control(FrameKind::Error, rank as u32);
            match &error {
                RunError::Comm { error: e, .. } => {
                    frame.seq = 2;
                    let (tag, nominal, aux) = encode_comm_error(e);
                    frame.tag = tag;
                    frame.nominal = nominal;
                    frame.ready_at = aux;
                    frame.payload = e.to_string().into_bytes();
                }
                RunError::RankPanicked { payload, .. } => {
                    // The bare panic payload: the driver re-wraps it in a
                    // `RankPanicked` carrying the rank, so sending the
                    // rendered error would double the prefix.
                    frame.seq = 1;
                    frame.payload = payload.clone().into_bytes();
                }
                other => {
                    frame.seq = 1;
                    frame.payload = other.to_string().into_bytes();
                }
            }
            if let Ok(mut control) = control.lock() {
                let _ = wire::write_frame(&mut *control, &frame);
            }
            Err(error)
        }
    }
}

/// One worker's successful outcome as seen by the driver.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// The worker's rank.
    pub rank: usize,
    /// Its final virtual clock.
    pub local_time: f64,
    /// The caller-defined result payload from its `RESULT` frame.
    pub payload: Vec<u8>,
    /// The newest metrics snapshot received before the `RESULT` frame
    /// (`None` when the worker ran without observability). A worker that
    /// calls [`WorkerHandle::send_stats`] before its result makes this the
    /// complete final state, which
    /// [`crate::threaded::RunReport::from_snapshots`] merges into one
    /// driver-side report.
    pub stats: Option<StatsSnapshot>,
}

/// Per-rank driver-side state while collecting workers.
struct WorkerSlot {
    stream: TcpStream,
    buf: Vec<u8>,
    report: Option<WorkerReport>,
    /// `(class, error)` from an `ERROR` frame: class 1 = panic, 2 = comm.
    failure: Option<(u64, RunError)>,
    dead: bool,
    progress: u64,
    phase: RankPhase,
    /// Wall time of the last byte read off the control socket; heartbeats
    /// keep it fresh, so a slow-but-alive worker is never declared dead.
    last_seen: Instant,
    /// Decoder baseline for incoming `STATS` deltas.
    stats_prev: StatsSnapshot,
    /// Newest decoded snapshot (`None` until the first `STATS` frame).
    stats: Option<StatsSnapshot>,
    /// `seq` of the newest decoded snapshot.
    stats_seq: u64,
}

impl WorkerSlot {
    /// Pull everything currently readable off the control socket into the
    /// frame buffer, then process complete frames.
    fn poll(&mut self) {
        if self.dead && self.report.is_none() {
            return;
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.last_seen = Instant::now();
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        loop {
            match Frame::decode(&self.buf) {
                Ok((frame, used)) => {
                    self.buf.drain(..used);
                    self.ingest(frame);
                }
                Err(wire::WireError::Truncated { .. }) => break,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }

    fn ingest(&mut self, frame: Frame) {
        let rank = frame.src as usize;
        match frame.kind {
            FrameKind::Progress => {
                self.progress = frame.seq;
                self.phase = if frame.nominal == 0 {
                    RankPhase::Running
                } else if frame.nominal == u64::MAX {
                    RankPhase::Done
                } else {
                    RankPhase::Blocked {
                        from: (frame.nominal - 1) as usize,
                        tag: frame.tag,
                    }
                };
            }
            FrameKind::Result => {
                self.phase = RankPhase::Done;
                self.report = Some(WorkerReport {
                    rank,
                    local_time: frame.ready_at,
                    payload: frame.payload,
                    stats: self.stats.clone(),
                });
            }
            FrameKind::Stats => {
                // `nominal = 1` marks an absolute snapshot: reset the delta
                // baseline to zero. A payload that fails to decode only
                // leaves the telemetry stale — it must never fail the run.
                let base = if frame.nominal == 1 {
                    StatsSnapshot::zero()
                } else {
                    self.stats_prev.clone()
                };
                if let Ok(snap) = StatsSnapshot::apply_delta(&base, &frame.payload) {
                    self.stats_prev = snap.clone();
                    self.stats = Some(snap);
                    self.stats_seq = frame.seq;
                }
            }
            FrameKind::Error => {
                self.phase = RankPhase::Done;
                let text = String::from_utf8_lossy(&frame.payload).into_owned();
                let error = if frame.seq == 2 {
                    RunError::Comm {
                        rank,
                        error: decode_comm_error(frame.tag, frame.nominal, frame.ready_at, &text),
                    }
                } else {
                    RunError::RankPanicked {
                        rank,
                        payload: text,
                    }
                };
                self.failure = Some((frame.seq, error));
            }
            _ => {}
        }
    }
}

/// The primary failure among worker outcomes, mirroring the threaded
/// engine's ordering: panics beat communication errors beat silent deaths.
fn worker_primary_failure(slots: &[WorkerSlot]) -> Option<RunError> {
    for slot in slots {
        if let Some((1, e)) = &slot.failure {
            return Some(e.clone());
        }
    }
    for slot in slots {
        if let Some((_, e)) = &slot.failure {
            return Some(e.clone());
        }
    }
    for (rank, slot) in slots.iter().enumerate() {
        if slot.dead && slot.report.is_none() {
            return Some(RunError::RankPanicked {
                rank,
                payload: "worker process died without reporting a result".into(),
            });
        }
    }
    None
}

/// One rank's live telemetry as seen by the driver's supervision loop:
/// the watchdog state (phase + progress) plus the newest decoded `STATS`
/// snapshot. Handed to the [`collect_workers_observed`] observer on every
/// supervision sweep.
#[derive(Clone, Debug)]
pub struct RankTelemetry {
    /// The worker's rank.
    pub rank: usize,
    /// Last reported phase (running / blocked / done).
    pub phase: RankPhase,
    /// Last reported progress counter.
    pub progress: u64,
    /// Whether the worker's `RESULT` frame has arrived.
    pub done: bool,
    /// Newest metrics snapshot (`None` until the first `STATS` frame).
    pub stats: Option<StatsSnapshot>,
    /// `seq` of the newest snapshot — compare against the previous sweep
    /// to tell fresh telemetry from a re-render of stale state.
    pub stats_seq: u64,
}

/// Driver-side supervision of multi-process workers: collect `RESULT`
/// frames off the control connections while running the same watchdog the
/// threaded engine has — heartbeat-fed deadlock detection (every live
/// worker blocked with no progress), an optional wall cap, and typed
/// failure propagation. On success every worker receives `BYE` and the
/// reports are returned in rank order.
pub fn collect_workers(
    controls: Vec<TcpStream>,
    wall_timeout: Option<Duration>,
    deadlock_detection: bool,
    peer_timeout: Option<Duration>,
) -> Result<Vec<WorkerReport>, RunError> {
    collect_workers_observed(
        controls,
        wall_timeout,
        deadlock_detection,
        peer_timeout,
        None,
    )
}

/// A driver-side telemetry hook: called with the current per-rank
/// telemetry on every supervision sweep. See [`collect_workers_observed`].
pub type TelemetryObserver<'a> = Option<&'a mut dyn FnMut(&[RankTelemetry])>;

/// [`collect_workers`] plus a telemetry observer: when `observer` is
/// `Some`, it is invoked with the current [`RankTelemetry`] of every rank
/// on each supervision sweep (every [`COLLECT_POLL`]) and once more after
/// the last result lands — the hook behind `--live` and `--stats-out`.
pub fn collect_workers_observed(
    controls: Vec<TcpStream>,
    wall_timeout: Option<Duration>,
    deadlock_detection: bool,
    peer_timeout: Option<Duration>,
    mut observer: TelemetryObserver<'_>,
) -> Result<Vec<WorkerReport>, RunError> {
    let size = controls.len();
    let started = Instant::now();
    let mut slots: Vec<WorkerSlot> = Vec::with_capacity(size);
    for stream in controls {
        stream.set_nonblocking(true).map_err(|e| RunError::Comm {
            rank: 0,
            error: transport_error("control nonblocking", e),
        })?;
        slots.push(WorkerSlot {
            stream,
            buf: Vec::new(),
            report: None,
            failure: None,
            dead: false,
            progress: 0,
            phase: RankPhase::Running,
            last_seen: Instant::now(),
            stats_prev: StatsSnapshot::zero(),
            stats: None,
            stats_seq: 0,
        });
    }
    let observe = |slots: &[WorkerSlot], observer: &mut TelemetryObserver<'_>| {
        if let Some(hook) = observer {
            let telemetry: Vec<RankTelemetry> = slots
                .iter()
                .enumerate()
                .map(|(rank, s)| RankTelemetry {
                    rank,
                    phase: s.phase,
                    progress: s.progress,
                    done: s.report.is_some(),
                    stats: s.stats.clone(),
                    stats_seq: s.stats_seq,
                })
                .collect();
            hook(&telemetry);
        }
    };

    let mut stable: u32 = 0;
    let mut last_progress: Option<Vec<u64>> = None;
    loop {
        for slot in &mut slots {
            slot.poll();
        }
        observe(&slots, &mut observer);
        // Heartbeat watchdog: a control socket silent past the dead-peer
        // timeout means the worker process is gone (heartbeats flow every
        // [`HEARTBEAT_PERIOD`] while it lives, even when blocked).
        if let Some(timeout) = peer_timeout {
            for slot in &mut slots {
                if !slot.dead
                    && slot.report.is_none()
                    && slot.failure.is_none()
                    && slot.last_seen.elapsed() >= timeout
                {
                    slot.dead = true;
                }
            }
        }
        if slots.iter().all(|s| s.report.is_some()) {
            break;
        }
        if slots
            .iter()
            .any(|s| s.failure.is_some() || (s.dead && s.report.is_none()))
        {
            // Give the remaining workers a grace period to report context,
            // then fold to the primary cause.
            let deadline = Instant::now() + ABORT_GRACE;
            while Instant::now() < deadline {
                for slot in &mut slots {
                    slot.poll();
                }
                if slots
                    .iter()
                    .all(|s| s.report.is_some() || s.failure.is_some() || s.dead)
                {
                    break;
                }
                thread::sleep(COLLECT_POLL);
            }
            return Err(worker_primary_failure(&slots).expect("failure observed"));
        }
        if let Some(cap) = wall_timeout {
            if started.elapsed() >= cap {
                let unfinished: Vec<usize> =
                    (0..size).filter(|&r| slots[r].report.is_none()).collect();
                return Err(RunError::WallTimeout {
                    elapsed: started.elapsed(),
                    unfinished,
                });
            }
        }
        if deadlock_detection {
            let progress: Vec<u64> = slots.iter().map(|s| s.progress).collect();
            let waiting_on: Vec<(usize, usize, i64)> = slots
                .iter()
                .enumerate()
                .filter_map(|(rank, s)| match s.phase {
                    RankPhase::Blocked { from, tag } => Some((rank, from, tag)),
                    _ => None,
                })
                .collect();
            let any_running = slots
                .iter()
                .any(|s| s.report.is_none() && s.phase == RankPhase::Running);
            let moved = last_progress.as_ref() != Some(&progress);
            last_progress = Some(progress);
            if moved || any_running || waiting_on.is_empty() {
                stable = 0;
            } else {
                stable += 1;
                if stable >= DRIVER_STABLE_SWEEPS {
                    return Err(RunError::Deadlock {
                        blocked_ranks: waiting_on.iter().map(|w| w.0).collect(),
                        waiting_on,
                    });
                }
            }
        }
        thread::sleep(COLLECT_POLL);
    }

    // All results are in: one final observation (the pre-result absolute
    // snapshots are decoded by now), then release the workers.
    observe(&slots, &mut observer);
    let bye = Frame::control(FrameKind::Bye, u32::MAX);
    for slot in &mut slots {
        let _ = wire::write_frame(&mut slot.stream, &bye);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.report.expect("all reports collected"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::{InjectedCrash, RecoveryOptions};
    use std::panic::resume_unwind;

    #[test]
    fn comm_error_codes_round_trip() {
        let cases = [
            CommError::Disconnected { peer: 3 },
            CommError::RetransmitExhausted {
                rank: 2,
                tag: -7,
                attempts: 65,
            },
            CommError::Aborted,
            CommError::PeerDisconnected { rank: 7 },
            CommError::Transport {
                detail: "boom".into(),
            },
        ];
        for e in cases {
            let (tag, nominal, aux) = encode_comm_error(&e);
            let text = match &e {
                CommError::Transport { detail } => detail.clone(),
                other => other.to_string(),
            };
            assert_eq!(decode_comm_error(tag, nominal, aux, &text), e);
        }
    }

    #[test]
    fn checkpoint_file_round_trips() {
        let env = |seq| Envelope {
            payload: vec![1.5, -0.0],
            tag: 3,
            ready_at: 2.5,
            seq,
            bytes: 16,
        };
        let ckpt = CkptState {
            chain_pos: 4,
            app: vec![1, 2, 3],
            clock: 1.25,
            comm_lane: 2.5,
            lane_busy: 0.5,
            stats: CommStats {
                messages_sent: 7,
                bytes_sent: 112,
                messages_received: 6,
                bytes_received: 96,
                wait_time: 0.25,
                compute_time: 3.5,
                retransmissions: 2,
                retrans_time: 0.125,
                duplicates_suppressed: 1,
                recoveries: 1,
                recovery_time: 0.0,
            },
            next: vec![0, 9],
            expect: vec![0, 8],
            pending: vec![Vec::new(), vec![env(5)]],
            trace_len: 0,
            counters: Some(vec![11; Counter::ALL.len()]),
            virts: Some(vec![0.5; VirtAcc::ALL.len()]),
        };
        let row = vec![(0u64, Vec::new()), (7u64, vec![env(7), env(8)])];
        let bytes = encode_ckpt(&ckpt, &row);
        let (back, back_row) = decode_ckpt(&bytes).unwrap();
        assert_eq!(back.chain_pos, 4);
        assert_eq!(back.app, vec![1, 2, 3]);
        assert_eq!(back.clock.to_bits(), ckpt.clock.to_bits());
        assert_eq!(back.stats, ckpt.stats);
        assert_eq!(back.next, ckpt.next);
        assert_eq!(back.expect, ckpt.expect);
        assert_eq!(back.pending[1][0].seq, 5);
        assert_eq!(back.pending[1][0].payload[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.counters, ckpt.counters);
        assert_eq!(back.virts, ckpt.virts);
        assert_eq!(back_row[1].0, 7);
        assert_eq!(back_row[1].1.len(), 2);
        assert_eq!(back_row[1].1[1].seq, 8);
        // Truncation is an error, never a panic.
        assert!(decode_ckpt(&bytes[..bytes.len() - 3]).is_err());
        assert!(decode_ckpt(b"TCKQ").is_err());
    }

    /// The threaded recovery suite's ring, over sockets: checkpoints every
    /// `recovery_interval` rounds and restores from injected crashes.
    fn resilient_ring(comm: &mut TcpComm, rounds: u64) -> f64 {
        let k = comm.recovery_interval().unwrap_or(u64::MAX);
        let mut pos = 0u64;
        let mut acc = (comm.rank() + 1) as f64;
        loop {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let (r, n) = (comm.rank(), comm.size());
                let mut acc = acc;
                for round in pos..rounds {
                    if round % k == 0 {
                        comm.checkpoint(round, &acc.to_bits().to_le_bytes());
                    }
                    comm.advance_compute(10 + r as u64);
                    comm.send_tagged((r + 1) % n, round as i64, vec![acc, acc * 0.5], 16);
                    let got = comm.recv_tagged((r + n - 1) % n, round as i64);
                    acc += got[0] * 0.25 + got[1];
                }
                acc
            }));
            match attempt {
                Ok(v) => return v,
                Err(payload) => {
                    if payload.downcast_ref::<InjectedCrash>().is_some() {
                        if let Some(res) = comm.try_restore() {
                            pos = res.chain_pos;
                            acc = f64::from_bits(u64::from_le_bytes(
                                res.app[..8].try_into().expect("8-byte app snapshot"),
                            ));
                            continue;
                        }
                    }
                    resume_unwind(payload);
                }
            }
        }
    }

    #[test]
    fn injected_crash_recovers_in_process_tcp_bitwise() {
        let model = MachineModel::fast_ethernet_p3();
        let run = |fault: Option<FaultPlan>, recovery: Option<RecoveryOptions>| {
            run_cluster_tcp(
                3,
                model,
                EngineOptions {
                    fault,
                    recovery,
                    ..EngineOptions::default()
                },
                |comm| resilient_ring(comm, 9),
            )
        };
        let clean = run(None, None).unwrap();
        let crash_at = clean.makespan() * 0.5;
        let recovered = run(
            Some(FaultPlan::default().with_crash(1, crash_at)),
            Some(RecoveryOptions {
                interval: 3,
                max_recoveries: 1,
            }),
        )
        .unwrap();
        for r in 0..3 {
            assert_eq!(
                clean.results[r].to_bits(),
                recovered.results[r].to_bits(),
                "rank {r} data"
            );
            // The settle step adds the recovery debt once at the end, so
            // the identity is exact in floating point, not just to 1e-9.
            assert_eq!(
                (clean.local_times[r] + recovered.stats[r].recovery_time).to_bits(),
                recovered.local_times[r].to_bits(),
                "rank {r} clock"
            );
        }
        assert_eq!(recovered.stats[1].recoveries, 1);
        assert!(recovered.stats[1].recovery_time > 0.0);
        assert_eq!(recovered.stats[0].recoveries, 0);
    }

    #[test]
    fn crash_overlapping_chaos_recovers_the_checksum_over_tcp() {
        let model = MachineModel::fast_ethernet_p3();
        let clean = run_cluster_tcp(3, model, EngineOptions::default(), |comm| {
            resilient_ring(comm, 9)
        })
        .unwrap();
        let crash_at = clean.makespan() * 0.4;
        let chaotic = run_cluster_tcp(
            3,
            model,
            EngineOptions {
                fault: Some(FaultPlan::chaos(0xC0FFEE, 0.3).with_crash(1, crash_at)),
                recovery: Some(RecoveryOptions {
                    interval: 3,
                    max_recoveries: 2,
                }),
                ..EngineOptions::default()
            },
            |comm| resilient_ring(comm, 9),
        )
        .unwrap();
        // Chaos perturbs clocks (retransmission charges) but never data.
        for r in 0..3 {
            assert_eq!(
                clean.results[r].to_bits(),
                chaotic.results[r].to_bits(),
                "rank {r} data"
            );
        }
        assert!(chaotic.stats[1].recoveries >= 1);
    }

    #[test]
    fn slow_but_alive_worker_is_not_declared_dead() {
        let rdv = Rendezvous::bind().unwrap();
        let addr = rdv.addr().to_string();
        let worker = thread::spawn(move || {
            let mut cfg = WorkerConfig::new(
                0,
                1,
                addr,
                MachineModel::fast_ethernet_p3(),
                EngineOptions::default(),
            );
            cfg.heartbeat = Duration::from_millis(10);
            let (out, t, _stats, handle) = run_worker(&cfg, |comm| {
                // Wall-slow but heartbeating: far past the driver's
                // dead-peer timeout below.
                thread::sleep(Duration::from_millis(800));
                comm.advance_compute(10);
                42u64
            })
            .unwrap();
            handle.send_result(t, out.to_le_bytes().to_vec()).unwrap();
            handle.wait_bye().unwrap();
            out
        });
        let controls = rdv.coordinate(1, HANDSHAKE_TIMEOUT).unwrap();
        let reports = collect_workers(
            controls,
            Some(Duration::from_secs(30)),
            true,
            Some(Duration::from_millis(200)),
        )
        .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(worker.join().unwrap(), 42);
    }

    #[test]
    fn silent_worker_is_declared_dead_after_the_peer_timeout() {
        let rdv = Rendezvous::bind().unwrap();
        let addr = rdv.addr();
        // A fake worker that completes the rendezvous and then falls
        // silent — no heartbeats, no result, socket held open.
        let (ghost_done_tx, ghost_done_rx) = channel::<()>();
        let ghost = thread::spawn(move || {
            let mut control = TcpStream::connect(addr).unwrap();
            let mut hello = Frame::control(FrameKind::Hello, 0);
            hello.seq = 1;
            hello.payload = b"127.0.0.1:1".to_vec();
            wire::write_frame(&mut control, &hello).unwrap();
            let addrs = wire::read_frame(&mut control).unwrap();
            assert_eq!(addrs.kind, FrameKind::Addrs);
            // Hold the socket open until the driver has given up on us.
            let _ = ghost_done_rx.recv_timeout(Duration::from_secs(30));
        });
        let controls = rdv.coordinate(1, HANDSHAKE_TIMEOUT).unwrap();
        let err = collect_workers(
            controls,
            Some(Duration::from_secs(30)),
            false,
            Some(Duration::from_millis(150)),
        )
        .unwrap_err();
        match err {
            RunError::RankPanicked { rank, payload } => {
                assert_eq!(rank, 0);
                assert!(payload.contains("without reporting"), "{payload}");
            }
            other => panic!("expected silent-death failure, got {other}"),
        }
        drop(ghost_done_tx);
        ghost.join().unwrap();
    }

    #[test]
    fn tcp_ping_pong_matches_threaded_virtual_times() {
        let model = MachineModel {
            compute_per_iter: 0.0,
            send_overhead: 1.0,
            recv_overhead: 2.0,
            wire_latency: 4.0,
            per_byte: 0.5,
        };
        let report = run_cluster_tcp(2, model, EngineOptions::default(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, vec![7.0, 8.0], 16);
                comm.local_time()
            } else {
                let v = comm.recv(0);
                assert_eq!(v, vec![7.0, 8.0]);
                comm.local_time()
            }
        })
        .unwrap();
        // Identical arithmetic to the threaded engine's ping_pong test.
        assert!((report.results[0] - 9.0).abs() < 1e-12);
        assert!((report.results[1] - 15.0).abs() < 1e-12);
        assert_eq!(report.total_bytes(), 16);
        assert_eq!(report.total_messages(), 1);
    }
}
