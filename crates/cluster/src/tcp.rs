//! The TCP cluster backend: the [`Comm`] contract over real sockets.
//!
//! Where the threaded engine moves [`Envelope`]s through in-process
//! channels, this backend serializes every message through the TCMP wire
//! format ([`crate::wire`]) and moves it over localhost (or cross-machine)
//! TCP connections. The virtual-clock arithmetic, the reliability sublayer
//! ([`crate::reliability`]), and the fault-injection decisions are shared
//! with the threaded engine, so for the same program the two backends
//! produce **bitwise-identical data, identical virtual clocks, and
//! identical logical counters** — faulty runs included. `ready_at` travels
//! as an `f64` bit pattern and fault decisions are pure hashes of
//! `(seed, link, seq, attempt)`, so nothing depends on real-time races.
//!
//! # Topology
//!
//! Connection establishment is rendezvous-based: every rank binds an
//! ephemeral listener, reports it to the rendezvous ([`Rendezvous`]) with
//! a `HELLO` frame, receives the full address list (`ADDRS`), then builds
//! a full mesh — dialing every lower-ranked peer (announcing itself with a
//! `PEER` frame) and accepting from every higher-ranked one. One
//! bidirectional socket serves each unordered rank pair.
//!
//! Per peer, a *writer thread* drains a bounded queue of pre-encoded
//! frames onto the socket, and a *reader thread* decodes incoming frames
//! into the same tag-matching receive path the threaded engine uses. On
//! clean exit writers flush and send `FIN` (`shutdown(Write)`); readers
//! keep draining to end-of-stream so a socket is never reset while it may
//! still carry undelivered frames.
//!
//! # Process models
//!
//! * [`run_cluster_tcp`] — every rank is a thread of this process, but all
//!   communication crosses real sockets. Drop-in replacement for
//!   [`crate::run_cluster_opts`]; used by tests, the fuzz harness, and
//!   in-process callers.
//! * [`run_worker`] + [`Rendezvous`]/[`collect_workers`] — the
//!   multi-process model: a driver process spawns one worker process per
//!   rank, workers run [`run_worker`] and report results over their
//!   rendezvous (control) connection, and the driver supervises them with
//!   a heartbeat-fed deadlock watchdog mirroring the threaded engine's.

use crate::comm::{Comm, CommAbort, CommStats, Envelope};
use crate::error::{CommError, RunError};
use crate::fault::{FaultPlan, RankStall};
use crate::model::MachineModel;
use crate::obs::{Counter, GaugeId, HistId, Phase, RankMetrics, RankObs, VirtAcc};
use crate::reliability::{retransmit_pauses, Admit, LinkSeq};
use crate::threaded::{
    collect, install_quiet_panic_hook, panic_message, CommScheme, EngineOptions, Monitor, RankEnd,
    RankPhase, RunReport, ABORT_GRACE, COLLECT_POLL, RECV_POLL,
};
use crate::trace::{Event, Trace};
use crate::wire::{self, Frame, FrameKind};
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Deadline for rendezvous and mesh handshakes.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);
/// Bounded depth (frames) of each per-peer writer queue.
const SEND_QUEUE_FRAMES: usize = 64;
/// How often a worker ships a heartbeat (`PROGRESS` frame) to the driver.
const HEARTBEAT_PERIOD: Duration = Duration::from_millis(50);
/// Consecutive silent driver sweeps with every live worker blocked before
/// the multi-process watchdog declares a deadlock. Sweeps run every
/// [`COLLECT_POLL`]; this must comfortably exceed [`HEARTBEAT_PERIOD`] so
/// a quiet-but-alive worker is never misread (~600 ms of global silence).
const DRIVER_STABLE_SWEEPS: u32 = 60;
/// How long a worker waits for the driver's `BYE` after its result.
const BYE_TIMEOUT: Duration = Duration::from_secs(60);

fn transport_error(stage: &str, e: impl std::fmt::Display) -> CommError {
    CommError::Transport {
        detail: format!("{stage}: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Connection establishment
// ---------------------------------------------------------------------------

/// The rendezvous listener: ranks report their mesh listeners here and
/// receive the full address list back. In the multi-process model the
/// driver owns it and keeps the per-rank control connections for results
/// and heartbeats.
pub struct Rendezvous {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Rendezvous {
    /// Bind an ephemeral rendezvous listener on localhost.
    pub fn bind() -> Result<Rendezvous, CommError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| transport_error("rendezvous bind", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| transport_error("rendezvous addr", e))?;
        Ok(Rendezvous { listener, addr })
    }

    /// The `host:port` workers should `--connect` to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept `size` `HELLO`s (each announcing a rank's mesh listener and
    /// expected world size), then broadcast the `ADDRS` list. Returns the
    /// control connections in rank order.
    pub fn coordinate(&self, size: usize, deadline: Duration) -> Result<Vec<TcpStream>, CommError> {
        let until = Instant::now() + deadline;
        self.listener
            .set_nonblocking(true)
            .map_err(|e| transport_error("rendezvous nonblocking", e))?;
        let mut controls: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        let mut addrs: Vec<Option<String>> = vec![None; size];
        let mut pending = 0usize;
        while pending < size {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
                        .map_err(|e| transport_error("rendezvous control", e))?;
                    let hello = wire::read_frame(&mut stream)
                        .map_err(|e| transport_error("rendezvous hello", e))?;
                    if hello.kind != FrameKind::Hello {
                        return Err(transport_error(
                            "rendezvous hello",
                            format!("unexpected {:?} frame", hello.kind),
                        ));
                    }
                    let rank = hello.src as usize;
                    if rank >= size {
                        return Err(transport_error(
                            "rendezvous hello",
                            format!("rank {rank} out of range for world size {size}"),
                        ));
                    }
                    if hello.seq != size as u64 {
                        return Err(transport_error(
                            "rendezvous hello",
                            format!(
                                "rank {rank} expects world size {}, driver has {size}",
                                hello.seq
                            ),
                        ));
                    }
                    if controls[rank].is_some() {
                        return Err(transport_error(
                            "rendezvous hello",
                            format!("duplicate hello from rank {rank}"),
                        ));
                    }
                    addrs[rank] = Some(
                        String::from_utf8(hello.payload)
                            .map_err(|e| transport_error("rendezvous hello", e))?,
                    );
                    controls[rank] = Some(stream);
                    pending += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= until {
                        let missing: Vec<usize> =
                            (0..size).filter(|&r| controls[r].is_none()).collect();
                        return Err(transport_error(
                            "rendezvous",
                            format!("timed out waiting for ranks {missing:?}"),
                        ));
                    }
                    thread::sleep(COLLECT_POLL);
                }
                Err(e) => return Err(transport_error("rendezvous accept", e)),
            }
        }
        let list: Vec<String> = addrs
            .into_iter()
            .map(|a| a.expect("all collected"))
            .collect();
        let mut broadcast = Frame::control(FrameKind::Addrs, u32::MAX);
        broadcast.payload = list.join("\n").into_bytes();
        let mut out = Vec::with_capacity(size);
        for (rank, control) in controls.into_iter().enumerate() {
            let mut control = control.expect("all collected");
            wire::write_frame(&mut control, &broadcast)
                .map_err(|e| transport_error(&format!("rendezvous addrs to rank {rank}"), e))?;
            out.push(control);
        }
        Ok(out)
    }
}

/// One rank's established connections: the per-peer mesh sockets and the
/// control connection to the rendezvous.
struct Mesh {
    peers: Vec<Option<TcpStream>>,
    control: TcpStream,
}

/// Build this rank's side of the full mesh through the rendezvous at
/// `rendezvous` (`host:port`).
fn connect_mesh(rank: usize, size: usize, rendezvous: &str) -> Result<Mesh, CommError> {
    let listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(|e| transport_error("mesh bind", e))?;
    let my_addr = listener
        .local_addr()
        .map_err(|e| transport_error("mesh addr", e))?;
    let rdv_addr = rendezvous
        .to_socket_addrs()
        .map_err(|e| transport_error("rendezvous resolve", e))?
        .next()
        .ok_or_else(|| transport_error("rendezvous resolve", "no address"))?;
    let mut control = TcpStream::connect_timeout(&rdv_addr, HANDSHAKE_TIMEOUT)
        .map_err(|e| transport_error("rendezvous connect", e))?;
    control
        .set_nodelay(true)
        .map_err(|e| transport_error("rendezvous connect", e))?;
    control
        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| transport_error("rendezvous connect", e))?;
    let mut hello = Frame::control(FrameKind::Hello, rank as u32);
    hello.seq = size as u64;
    hello.payload = my_addr.to_string().into_bytes();
    wire::write_frame(&mut control, &hello).map_err(|e| transport_error("hello", e))?;
    let addrs_frame =
        wire::read_frame(&mut control).map_err(|e| transport_error("awaiting addrs", e))?;
    if addrs_frame.kind != FrameKind::Addrs {
        return Err(transport_error(
            "awaiting addrs",
            format!("unexpected {:?} frame", addrs_frame.kind),
        ));
    }
    let addrs: Vec<String> = String::from_utf8(addrs_frame.payload)
        .map_err(|e| transport_error("addrs payload", e))?
        .lines()
        .map(str::to_string)
        .collect();
    if addrs.len() != size {
        return Err(transport_error(
            "addrs payload",
            format!("{} addresses for world size {size}", addrs.len()),
        ));
    }

    let mut peers: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
    // Dial every lower rank, announcing who we are.
    for (peer, addr) in addrs.iter().enumerate().take(rank) {
        let peer_addr = addr
            .to_socket_addrs()
            .map_err(|e| transport_error("peer resolve", e))?
            .next()
            .ok_or_else(|| transport_error("peer resolve", "no address"))?;
        let mut stream = TcpStream::connect_timeout(&peer_addr, HANDSHAKE_TIMEOUT)
            .map_err(|e| transport_error(&format!("dial rank {peer}"), e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| transport_error("peer setup", e))?;
        wire::write_frame(&mut stream, &Frame::control(FrameKind::Peer, rank as u32))
            .map_err(|e| transport_error(&format!("peer handshake to rank {peer}"), e))?;
        peers[peer] = Some(stream);
    }
    // Accept from every higher rank.
    listener
        .set_nonblocking(true)
        .map_err(|e| transport_error("mesh accept", e))?;
    let until = Instant::now() + HANDSHAKE_TIMEOUT;
    let mut accepted = 0usize;
    while accepted < size - rank - 1 {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nodelay(true)
                    .map_err(|e| transport_error("peer setup", e))?;
                stream
                    .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
                    .map_err(|e| transport_error("peer setup", e))?;
                let peer_frame = wire::read_frame(&mut stream)
                    .map_err(|e| transport_error("peer handshake", e))?;
                if peer_frame.kind != FrameKind::Peer {
                    return Err(transport_error(
                        "peer handshake",
                        format!("unexpected {:?} frame", peer_frame.kind),
                    ));
                }
                let peer = peer_frame.src as usize;
                if peer <= rank || peer >= size || peers[peer].is_some() {
                    return Err(transport_error(
                        "peer handshake",
                        format!("unexpected peer rank {peer}"),
                    ));
                }
                // Reader threads block indefinitely from here on.
                stream
                    .set_read_timeout(None)
                    .map_err(|e| transport_error("peer setup", e))?;
                peers[peer] = Some(stream);
                accepted += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= until {
                    let missing: Vec<usize> =
                        (rank + 1..size).filter(|&p| peers[p].is_none()).collect();
                    return Err(transport_error(
                        "mesh accept",
                        format!("timed out waiting for ranks {missing:?}"),
                    ));
                }
                thread::sleep(COLLECT_POLL);
            }
            Err(e) => return Err(transport_error("mesh accept", e)),
        }
    }
    Ok(Mesh { peers, control })
}

// ---------------------------------------------------------------------------
// The endpoint
// ---------------------------------------------------------------------------

/// Everything needed to assemble a [`TcpComm`] besides the sockets.
struct TcpCommConfig {
    rank: usize,
    size: usize,
    model: MachineModel,
    scheme: CommScheme,
    fault: Option<Arc<FaultPlan>>,
    trace: bool,
    obs: Option<RankObs>,
    connect_ns: u64,
}

/// The socket-backed [`Comm`] endpoint.
///
/// Virtual-clock arithmetic, fault injection, and reliability bookkeeping
/// mirror [`crate::ThreadedComm`] operation for operation, so both
/// backends yield identical clocks and counters; only the substrate
/// differs — outgoing envelopes are encoded to TCMP frames on the calling
/// thread (measured as `serialize_ns`) and queued to per-peer writer
/// threads, while per-peer reader threads decode arrivals (measured as
/// `deserialize_ns`) into the receive path.
///
/// Constructed by [`run_cluster_tcp`] (in-process ranks) and
/// [`run_worker`] (one rank of a multi-process run).
pub struct TcpComm {
    rank: usize,
    size: usize,
    model: MachineModel,
    scheme: CommScheme,
    clock: f64,
    comm_lane: f64,
    lane_busy: f64,
    stats: CommStats,
    trace: Option<Trace>,
    /// Pre-encoded frames to each peer's writer thread.
    writers: Vec<Option<SyncSender<Vec<u8>>>>,
    /// Decoded envelopes from each peer's reader thread.
    rxs: Vec<Option<Receiver<Envelope>>>,
    /// Per-peer buffers of arrived-but-unmatched messages (tag matching).
    pending: Vec<Vec<Envelope>>,
    monitor: Arc<Monitor>,
    fault: Option<Arc<FaultPlan>>,
    crash_at: Option<f64>,
    stall: Option<RankStall>,
    links: LinkSeq,
    holdback: Vec<Option<Envelope>>,
    obs: Option<RankObs>,
}

impl TcpComm {
    fn build(
        cfg: TcpCommConfig,
        peers: Vec<Option<TcpStream>>,
        monitor: Arc<Monitor>,
    ) -> (TcpComm, Vec<JoinHandle<()>>) {
        let size = cfg.size;
        let metrics = cfg.obs.as_ref().map(|o| o.metrics());
        let mut writers: Vec<Option<SyncSender<Vec<u8>>>> = (0..size).map(|_| None).collect();
        let mut rxs: Vec<Option<Receiver<Envelope>>> = (0..size).map(|_| None).collect();
        let mut writer_handles = Vec::new();
        for (peer, stream) in peers.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            let read_half = stream.try_clone().expect("socket clone");
            let (out_tx, out_rx) = sync_channel::<Vec<u8>>(SEND_QUEUE_FRAMES);
            let (in_tx, in_rx) = channel::<Envelope>();
            let writer = thread::Builder::new()
                .name(format!("tilecc-tcp-w{}-{}", cfg.rank, peer))
                .spawn(move || {
                    let mut stream = stream;
                    while let Ok(buf) = out_rx.recv() {
                        if std::io::Write::write_all(&mut stream, &buf).is_err() {
                            break;
                        }
                    }
                    // Flush done (or socket dead): announce end-of-stream but
                    // keep our read side open — the peer may still be
                    // flushing frames to us, and resetting the socket could
                    // destroy them in flight.
                    let _ = stream.shutdown(Shutdown::Write);
                })
                .expect("failed to spawn tcp writer thread");
            let reader_metrics = metrics.clone();
            thread::Builder::new()
                .name(format!("tilecc-tcp-r{}-{}", cfg.rank, peer))
                .spawn(move || reader_loop(read_half, in_tx, reader_metrics))
                .expect("failed to spawn tcp reader thread");
            writers[peer] = Some(out_tx);
            rxs[peer] = Some(in_rx);
            writer_handles.push(writer);
        }
        if let Some(o) = &cfg.obs {
            o.gauge_set(GaugeId::ConnectNs, cfg.connect_ns);
        }
        let comm = TcpComm {
            rank: cfg.rank,
            size,
            model: cfg.model,
            scheme: cfg.scheme,
            clock: 0.0,
            comm_lane: 0.0,
            lane_busy: 0.0,
            stats: CommStats::default(),
            trace: cfg.trace.then(Trace::default),
            writers,
            rxs,
            pending: (0..size).map(|_| Vec::new()).collect(),
            monitor,
            crash_at: cfg.fault.as_ref().and_then(|fp| fp.crash_time(cfg.rank)),
            stall: cfg.fault.as_ref().and_then(|fp| fp.stall_of(cfg.rank)),
            fault: cfg.fault,
            links: LinkSeq::new(size),
            holdback: (0..size).map(|_| None).collect(),
            obs: cfg.obs,
        };
        (comm, writer_handles)
    }

    /// Fire any virtual-time-triggered faults (identical to the threaded
    /// engine: a stall jumps the clock once, a crash panics).
    fn fault_tick(&mut self) {
        if let Some(stall) = self.stall {
            if self.clock >= stall.at {
                self.stall = None;
                self.clock += stall.duration;
                self.stats.wait_time += stall.duration;
                if let Some(o) = &self.obs {
                    o.virt_add(VirtAcc::Stall, stall.duration);
                }
            }
        }
        if let Some(at) = self.crash_at {
            if self.clock >= at {
                std::panic::panic_any(crate::threaded::InjectedCrash {
                    rank: self.rank,
                    at,
                    clock: self.clock,
                });
            }
        }
    }

    /// Encode one envelope and queue it to the peer's writer thread.
    fn push_link(&self, to: usize, env: &Envelope) -> Result<(), CommError> {
        self.monitor.bump();
        let t0 = self.obs.as_ref().map(|o| o.now_ns());
        let buf = wire::encode_envelope(self.rank as u32, env);
        if let (Some(o), Some(t0)) = (&self.obs, t0) {
            o.observe(HistId::SerializeNs, o.now_ns().saturating_sub(t0));
        }
        self.writers[to]
            .as_ref()
            .expect("no link to peer")
            .send(buf)
            .map_err(|_| {
                if self.monitor.aborted() {
                    CommError::Aborted
                } else {
                    CommError::PeerDisconnected { rank: to }
                }
            })
    }

    /// Queue a *redundant* envelope (duplicate copy or released reorder
    /// hold). A peer that already exited is not an error — see
    /// `ThreadedComm::push_link_redundant`.
    fn push_link_redundant(&self, to: usize, env: &Envelope) -> Result<(), CommError> {
        match self.push_link(to, env) {
            Ok(())
            | Err(CommError::PeerDisconnected { .. })
            | Err(CommError::Disconnected { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Release every held-back (reorder-injected) envelope.
    fn flush_holdbacks(&mut self) -> Result<(), CommError> {
        for to in 0..self.size {
            if let Some(env) = self.holdback[to].take() {
                self.push_link_redundant(to, &env)?;
            }
        }
        Ok(())
    }

    /// The next in-sequence envelope from `from`, suppressing duplicates
    /// and re-sequencing out-of-order arrivals — the socket twin of the
    /// threaded engine's receive loop.
    fn next_in_order(&mut self, from: usize, tag: i64) -> Result<Envelope, CommError> {
        if let Some(env) = self.links.take_ready(from) {
            return Ok(env);
        }
        self.monitor
            .set(self.rank, RankPhase::Blocked { from, tag });
        let result = loop {
            let rx = self.rxs[from].as_ref().expect("no link from peer");
            match rx.recv_timeout(RECV_POLL) {
                Ok(env) => {
                    self.monitor.bump();
                    match self.links.admit(from, env) {
                        Admit::Deliver(env) => break Ok(env),
                        Admit::Duplicate => {
                            self.stats.duplicates_suppressed += 1;
                            if let Some(o) = &self.obs {
                                o.add(Counter::DupsSuppressed, 1);
                            }
                        }
                        Admit::Buffered => {}
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.monitor.aborted() {
                        break Err(CommError::Aborted);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    break Err(if self.monitor.aborted() {
                        CommError::Aborted
                    } else {
                        CommError::PeerDisconnected { rank: from }
                    });
                }
            }
        };
        self.monitor.set(self.rank, RankPhase::Running);
        result
    }
}

/// Reader-thread body: decode frames off one peer socket into the receive
/// channel. Runs until end-of-stream so the socket is fully drained even
/// after the local rank finished (a reset could otherwise destroy frames
/// a *third* rank still needs — TCP resets discard receive buffers).
fn reader_loop(
    mut stream: TcpStream,
    in_tx: std::sync::mpsc::Sender<Envelope>,
    metrics: Option<Arc<RankMetrics>>,
) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(frame) if frame.kind == FrameKind::Data => {
                let t0 = Instant::now();
                match wire::decode_envelope(&frame) {
                    Ok(env) => {
                        if let Some(m) = &metrics {
                            m.hist(HistId::DeserializeNs)
                                .observe(t0.elapsed().as_nanos() as u64);
                        }
                        // A closed receiver means the local rank finished;
                        // keep draining the socket regardless.
                        let _ = in_tx.send(env);
                    }
                    Err(_) => break,
                }
            }
            // Stray control frames on a mesh socket: ignore.
            Ok(_) => {}
            // Closed, truncated, or reset: the peer is gone.
            Err(_) => break,
        }
    }
}

impl Comm for TcpComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn try_send_tagged(
        &mut self,
        to: usize,
        tag: i64,
        payload: Vec<f64>,
        nominal_bytes: usize,
    ) -> Result<(), CommError> {
        assert!(to != self.rank, "send to self is not supported");
        self.fault_tick();
        let wall_t0 = self.obs.as_ref().map(|o| o.now_ns());
        let virt_t0 = self.clock;
        let seq = self.links.assign(to);

        if let Some(fault) = self.fault.clone() {
            for pause in retransmit_pauses(&fault, &self.model, self.rank, to, seq, nominal_bytes)?
            {
                self.stats.retransmissions += 1;
                self.stats.retrans_time += pause;
                match self.scheme {
                    CommScheme::Blocking => {
                        self.clock += pause;
                        if let Some(o) = &self.obs {
                            o.virt_add(VirtAcc::Retrans, pause);
                        }
                    }
                    CommScheme::Overlapped => {
                        let lane_start = self.comm_lane.max(self.clock);
                        self.comm_lane = lane_start + pause;
                        self.lane_busy += pause;
                    }
                }
                if let Some(o) = &self.obs {
                    o.add(Counter::FaultDrops, 1);
                    o.add(Counter::Retransmits, 1);
                }
            }
        }

        let send_cost = match self.scheme {
            CommScheme::Blocking => self.model.send_cost(nominal_bytes),
            CommScheme::Overlapped => 0.0,
        };
        self.clock += send_cost;
        let ready_at = match self.scheme {
            CommScheme::Blocking => self.clock + self.model.wire_latency,
            CommScheme::Overlapped => {
                let lane_start = self.comm_lane.max(self.clock);
                let lane_end = lane_start + self.model.send_cost(nominal_bytes);
                self.comm_lane = lane_end;
                self.lane_busy += self.model.send_cost(nominal_bytes);
                lane_end + self.model.wire_latency
            }
        };
        let mut env = Envelope {
            payload,
            tag,
            ready_at,
            seq,
            bytes: nominal_bytes,
        };
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += nominal_bytes as u64;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Send {
                at: self.clock,
                to,
                bytes: nominal_bytes,
            });
        }
        if let Some(o) = &self.obs {
            o.add(Counter::MessagesSent, 1);
            o.add(Counter::BytesSent, nominal_bytes as u64);
            o.virt_add(VirtAcc::Send, send_cost);
        }

        let (duplicate, reorder) = match &self.fault {
            Some(f) if f.perturbs_links() => {
                if let Some(extra) = f.delayed(self.rank, to, seq) {
                    env.ready_at += extra;
                    if let Some(o) = &self.obs {
                        o.add(Counter::FaultDelays, 1);
                    }
                }
                let (dup, reord) = (
                    f.duplicated(self.rank, to, seq),
                    f.reordered(self.rank, to, seq),
                );
                if let Some(o) = &self.obs {
                    if dup {
                        o.add(Counter::FaultDups, 1);
                    }
                    if reord {
                        o.add(Counter::FaultReorders, 1);
                    }
                }
                (dup, reord)
            }
            _ => (false, false),
        };
        if reorder {
            if duplicate {
                self.push_link(to, &env)?;
            }
            if let Some(prev) = self.holdback[to].take() {
                self.push_link_redundant(to, &prev)?;
            }
            self.holdback[to] = Some(env);
        } else {
            if duplicate {
                self.push_link(to, &env)?;
                self.push_link_redundant(to, &env)?;
            } else {
                self.push_link(to, &env)?;
            }
            if let Some(prev) = self.holdback[to].take() {
                self.push_link_redundant(to, &prev)?;
            }
        }
        if let Some(wall_t0) = wall_t0 {
            let virt_t1 = self.clock;
            let outstanding = self.holdback.iter().filter(|h| h.is_some()).count() as u64;
            if let Some(o) = &mut self.obs {
                o.gauge_set(GaugeId::OutstandingSends, outstanding);
                o.span(
                    Phase::Send,
                    wall_t0,
                    (virt_t0, virt_t1),
                    nominal_bytes as u64,
                );
            }
        }
        Ok(())
    }

    fn try_recv_tagged(&mut self, from: usize, tag: i64) -> Result<Vec<f64>, CommError> {
        assert!(from != self.rank, "recv from self is not supported");
        self.fault_tick();
        self.flush_holdbacks()?;
        let wall_t0 = self.obs.as_ref().map(|o| o.now_ns());
        let start = self.clock;
        let env = if let Some(pos) = self.pending[from].iter().position(|e| e.tag == tag) {
            self.pending[from].remove(pos)
        } else {
            loop {
                let env = self.next_in_order(from, tag)?;
                if env.tag == tag {
                    break env;
                }
                self.pending[from].push(env);
            }
        };
        if env.ready_at > self.clock {
            let waited = env.ready_at - self.clock;
            self.stats.wait_time += waited;
            self.clock = env.ready_at;
            if let Some(o) = &self.obs {
                o.virt_add(VirtAcc::Wait, waited);
            }
        }
        let ready = self.clock;
        if self.scheme == CommScheme::Blocking {
            self.clock += self.model.recv_overhead;
            if let Some(o) = &self.obs {
                o.virt_add(VirtAcc::RecvOverhead, self.model.recv_overhead);
            }
        }
        self.stats.messages_received += 1;
        self.stats.bytes_received += env.bytes as u64;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Recv {
                start,
                ready,
                end: self.clock,
                from,
            });
        }
        if let Some(wall_t0) = wall_t0 {
            let virt_t1 = self.clock;
            let pending_depth = self.pending.iter().map(|p| p.len()).sum::<usize>() as u64;
            let reseq_depth = self.links.resequence_depth();
            if let Some(o) = &mut self.obs {
                o.add(Counter::MessagesReceived, 1);
                o.add(Counter::BytesReceived, env.bytes as u64);
                o.observe(HistId::RecvWaitNs, o.now_ns().saturating_sub(wall_t0));
                o.gauge_set(GaugeId::PendingDepth, pending_depth);
                o.gauge_set(GaugeId::ResequenceDepth, reseq_depth);
                o.span(Phase::Recv, wall_t0, (start, virt_t1), env.bytes as u64);
            }
        }
        Ok(env.payload)
    }

    fn drain_sends(&mut self) -> f64 {
        let overshoot = (self.comm_lane - self.clock).max(0.0);
        let hidden = (self.lane_busy - overshoot).max(0.0);
        if let Some(o) = &self.obs {
            if overshoot > 0.0 {
                o.virt_add(VirtAcc::Drain, overshoot);
            }
            if hidden > 0.0 {
                o.virt_add(VirtAcc::OverlapHidden, hidden);
            }
        }
        self.clock += overshoot;
        self.comm_lane = self.clock;
        self.lane_busy = 0.0;
        overshoot
    }

    fn advance_compute(&mut self, iters: u64) {
        self.fault_tick();
        let dt = self.model.compute_cost(iters);
        let start = self.clock;
        self.clock += dt;
        self.stats.compute_time += dt;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Compute {
                start,
                end: self.clock,
                iters,
            });
        }
        if let Some(o) = &self.obs {
            o.virt_add(VirtAcc::Compute, dt);
        }
    }

    fn local_time(&self) -> f64 {
        self.clock
    }

    fn model(&self) -> &MachineModel {
        &self.model
    }

    fn stats(&self) -> CommStats {
        self.stats
    }

    fn obs(&mut self) -> Option<&mut RankObs> {
        self.obs.as_mut()
    }
}

impl Drop for TcpComm {
    fn drop(&mut self) {
        let _ = self.flush_holdbacks();
        // Dropping `writers` ends each writer thread's queue; writers flush
        // what is queued, then send FIN. Readers drain to end-of-stream.
    }
}

// ---------------------------------------------------------------------------
// In-process runner
// ---------------------------------------------------------------------------

/// Run an SPMD program over `size` ranks communicating through real
/// localhost sockets, all within this process — the TCP twin of
/// [`crate::run_cluster_opts`], sharing its watchdog (deadlock detection,
/// wall cap) and failure reporting.
pub fn run_cluster_tcp<R, F>(
    size: usize,
    model: MachineModel,
    options: EngineOptions,
    f: F,
) -> Result<RunReport<R>, RunError>
where
    R: Send + 'static,
    F: Fn(&mut TcpComm) -> R + Send + Sync + 'static,
{
    assert!(size > 0, "cluster needs at least one process");
    install_quiet_panic_hook();
    let rendezvous = Rendezvous::bind().map_err(|error| RunError::Comm { rank: 0, error })?;
    let rdv_addr = rendezvous.addr().to_string();
    // The coordinator keeps the control sockets alive until the run ends.
    let coordinator = thread::spawn(move || rendezvous.coordinate(size, HANDSHAKE_TIMEOUT));

    let scheme = options.scheme;
    let fault = options.fault.clone().map(Arc::new);
    let monitor = Arc::new(Monitor::new(size));
    let f = Arc::new(f);
    let (done_tx, done_rx) = channel();
    for rank in 0..size {
        let f = f.clone();
        let monitor_for_rank = monitor.clone();
        let done = done_tx.clone();
        let fault = fault.clone();
        let obs = options
            .obs
            .as_ref()
            .map(|reg| RankObs::new(reg.clone(), rank));
        let trace = options.trace;
        let rdv_addr = rdv_addr.clone();
        thread::Builder::new()
            .name(format!("tilecc-tcp-rank-{rank}"))
            .spawn(move || {
                let connect_t0 = Instant::now();
                let mesh = match connect_mesh(rank, size, &rdv_addr) {
                    Ok(mesh) => mesh,
                    Err(error) => {
                        monitor_for_rank.set(rank, RankPhase::Done);
                        let _ = done.send((
                            rank,
                            RankEnd::CommFail(error),
                            0.0,
                            CommStats::default(),
                            Trace::default(),
                        ));
                        return;
                    }
                };
                // Keep the control socket open for the run's duration so the
                // coordinator's accept bookkeeping stays simple.
                let _control = mesh.control;
                let (mut comm, writer_handles) = TcpComm::build(
                    TcpCommConfig {
                        rank,
                        size,
                        model,
                        scheme,
                        fault,
                        trace,
                        obs,
                        connect_ns: connect_t0.elapsed().as_nanos() as u64,
                    },
                    mesh.peers,
                    monitor_for_rank.clone(),
                );
                let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                monitor_for_rank.set(rank, RankPhase::Done);
                let end = match outcome {
                    Ok(r) => RankEnd::Ok(r),
                    Err(payload) => match payload.downcast::<CommAbort>() {
                        Ok(abort) => RankEnd::CommFail(abort.error),
                        Err(payload) => RankEnd::Panic(panic_message(payload.as_ref())),
                    },
                };
                let (clock, stats) = (comm.clock, comm.stats);
                let trace = comm.trace.take().unwrap_or_default();
                // Close our endpoint: writers flush + FIN, blocked peers
                // observe end-of-stream instead of hanging.
                drop(comm);
                for h in writer_handles {
                    let _ = h.join();
                }
                let _ = done.send((rank, end, clock, stats, trace));
            })
            .expect("failed to spawn tcp rank thread");
    }
    drop(done_tx);

    let result = collect(size, monitor, done_rx, &options);
    let _ = coordinator.join();
    result
}

// ---------------------------------------------------------------------------
// Multi-process workers
// ---------------------------------------------------------------------------

/// Configuration of one worker process's rank ([`run_worker`]).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// This worker's rank.
    pub rank: usize,
    /// World size (number of worker processes).
    pub size: usize,
    /// The driver's rendezvous address (`host:port`).
    pub rendezvous: String,
    /// Machine model, which must match the driver's.
    pub model: MachineModel,
    /// Engine options; `scheme`, `fault`, `trace`, and `obs` apply
    /// (watchdog fields are the driver's job in the multi-process model).
    pub options: EngineOptions,
}

/// A worker's channel back to the driver after a successful run: used to
/// ship the result payload and wait for the driver's `BYE` barrier.
pub struct WorkerHandle {
    rank: usize,
    control: Arc<Mutex<TcpStream>>,
}

impl WorkerHandle {
    /// Send the `RESULT` frame: final virtual clock plus a caller-defined
    /// payload (serialized stats and gathered data).
    pub fn send_result(&self, local_time: f64, payload: Vec<u8>) -> Result<(), CommError> {
        let mut frame = Frame::control(FrameKind::Result, self.rank as u32);
        frame.ready_at = local_time;
        frame.payload = payload;
        let mut control = self.control.lock().expect("control poisoned");
        wire::write_frame(&mut *control, &frame).map_err(|e| transport_error("send result", e))
    }

    /// Block until the driver's `BYE` arrives — the signal that every
    /// rank's result is safely at the driver, so this process may exit
    /// without resetting sockets that still carry undelivered frames.
    pub fn wait_bye(&self) -> Result<(), CommError> {
        let mut control = self.control.lock().expect("control poisoned");
        control
            .set_read_timeout(Some(BYE_TIMEOUT))
            .map_err(|e| transport_error("await bye", e))?;
        loop {
            match wire::read_frame(&mut *control) {
                Ok(frame) if frame.kind == FrameKind::Bye => return Ok(()),
                Ok(_) => {}
                Err(e) => return Err(transport_error("await bye", e)),
            }
        }
    }
}

/// Encode a typed [`CommError`] into `ERROR`-frame scalars `(tag,
/// nominal)`; the inverse of [`decode_comm_error`].
fn encode_comm_error(e: &CommError) -> (i64, u64) {
    match e {
        CommError::Disconnected { peer } => (1, *peer as u64),
        CommError::Unreachable { peer, attempts } => {
            (2, (*peer as u64) | ((*attempts as u64) << 32))
        }
        CommError::Aborted => (3, 0),
        CommError::PeerDisconnected { rank } => (4, *rank as u64),
        CommError::Transport { .. } => (5, 0),
    }
}

/// Reconstruct a typed [`CommError`] from `ERROR`-frame scalars; the
/// payload text supplies [`CommError::Transport`]'s detail.
fn decode_comm_error(tag: i64, nominal: u64, text: &str) -> CommError {
    match tag {
        1 => CommError::Disconnected {
            peer: (nominal & 0xFFFF_FFFF) as usize,
        },
        2 => CommError::Unreachable {
            peer: (nominal & 0xFFFF_FFFF) as usize,
            attempts: (nominal >> 32) as u32,
        },
        3 => CommError::Aborted,
        4 => CommError::PeerDisconnected {
            rank: (nominal & 0xFFFF_FFFF) as usize,
        },
        _ => CommError::Transport {
            detail: text.to_string(),
        },
    }
}

/// Heartbeat thread: ship this rank's phase and progress counter to the
/// driver every [`HEARTBEAT_PERIOD`] so the multi-process watchdog can see
/// blocked/running states exactly like the threaded engine's monitor.
fn spawn_heartbeat(
    rank: usize,
    control: Arc<Mutex<TcpStream>>,
    monitor: Arc<Monitor>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name(format!("tilecc-tcp-hb-{rank}"))
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let mut frame = Frame::control(FrameKind::Progress, rank as u32);
                frame.seq = monitor.progress();
                match monitor.phase_of(rank) {
                    RankPhase::Running => frame.nominal = 0,
                    RankPhase::Blocked { from, tag } => {
                        frame.nominal = from as u64 + 1;
                        frame.tag = tag;
                    }
                    RankPhase::Done => frame.nominal = u64::MAX,
                }
                {
                    let mut control = control.lock().expect("control poisoned");
                    if wire::write_frame(&mut *control, &frame).is_err() {
                        return; // Driver gone; the run is over either way.
                    }
                }
                thread::sleep(HEARTBEAT_PERIOD);
            }
        })
        .expect("failed to spawn heartbeat thread")
}

/// Run one rank of a multi-process TCP cluster inside this process:
/// connect the mesh through the driver's rendezvous, execute `f`, and
/// return its result plus the final clock and statistics together with
/// the [`WorkerHandle`] for shipping the result payload.
///
/// Failures are *typed and terminal*: a panic inside `f` becomes
/// [`RunError::RankPanicked`], a substrate failure (notably
/// [`CommError::PeerDisconnected`] when a peer process dies mid-run)
/// becomes [`RunError::Comm`] — in both cases a best-effort `ERROR` frame
/// is shipped to the driver first, and the caller is expected to exit
/// nonzero. A worker never hangs on a dead peer: the peer's socket
/// reaching end-of-stream unblocks any receive on it.
pub fn run_worker<R, F>(
    cfg: &WorkerConfig,
    f: F,
) -> Result<(R, f64, CommStats, WorkerHandle), RunError>
where
    F: FnOnce(&mut TcpComm) -> R,
{
    install_quiet_panic_hook();
    let rank = cfg.rank;
    let connect_t0 = Instant::now();
    let mesh = connect_mesh(rank, cfg.size, &cfg.rendezvous)
        .map_err(|error| RunError::Comm { rank, error })?;
    let connect_ns = connect_t0.elapsed().as_nanos() as u64;
    let control = Arc::new(Mutex::new(mesh.control.try_clone().map_err(|e| {
        RunError::Comm {
            rank,
            error: transport_error("control clone", e),
        }
    })?));
    // Keep the original control handle alive too (dropping a clone does not
    // close the socket, but be explicit about ownership).
    let _control_keepalive = mesh.control;
    let monitor = Arc::new(Monitor::new(cfg.size));
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = spawn_heartbeat(rank, control.clone(), monitor.clone(), stop.clone());
    let obs = cfg.options.obs.as_ref().map(|reg| {
        // Force the registry to the full world size so per-rank exports
        // index consistently even though only our slot is written.
        let _ = reg.rank_metrics(cfg.size.saturating_sub(1));
        RankObs::new(reg.clone(), rank)
    });
    let (mut comm, writer_handles) = TcpComm::build(
        TcpCommConfig {
            rank,
            size: cfg.size,
            model: cfg.model,
            scheme: cfg.options.scheme,
            fault: cfg.options.fault.clone().map(Arc::new),
            trace: cfg.options.trace,
            obs,
            connect_ns,
        },
        mesh.peers,
        monitor.clone(),
    );
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
    monitor.set(rank, RankPhase::Done);
    let (clock, stats) = (comm.clock, comm.stats);
    // Flush our endpoint (writers drain + FIN) before reporting.
    drop(comm);
    for h in writer_handles {
        let _ = h.join();
    }
    stop.store(true, Ordering::Relaxed);
    let _ = heartbeat.join();
    match outcome {
        Ok(r) => Ok((r, clock, stats, WorkerHandle { rank, control })),
        Err(payload) => {
            let error = match payload.downcast::<CommAbort>() {
                Ok(abort) => RunError::Comm {
                    rank,
                    error: abort.error,
                },
                Err(payload) => RunError::RankPanicked {
                    rank,
                    payload: panic_message(payload.as_ref()),
                },
            };
            let mut frame = Frame::control(FrameKind::Error, rank as u32);
            match &error {
                RunError::Comm { error: e, .. } => {
                    frame.seq = 2;
                    let (tag, nominal) = encode_comm_error(e);
                    frame.tag = tag;
                    frame.nominal = nominal;
                    frame.payload = e.to_string().into_bytes();
                }
                RunError::RankPanicked { payload, .. } => {
                    // The bare panic payload: the driver re-wraps it in a
                    // `RankPanicked` carrying the rank, so sending the
                    // rendered error would double the prefix.
                    frame.seq = 1;
                    frame.payload = payload.clone().into_bytes();
                }
                other => {
                    frame.seq = 1;
                    frame.payload = other.to_string().into_bytes();
                }
            }
            if let Ok(mut control) = control.lock() {
                let _ = wire::write_frame(&mut *control, &frame);
            }
            Err(error)
        }
    }
}

/// One worker's successful outcome as seen by the driver.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// The worker's rank.
    pub rank: usize,
    /// Its final virtual clock.
    pub local_time: f64,
    /// The caller-defined result payload from its `RESULT` frame.
    pub payload: Vec<u8>,
}

/// Per-rank driver-side state while collecting workers.
struct WorkerSlot {
    stream: TcpStream,
    buf: Vec<u8>,
    report: Option<WorkerReport>,
    /// `(class, error)` from an `ERROR` frame: class 1 = panic, 2 = comm.
    failure: Option<(u64, RunError)>,
    dead: bool,
    progress: u64,
    phase: RankPhase,
}

impl WorkerSlot {
    /// Pull everything currently readable off the control socket into the
    /// frame buffer, then process complete frames.
    fn poll(&mut self) {
        if self.dead && self.report.is_none() {
            return;
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        loop {
            match Frame::decode(&self.buf) {
                Ok((frame, used)) => {
                    self.buf.drain(..used);
                    self.ingest(frame);
                }
                Err(wire::WireError::Truncated { .. }) => break,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }

    fn ingest(&mut self, frame: Frame) {
        let rank = frame.src as usize;
        match frame.kind {
            FrameKind::Progress => {
                self.progress = frame.seq;
                self.phase = if frame.nominal == 0 {
                    RankPhase::Running
                } else if frame.nominal == u64::MAX {
                    RankPhase::Done
                } else {
                    RankPhase::Blocked {
                        from: (frame.nominal - 1) as usize,
                        tag: frame.tag,
                    }
                };
            }
            FrameKind::Result => {
                self.phase = RankPhase::Done;
                self.report = Some(WorkerReport {
                    rank,
                    local_time: frame.ready_at,
                    payload: frame.payload,
                });
            }
            FrameKind::Error => {
                self.phase = RankPhase::Done;
                let text = String::from_utf8_lossy(&frame.payload).into_owned();
                let error = if frame.seq == 2 {
                    RunError::Comm {
                        rank,
                        error: decode_comm_error(frame.tag, frame.nominal, &text),
                    }
                } else {
                    RunError::RankPanicked {
                        rank,
                        payload: text,
                    }
                };
                self.failure = Some((frame.seq, error));
            }
            _ => {}
        }
    }
}

/// The primary failure among worker outcomes, mirroring the threaded
/// engine's ordering: panics beat communication errors beat silent deaths.
fn worker_primary_failure(slots: &[WorkerSlot]) -> Option<RunError> {
    for slot in slots {
        if let Some((1, e)) = &slot.failure {
            return Some(e.clone());
        }
    }
    for slot in slots {
        if let Some((_, e)) = &slot.failure {
            return Some(e.clone());
        }
    }
    for (rank, slot) in slots.iter().enumerate() {
        if slot.dead && slot.report.is_none() {
            return Some(RunError::RankPanicked {
                rank,
                payload: "worker process died without reporting a result".into(),
            });
        }
    }
    None
}

/// Driver-side supervision of multi-process workers: collect `RESULT`
/// frames off the control connections while running the same watchdog the
/// threaded engine has — heartbeat-fed deadlock detection (every live
/// worker blocked with no progress), an optional wall cap, and typed
/// failure propagation. On success every worker receives `BYE` and the
/// reports are returned in rank order.
pub fn collect_workers(
    controls: Vec<TcpStream>,
    wall_timeout: Option<Duration>,
    deadlock_detection: bool,
) -> Result<Vec<WorkerReport>, RunError> {
    let size = controls.len();
    let started = Instant::now();
    let mut slots: Vec<WorkerSlot> = Vec::with_capacity(size);
    for stream in controls {
        stream.set_nonblocking(true).map_err(|e| RunError::Comm {
            rank: 0,
            error: transport_error("control nonblocking", e),
        })?;
        slots.push(WorkerSlot {
            stream,
            buf: Vec::new(),
            report: None,
            failure: None,
            dead: false,
            progress: 0,
            phase: RankPhase::Running,
        });
    }

    let mut stable: u32 = 0;
    let mut last_progress: Option<Vec<u64>> = None;
    loop {
        for slot in &mut slots {
            slot.poll();
        }
        if slots.iter().all(|s| s.report.is_some()) {
            break;
        }
        if slots
            .iter()
            .any(|s| s.failure.is_some() || (s.dead && s.report.is_none()))
        {
            // Give the remaining workers a grace period to report context,
            // then fold to the primary cause.
            let deadline = Instant::now() + ABORT_GRACE;
            while Instant::now() < deadline {
                for slot in &mut slots {
                    slot.poll();
                }
                if slots
                    .iter()
                    .all(|s| s.report.is_some() || s.failure.is_some() || s.dead)
                {
                    break;
                }
                thread::sleep(COLLECT_POLL);
            }
            return Err(worker_primary_failure(&slots).expect("failure observed"));
        }
        if let Some(cap) = wall_timeout {
            if started.elapsed() >= cap {
                let unfinished: Vec<usize> =
                    (0..size).filter(|&r| slots[r].report.is_none()).collect();
                return Err(RunError::WallTimeout {
                    elapsed: started.elapsed(),
                    unfinished,
                });
            }
        }
        if deadlock_detection {
            let progress: Vec<u64> = slots.iter().map(|s| s.progress).collect();
            let waiting_on: Vec<(usize, usize, i64)> = slots
                .iter()
                .enumerate()
                .filter_map(|(rank, s)| match s.phase {
                    RankPhase::Blocked { from, tag } => Some((rank, from, tag)),
                    _ => None,
                })
                .collect();
            let any_running = slots
                .iter()
                .any(|s| s.report.is_none() && s.phase == RankPhase::Running);
            let moved = last_progress.as_ref() != Some(&progress);
            last_progress = Some(progress);
            if moved || any_running || waiting_on.is_empty() {
                stable = 0;
            } else {
                stable += 1;
                if stable >= DRIVER_STABLE_SWEEPS {
                    return Err(RunError::Deadlock {
                        blocked_ranks: waiting_on.iter().map(|w| w.0).collect(),
                        waiting_on,
                    });
                }
            }
        }
        thread::sleep(COLLECT_POLL);
    }

    // All results are in: release the workers.
    let bye = Frame::control(FrameKind::Bye, u32::MAX);
    for slot in &mut slots {
        let _ = wire::write_frame(&mut slot.stream, &bye);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.report.expect("all reports collected"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_error_codes_round_trip() {
        let cases = [
            CommError::Disconnected { peer: 3 },
            CommError::Unreachable {
                peer: 2,
                attempts: 65,
            },
            CommError::Aborted,
            CommError::PeerDisconnected { rank: 7 },
            CommError::Transport {
                detail: "boom".into(),
            },
        ];
        for e in cases {
            let (tag, nominal) = encode_comm_error(&e);
            let text = match &e {
                CommError::Transport { detail } => detail.clone(),
                other => other.to_string(),
            };
            assert_eq!(decode_comm_error(tag, nominal, &text), e);
        }
    }

    #[test]
    fn tcp_ping_pong_matches_threaded_virtual_times() {
        let model = MachineModel {
            compute_per_iter: 0.0,
            send_overhead: 1.0,
            recv_overhead: 2.0,
            wire_latency: 4.0,
            per_byte: 0.5,
        };
        let report = run_cluster_tcp(2, model, EngineOptions::default(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, vec![7.0, 8.0], 16);
                comm.local_time()
            } else {
                let v = comm.recv(0);
                assert_eq!(v, vec![7.0, 8.0]);
                comm.local_time()
            }
        })
        .unwrap();
        // Identical arithmetic to the threaded engine's ping_pong test.
        assert!((report.results[0] - 9.0).abs() < 1e-12);
        assert!((report.results[1] - 15.0).abs() < 1e-12);
        assert_eq!(report.total_bytes(), 16);
        assert_eq!(report.total_messages(), 1);
    }
}
