//! Machine and network cost model for virtual-time simulation.
//!
//! The paper evaluates on 16 Pentium-III/500 nodes connected by
//! FastEthernet, running MPI. We reproduce the *shape* of its results with a
//! linear (LogGP-flavoured) cost model: computation advances a processor's
//! clock per iteration; a message costs a send overhead plus a per-byte
//! bandwidth term on the sender, travels one wire latency, and costs a
//! receive overhead on the receiver.

/// Linear machine/network cost model. All times in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Seconds per loop iteration (the kernel body).
    pub compute_per_iter: f64,
    /// Sender-side per-message overhead (MPI stack, packing dispatch).
    pub send_overhead: f64,
    /// Receiver-side per-message overhead.
    pub recv_overhead: f64,
    /// Wire latency between any two nodes.
    pub wire_latency: f64,
    /// Seconds per payload byte (inverse bandwidth).
    pub per_byte: f64,
}

impl MachineModel {
    /// Calibrated to the paper's testbed: 500 MHz Pentium III nodes on
    /// switched FastEthernet (100 Mbit/s ≈ 12.5 MB/s, ~100 µs MPI latency),
    /// and a ~10-flop stencil body at roughly 100 ns/iteration.
    pub fn fast_ethernet_p3() -> Self {
        MachineModel {
            compute_per_iter: 100e-9,
            send_overhead: 30e-6,
            recv_overhead: 30e-6,
            wire_latency: 40e-6,
            per_byte: 0.08e-6,
        }
    }

    /// An idealized zero-communication-cost model (useful to isolate the
    /// pure scheduling effect of tile shapes).
    pub fn zero_comm(compute_per_iter: f64) -> Self {
        MachineModel {
            compute_per_iter,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            wire_latency: 0.0,
            per_byte: 0.0,
        }
    }

    /// Sender-side cost of injecting a message of `bytes` payload bytes.
    #[inline]
    pub fn send_cost(&self, bytes: usize) -> f64 {
        self.send_overhead + self.per_byte * bytes as f64
    }

    /// Total one-way transfer cost (used in analytic estimates).
    #[inline]
    pub fn transfer_cost(&self, bytes: usize) -> f64 {
        self.send_cost(bytes) + self.wire_latency + self.recv_overhead
    }

    /// Virtual time of `iters` loop iterations.
    #[inline]
    pub fn compute_cost(&self, iters: u64) -> f64 {
        self.compute_per_iter * iters as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ethernet_magnitudes() {
        let m = MachineModel::fast_ethernet_p3();
        // 8 KB message ≈ 0.75 ms; dominated by bandwidth, not latency.
        let t = m.transfer_cost(8192);
        assert!(t > 0.5e-3 && t < 1.5e-3, "t = {t}");
        // 10k iterations ≈ 1 ms.
        let c = m.compute_cost(10_000);
        assert!((c - 1.0e-3).abs() < 1e-9);
    }

    #[test]
    fn zero_comm_costs_nothing_to_talk() {
        let m = MachineModel::zero_comm(1e-6);
        assert_eq!(m.transfer_cost(1 << 20), 0.0);
        assert!((m.compute_cost(5) - 5e-6).abs() < 1e-15);
    }
}
