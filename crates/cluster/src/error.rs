//! Typed failures of the cluster substrate.
//!
//! The engine distinguishes three failure families: *communication* errors a
//! single rank observes ([`CommError`]), *run-level* failures the engine
//! reports for the whole SPMD execution ([`RunError`]), and genuine Rust
//! panics inside a rank closure, which the engine catches and converts to
//! [`RunError::RankPanicked`] instead of aborting the process.

use std::time::Duration;

/// A communication failure observed by one rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The peer's channel endpoints are gone: it panicked or returned while
    /// messages were still expected.
    Disconnected {
        /// The vanished peer's rank.
        peer: usize,
    },
    /// The reliability layer gave up on one message: every transmission
    /// attempt (original plus retries, bounded by
    /// [`crate::FaultPlan::max_retries`]) was dropped by the fault plan.
    RetransmitExhausted {
        /// The unreachable peer's rank.
        rank: usize,
        /// Tag of the undeliverable message.
        tag: i64,
        /// Transmission attempts made before giving up.
        attempts: u32,
    },
    /// The engine watchdog aborted the run (deadlock or wall timeout) while
    /// this rank was blocked.
    Aborted,
    /// The TCP transport lost its socket to the named rank mid-run: the
    /// peer's process died, closed the connection, or the connection was
    /// reset. The socket-level analogue of [`CommError::Disconnected`].
    PeerDisconnected {
        /// Rank whose socket went away.
        rank: usize,
    },
    /// The TCP transport failed outside an established link: rendezvous,
    /// mesh handshake, or a malformed wire frame. `detail` carries the
    /// stage and the underlying error text.
    Transport {
        /// Human-readable description of the failing stage.
        detail: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Disconnected { peer } => {
                write!(
                    f,
                    "peer rank {peer} disconnected (panicked or exited early)"
                )
            }
            CommError::RetransmitExhausted {
                rank,
                tag,
                attempts,
            } => {
                write!(
                    f,
                    "message to rank {rank} (tag {tag}) undeliverable after {attempts} attempts"
                )
            }
            CommError::Aborted => write!(f, "run aborted by the engine watchdog"),
            CommError::PeerDisconnected { rank } => {
                write!(f, "peer rank {rank} disconnected (tcp socket closed)")
            }
            CommError::Transport { detail } => write!(f, "transport failure: {detail}"),
        }
    }
}

impl std::error::Error for CommError {}

/// A failed cluster run. Every variant names the ranks involved so failures
/// surface with enough context to reproduce and debug them.
#[derive(Clone, Debug)]
pub enum RunError {
    /// A rank closure panicked. The payload is the stringified panic
    /// message; peers that consequently observed disconnected channels are
    /// folded into this primary cause.
    RankPanicked {
        /// The panicked rank.
        rank: usize,
        /// Stringified panic message.
        payload: String,
    },
    /// Every live rank is blocked in a receive and no message is in flight:
    /// the communication schedule is cyclic. `waiting_on` lists
    /// `(rank, from, tag)` for each blocked rank.
    Deadlock {
        /// Every blocked rank.
        blocked_ranks: Vec<usize>,
        /// `(rank, from, tag)` for each blocked receive.
        waiting_on: Vec<(usize, usize, i64)>,
    },
    /// The run exceeded the wall-clock cap ([`crate::EngineOptions::wall_timeout`]).
    WallTimeout {
        /// Wall-clock time elapsed when the cap fired.
        elapsed: Duration,
        /// Ranks that had not finished.
        unfinished: Vec<usize>,
    },
    /// A rank reported a communication error that was not caused by a peer
    /// panic (e.g. the reliability layer exhausted its retries).
    Comm {
        /// The rank that observed the error.
        rank: usize,
        /// The communication error itself.
        error: CommError,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::RankPanicked { rank, payload } => {
                write!(f, "rank {rank} panicked: {payload}")
            }
            RunError::Deadlock {
                blocked_ranks,
                waiting_on,
            } => {
                write!(f, "deadlock: ranks {blocked_ranks:?} are all blocked (")?;
                for (i, (rank, from, tag)) in waiting_on.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "rank {rank} waits on rank {from} tag {tag}")?;
                }
                write!(f, ") with no message in flight")
            }
            RunError::WallTimeout {
                elapsed,
                unfinished,
            } => write!(
                f,
                "run exceeded the wall-clock cap after {:.3} s; unfinished ranks: {unfinished:?}",
                elapsed.as_secs_f64()
            ),
            RunError::Comm { rank, error } => write!(f, "rank {rank}: {error}"),
        }
    }
}

impl std::error::Error for RunError {}

impl RunError {
    /// The ranks directly implicated in the failure.
    pub fn ranks(&self) -> Vec<usize> {
        match self {
            RunError::RankPanicked { rank, .. } | RunError::Comm { rank, .. } => vec![*rank],
            RunError::Deadlock { blocked_ranks, .. } => blocked_ranks.clone(),
            RunError::WallTimeout { unfinished, .. } => unfinished.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_rank_context() {
        let e = RunError::RankPanicked {
            rank: 3,
            payload: "boom".into(),
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("boom"));
        assert_eq!(e.ranks(), vec![3]);

        let d = RunError::Deadlock {
            blocked_ranks: vec![0, 1],
            waiting_on: vec![(0, 1, 7), (1, 0, 2)],
        };
        let s = d.to_string();
        assert!(s.contains("rank 0 waits on rank 1 tag 7"), "{s}");
        assert!(s.contains("rank 1 waits on rank 0 tag 2"), "{s}");
        assert_eq!(d.ranks(), vec![0, 1]);

        let c = RunError::Comm {
            rank: 2,
            error: CommError::RetransmitExhausted {
                rank: 5,
                tag: 7,
                attempts: 33,
            },
        };
        assert!(c.to_string().contains("rank 2"));
        assert!(c.to_string().contains("rank 5"));
        assert!(c.to_string().contains("tag 7"));
        assert!(c.to_string().contains("33 attempts"));
    }

    #[test]
    fn tcp_errors_name_the_rank() {
        let e = RunError::Comm {
            rank: 0,
            error: CommError::PeerDisconnected { rank: 1 },
        };
        let s = e.to_string();
        assert!(s.contains("rank 0"), "{s}");
        assert!(s.contains("peer rank 1 disconnected"), "{s}");

        let t = CommError::Transport {
            detail: "rendezvous: connection refused".into(),
        };
        assert!(t.to_string().contains("rendezvous"), "{t}");
    }
}
