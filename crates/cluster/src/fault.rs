//! Deterministic, seeded fault injection for the cluster substrate.
//!
//! A [`FaultPlan`] describes an imperfect interconnect and unreliable nodes:
//! per-link message drops, duplicates, reorders and extra delays, plus
//! per-rank crashes and stalls triggered at virtual times. Every decision is
//! a pure hash of `(seed, link, sequence number, attempt)`, so a faulty run
//! is exactly as deterministic as a fault-free one — two executions with the
//! same plan produce bit-identical data and virtual clocks.
//!
//! Faults are injected *between* [`crate::Comm::send_tagged`] and the
//! channel. The engine's reliability sublayer (sequence numbers, duplicate
//! suppression, re-sequencing, and virtual-clock-charged retransmission with
//! exponential backoff) guarantees that lossy runs still complete with data
//! bitwise identical to fault-free runs; only the virtual clocks grow by the
//! retransmission costs, which are reported in
//! [`crate::CommStats::retransmissions`] / [`crate::CommStats::retrans_time`].

/// A rank crash injected at a virtual time: the rank panics the first time
/// its local clock reaches `at`, exercising the engine's panic containment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankCrash {
    /// The rank that crashes.
    pub rank: usize,
    /// Virtual time (seconds) at or after which the rank panics.
    pub at: f64,
}

/// A rank stall injected at a virtual time: the first time the rank's clock
/// reaches `at`, its clock jumps forward by `duration` (a GC pause, an OS
/// hiccup, a slow NIC — anything that delays one node without killing it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankStall {
    /// The rank that stalls.
    pub rank: usize,
    /// Virtual time (seconds) at or after which the stall happens.
    pub at: f64,
    /// Virtual seconds the rank loses.
    pub duration: f64,
}

/// A deterministic fault-injection plan for one cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-message fault decision.
    pub seed: u64,
    /// Probability a transmission attempt is dropped (retried by the
    /// reliability layer, up to `max_retries`).
    pub drop_rate: f64,
    /// Probability a message is delivered twice (the duplicate carries the
    /// same sequence number and is suppressed by the receiver).
    pub duplicate_rate: f64,
    /// Probability a message is held back and overtaken by the next message
    /// on the same link (the receiver re-sequences by sequence number).
    pub reorder_rate: f64,
    /// Probability a message suffers `extra_delay` additional wire time.
    pub delay_rate: f64,
    /// Extra virtual delay (seconds) for delayed messages.
    pub extra_delay: f64,
    /// Base retransmission timeout (virtual seconds); attempt `k` backs off
    /// by `rto · 2^(k-1)`.
    pub rto: f64,
    /// Maximum retransmission attempts before the link is declared
    /// unreachable.
    pub max_retries: u32,
    /// Ranks that crash (panic) at a virtual time.
    pub crashes: Vec<RankCrash>,
    /// Ranks that stall (lose virtual time) at a virtual time.
    pub stalls: Vec<RankStall>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            delay_rate: 0.0,
            extra_delay: 0.0,
            rto: 1e-3,
            max_retries: 64,
            crashes: Vec::new(),
            stalls: Vec::new(),
        }
    }
}

// Distinct decision streams so e.g. the drop and duplicate decisions for the
// same message are independent hashes.
const STREAM_DROP: u64 = 0x01;
const STREAM_DUP: u64 = 0x02;
const STREAM_REORDER: u64 = 0x03;
const STREAM_DELAY: u64 = 0x04;

/// splitmix64 finalizer: a high-quality 64-bit mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A lossy-link plan: messages are dropped with `drop_rate`, everything
    /// else is perfect. The reliability layer makes such runs complete with
    /// data identical to fault-free runs.
    pub fn lossy(seed: u64, drop_rate: f64) -> Self {
        FaultPlan {
            seed,
            drop_rate,
            ..FaultPlan::default()
        }
    }

    /// A chaos plan: drops, duplicates, reorders and delays all at `rate`.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            drop_rate: rate,
            duplicate_rate: rate,
            reorder_rate: rate,
            delay_rate: rate,
            extra_delay: 5e-4,
            ..FaultPlan::default()
        }
    }

    /// Add a rank crash at a virtual time.
    pub fn with_crash(mut self, rank: usize, at: f64) -> Self {
        self.crashes.push(RankCrash { rank, at });
        self
    }

    /// Add a rank stall at a virtual time.
    pub fn with_stall(mut self, rank: usize, at: f64, duration: f64) -> Self {
        self.stalls.push(RankStall { rank, at, duration });
        self
    }

    /// Uniform pseudo-random value in `[0, 1)` for one decision.
    fn chance(&self, stream: u64, from: usize, to: usize, seq: u64, attempt: u32) -> f64 {
        let link = (from as u64) << 32 | to as u64;
        let mut h = splitmix64(self.seed ^ splitmix64(stream));
        h = splitmix64(h ^ link);
        h = splitmix64(h ^ seq);
        h = splitmix64(h ^ attempt as u64);
        // 53 high bits → uniform double in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Is transmission `attempt` of message `seq` on `from → to` dropped?
    pub fn dropped(&self, from: usize, to: usize, seq: u64, attempt: u32) -> bool {
        self.drop_rate > 0.0 && self.chance(STREAM_DROP, from, to, seq, attempt) < self.drop_rate
    }

    /// Is message `seq` on `from → to` delivered twice?
    pub fn duplicated(&self, from: usize, to: usize, seq: u64) -> bool {
        self.duplicate_rate > 0.0 && self.chance(STREAM_DUP, from, to, seq, 0) < self.duplicate_rate
    }

    /// Is message `seq` on `from → to` overtaken by its successor?
    pub fn reordered(&self, from: usize, to: usize, seq: u64) -> bool {
        self.reorder_rate > 0.0 && self.chance(STREAM_REORDER, from, to, seq, 0) < self.reorder_rate
    }

    /// Extra wire delay for message `seq` on `from → to`, if any.
    pub fn delayed(&self, from: usize, to: usize, seq: u64) -> Option<f64> {
        (self.delay_rate > 0.0 && self.chance(STREAM_DELAY, from, to, seq, 0) < self.delay_rate)
            .then_some(self.extra_delay)
    }

    /// Backoff charged to the sender's virtual clock before retransmission
    /// attempt `attempt` (1-based): exponential with base [`FaultPlan::rto`].
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.rto * f64::powi(2.0, attempt.min(16) as i32 - 1)
    }

    /// The virtual time at which `rank` crashes, if any.
    pub fn crash_time(&self, rank: usize) -> Option<f64> {
        self.crashes.iter().find(|c| c.rank == rank).map(|c| c.at)
    }

    /// The stall configured for `rank`, if any.
    pub fn stall_of(&self, rank: usize) -> Option<RankStall> {
        self.stalls.iter().find(|s| s.rank == rank).copied()
    }

    /// Whether the plan injects any per-message link fault (drop, duplicate,
    /// reorder or delay).
    pub fn perturbs_links(&self) -> bool {
        self.drop_rate > 0.0
            || self.duplicate_rate > 0.0
            || self.reorder_rate > 0.0
            || self.delay_rate > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let p = FaultPlan::chaos(1234, 0.3);
        for seq in 0..200u64 {
            assert_eq!(p.dropped(0, 1, seq, 0), p.dropped(0, 1, seq, 0));
            assert_eq!(p.duplicated(2, 3, seq), p.duplicated(2, 3, seq));
            assert_eq!(p.reordered(2, 3, seq), p.reordered(2, 3, seq));
        }
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let p = FaultPlan::lossy(99, 0.25);
        let n = 20_000;
        let dropped = (0..n).filter(|&s| p.dropped(0, 1, s, 0)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "empirical drop rate {rate}");
    }

    #[test]
    fn streams_are_independent() {
        // A message dropped on attempt 0 is usually not dropped on attempt 1;
        // with independent streams the double-drop rate is ≈ rate².
        let p = FaultPlan::lossy(7, 0.2);
        let n = 20_000;
        let both = (0..n)
            .filter(|&s| p.dropped(0, 1, s, 0) && p.dropped(0, 1, s, 1))
            .count();
        let rate = both as f64 / n as f64;
        assert!((rate - 0.04).abs() < 0.01, "double-drop rate {rate}");
    }

    #[test]
    fn links_get_different_fault_patterns() {
        let p = FaultPlan::lossy(5, 0.5);
        let a: Vec<bool> = (0..64).map(|s| p.dropped(0, 1, s, 0)).collect();
        let b: Vec<bool> = (0..64).map(|s| p.dropped(1, 0, s, 0)).collect();
        assert_ne!(a, b, "link direction must decorrelate faults");
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = FaultPlan::lossy(1, 0.1);
        assert_eq!(p.backoff(1), p.rto);
        assert_eq!(p.backoff(2), 2.0 * p.rto);
        assert_eq!(p.backoff(3), 4.0 * p.rto);
        assert_eq!(p.backoff(16), p.backoff(17), "backoff is capped");
    }

    #[test]
    fn crash_and_stall_lookup() {
        let p = FaultPlan::default()
            .with_crash(2, 0.5)
            .with_stall(1, 0.25, 3.0);
        assert_eq!(p.crash_time(2), Some(0.5));
        assert_eq!(p.crash_time(0), None);
        let s = p.stall_of(1).unwrap();
        assert_eq!((s.at, s.duration), (0.25, 3.0));
        assert!(!p.perturbs_links());
        assert!(FaultPlan::lossy(0, 0.1).perturbs_links());
    }
}
