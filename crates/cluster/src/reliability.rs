//! The transport-generic reliability sublayer: per-link sequence numbers,
//! receiver-side duplicate suppression and re-sequencing, and the
//! sender-side stop-and-wait retransmission schedule.
//!
//! Both engines — the in-process threaded substrate and the TCP socket
//! backend — delegate to this module, so a faulty run produces the same
//! retransmission charges, the same duplicate-suppression counts, and
//! bitwise-identical data regardless of transport. The state here is pure
//! bookkeeping over [`Envelope`] sequence numbers; injecting, pausing, and
//! charging virtual time stay with the engine, which knows its clock and
//! communication scheme.

use crate::comm::Envelope;
use crate::error::CommError;
use crate::fault::FaultPlan;
use crate::model::MachineModel;

/// Verdict of [`LinkSeq::admit`] on an arrived envelope.
#[derive(Debug)]
pub enum Admit {
    /// The envelope is the next in sequence: deliver it now.
    Deliver(Envelope),
    /// A copy of an already-delivered (or already-buffered) envelope:
    /// count it as suppressed and drop it.
    Duplicate,
    /// Arrived ahead of sequence: buffered until its turn comes via
    /// [`LinkSeq::take_ready`].
    Buffered,
}

/// Per-link sequence state for one endpoint: outgoing counters, incoming
/// expectations, and the re-sequencing buffers that restore FIFO order
/// over links that duplicate or reorder.
#[derive(Debug)]
pub struct LinkSeq {
    /// Next sequence number to assign per outgoing link.
    next: Vec<u64>,
    /// Next expected sequence number per incoming link.
    expect: Vec<u64>,
    /// Out-of-order arrivals awaiting re-sequencing, per incoming link.
    resequence: Vec<Vec<Envelope>>,
}

impl LinkSeq {
    /// Fresh state for an endpoint in a world of `size` ranks.
    pub fn new(size: usize) -> LinkSeq {
        LinkSeq {
            next: vec![0; size],
            expect: vec![0; size],
            resequence: (0..size).map(|_| Vec::new()).collect(),
        }
    }

    /// Assign the sequence number for the next send to `to`.
    pub fn assign(&mut self, to: usize) -> u64 {
        let seq = self.next[to];
        self.next[to] += 1;
        seq
    }

    /// If the next expected envelope from `from` is already buffered,
    /// take it (advancing the expectation).
    pub fn take_ready(&mut self, from: usize) -> Option<Envelope> {
        let want = self.expect[from];
        let pos = self.resequence[from].iter().position(|e| e.seq == want)?;
        self.expect[from] += 1;
        Some(self.resequence[from].remove(pos))
    }

    /// Classify an arrival from `from`: deliver in-order envelopes,
    /// suppress duplicates (a seq already delivered or already buffered),
    /// buffer early arrivals.
    pub fn admit(&mut self, from: usize, env: Envelope) -> Admit {
        let want = self.expect[from];
        if env.seq < want || self.resequence[from].iter().any(|e| e.seq == env.seq) {
            return Admit::Duplicate;
        }
        if env.seq == want {
            self.expect[from] += 1;
            return Admit::Deliver(env);
        }
        self.resequence[from].push(env);
        Admit::Buffered
    }

    /// Total envelopes parked in re-sequencing buffers (feeds the
    /// `resequence_depth` gauge).
    pub fn resequence_depth(&self) -> u64 {
        self.resequence.iter().map(|r| r.len() as u64).sum()
    }
}

/// The stop-and-wait ARQ schedule for one message on a lossy link: one
/// virtual-time pause per dropped attempt (exponential backoff plus the
/// repeated injection cost), or [`CommError::Unreachable`] once every
/// attempt up to `max_retries` was dropped.
///
/// Drop decisions are pure hashes of `(seed, from, to, seq, attempt)`, so
/// the schedule — and therefore every engine's clock arithmetic — is
/// identical across transports and runs.
pub fn retransmit_pauses(
    fault: &FaultPlan,
    model: &MachineModel,
    from: usize,
    to: usize,
    seq: u64,
    nominal_bytes: usize,
) -> Result<Vec<f64>, CommError> {
    let mut pauses = Vec::new();
    let mut attempt: u32 = 0;
    while fault.dropped(from, to, seq, attempt) {
        attempt += 1;
        if attempt > fault.max_retries {
            return Err(CommError::Unreachable {
                peer: to,
                attempts: attempt,
            });
        }
        pauses.push(fault.backoff(attempt) + model.send_cost(nominal_bytes));
    }
    Ok(pauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seq: u64) -> Envelope {
        Envelope {
            payload: vec![seq as f64],
            tag: 0,
            ready_at: 0.0,
            seq,
            bytes: 8,
        }
    }

    #[test]
    fn in_order_stream_delivers_directly() {
        let mut links = LinkSeq::new(2);
        for seq in 0..5 {
            assert_eq!(links.assign(1), seq);
            match links.admit(0, env(seq)) {
                Admit::Deliver(e) => assert_eq!(e.seq, seq),
                other => panic!("expected Deliver, got {other:?}"),
            }
        }
        assert_eq!(links.resequence_depth(), 0);
    }

    #[test]
    fn reordered_arrivals_are_buffered_then_released() {
        let mut links = LinkSeq::new(2);
        assert!(matches!(links.admit(0, env(1)), Admit::Buffered));
        assert_eq!(links.resequence_depth(), 1);
        assert!(links.take_ready(0).is_none());
        match links.admit(0, env(0)) {
            Admit::Deliver(e) => assert_eq!(e.seq, 0),
            other => panic!("expected Deliver, got {other:?}"),
        }
        let released = links.take_ready(0).expect("seq 1 must be ready");
        assert_eq!(released.seq, 1);
        assert_eq!(links.resequence_depth(), 0);
    }

    #[test]
    fn duplicates_are_suppressed_delivered_or_buffered() {
        let mut links = LinkSeq::new(2);
        assert!(matches!(links.admit(0, env(0)), Admit::Deliver(_)));
        // A copy of a delivered envelope.
        assert!(matches!(links.admit(0, env(0)), Admit::Duplicate));
        // A copy of a buffered envelope.
        assert!(matches!(links.admit(0, env(2)), Admit::Buffered));
        assert!(matches!(links.admit(0, env(2)), Admit::Duplicate));
    }

    #[test]
    fn retransmit_schedule_matches_the_fault_plan() {
        let fault = FaultPlan::lossy(7, 0.5);
        let model = MachineModel::fast_ethernet_p3();
        // Find a message the plan drops at least once, then check each
        // pause equals backoff + injection cost.
        let mut checked = false;
        for seq in 0..64 {
            let pauses = retransmit_pauses(&fault, &model, 0, 1, seq, 128).unwrap();
            for (i, pause) in pauses.iter().enumerate() {
                let attempt = (i + 1) as u32;
                assert_eq!(*pause, fault.backoff(attempt) + model.send_cost(128));
                checked = true;
            }
        }
        assert!(checked, "seed 7 at 50% must drop something in 64 messages");

        let total = FaultPlan {
            max_retries: 3,
            ..FaultPlan::lossy(1, 1.0)
        };
        match retransmit_pauses(&total, &model, 0, 1, 0, 8) {
            Err(CommError::Unreachable { peer: 1, attempts }) => assert_eq!(attempts, 4),
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }
}
