//! The transport-generic reliability sublayer: per-link sequence numbers,
//! receiver-side duplicate suppression and re-sequencing, the sender-side
//! stop-and-wait retransmission schedule, and the bounded per-link replay
//! log that crash recovery replays from (see `DESIGN.md` §11).
//!
//! Both engines — the in-process threaded substrate and the TCP socket
//! backend — delegate to this module, so a faulty run produces the same
//! retransmission charges, the same duplicate-suppression counts, and
//! bitwise-identical data regardless of transport. The state here is pure
//! bookkeeping over [`Envelope`] sequence numbers; injecting, pausing, and
//! charging virtual time stay with the engine, which knows its clock and
//! communication scheme.

use crate::comm::Envelope;
use crate::error::CommError;
use crate::fault::FaultPlan;
use crate::model::MachineModel;
use std::collections::VecDeque;

/// Verdict of [`LinkSeq::admit`] on an arrived envelope.
#[derive(Debug)]
pub enum Admit {
    /// The envelope is the next in sequence: deliver it now.
    Deliver(Envelope),
    /// A copy of an already-delivered (or already-buffered) envelope:
    /// count it as suppressed and drop it.
    Duplicate,
    /// Arrived ahead of sequence: buffered until its turn comes via
    /// [`LinkSeq::take_ready`].
    Buffered,
}

/// Per-link sequence state for one endpoint: outgoing counters, incoming
/// expectations, and the re-sequencing buffers that restore FIFO order
/// over links that duplicate or reorder.
#[derive(Debug)]
pub struct LinkSeq {
    /// Next sequence number to assign per outgoing link.
    next: Vec<u64>,
    /// Next expected sequence number per incoming link.
    expect: Vec<u64>,
    /// Out-of-order arrivals awaiting re-sequencing, per incoming link.
    resequence: Vec<Vec<Envelope>>,
}

impl LinkSeq {
    /// Fresh state for an endpoint in a world of `size` ranks.
    pub fn new(size: usize) -> LinkSeq {
        LinkSeq {
            next: vec![0; size],
            expect: vec![0; size],
            resequence: (0..size).map(|_| Vec::new()).collect(),
        }
    }

    /// Assign the sequence number for the next send to `to`.
    pub fn assign(&mut self, to: usize) -> u64 {
        let seq = self.next[to];
        self.next[to] += 1;
        seq
    }

    /// If the next expected envelope from `from` is already buffered,
    /// take it (advancing the expectation).
    pub fn take_ready(&mut self, from: usize) -> Option<Envelope> {
        let want = self.expect[from];
        let pos = self.resequence[from].iter().position(|e| e.seq == want)?;
        self.expect[from] += 1;
        Some(self.resequence[from].remove(pos))
    }

    /// Classify an arrival from `from`: deliver in-order envelopes,
    /// suppress duplicates (a seq already delivered or already buffered),
    /// buffer early arrivals.
    pub fn admit(&mut self, from: usize, env: Envelope) -> Admit {
        let want = self.expect[from];
        if env.seq < want || self.resequence[from].iter().any(|e| e.seq == env.seq) {
            return Admit::Duplicate;
        }
        if env.seq == want {
            self.expect[from] += 1;
            return Admit::Deliver(env);
        }
        self.resequence[from].push(env);
        Admit::Buffered
    }

    /// Total envelopes parked in re-sequencing buffers (feeds the
    /// `resequence_depth` gauge).
    pub fn resequence_depth(&self) -> u64 {
        self.resequence.iter().map(|r| r.len() as u64).sum()
    }

    /// Snapshot of the outgoing (`next`) sequence frontier per link.
    pub fn next_frontier(&self) -> Vec<u64> {
        self.next.clone()
    }

    /// Snapshot of the incoming (`expect`) sequence frontier per link.
    pub fn expect_frontier(&self) -> Vec<u64> {
        self.expect.clone()
    }

    /// The next sequence number expected from `from`.
    pub fn expect_of(&self, from: usize) -> u64 {
        self.expect[from]
    }

    /// Rewind both frontiers to a checkpoint's snapshot. The re-sequencing
    /// buffers are deliberately left intact: envelopes parked there at crash
    /// time were consumed from the transport and would otherwise be lost,
    /// and their sequence numbers all lie at or past the crash-time `expect`
    /// frontier, so they are exactly the not-yet-delivered tail.
    pub fn rewind(&mut self, next: &[u64], expect: &[u64]) {
        self.next.copy_from_slice(next);
        self.expect.copy_from_slice(expect);
    }

    /// Re-inject a replayed envelope from `from` into the re-sequencing
    /// buffer (recovery only). Duplicates of an already-buffered sequence
    /// number are ignored.
    pub fn reinject(&mut self, from: usize, env: Envelope) {
        if env.seq >= self.expect[from] && !self.resequence[from].iter().any(|e| e.seq == env.seq) {
            self.resequence[from].push(env);
        }
    }
}

/// A bounded sender-side replay log for one directed link: every envelope
/// pushed to the transport is recorded here (one entry per sequence number,
/// in order) and retained until the receiver's next checkpoint acknowledges
/// it — at which point [`ReplayLog::trim_below`] drops the prefix. Crash
/// recovery replays a contiguous range of retained envelopes to rebuild the
/// receiver's lost in-flight window.
#[derive(Debug, Default)]
pub struct ReplayLog {
    /// Smallest retained sequence number (entries are contiguous from here).
    base: u64,
    /// Retained envelopes: `items[i].seq == base + i`.
    items: VecDeque<Envelope>,
}

impl ReplayLog {
    /// An empty log.
    pub fn new() -> Self {
        ReplayLog::default()
    }

    /// One past the highest recorded sequence number.
    pub fn high(&self) -> u64 {
        self.base + self.items.len() as u64
    }

    /// Record the envelope for the next sequence number. Re-records of an
    /// already-logged (or already-trimmed) sequence number are ignored, so
    /// recovery re-execution over the rewound window is idempotent.
    pub fn record(&mut self, env: Envelope) {
        if env.seq == self.high() {
            self.items.push_back(env);
        }
    }

    /// Drop every retained envelope with `seq < seq` (the receiver's
    /// checkpoint acknowledged them).
    pub fn trim_below(&mut self, seq: u64) {
        while self.base < seq {
            if self.items.pop_front().is_none() {
                self.base = seq;
                return;
            }
            self.base += 1;
        }
    }

    /// Clones of the retained envelopes with `lo <= seq < hi` (clamped to
    /// the retained window).
    pub fn range(&self, lo: u64, hi: u64) -> Vec<Envelope> {
        self.items
            .iter()
            .filter(|e| e.seq >= lo && e.seq < hi)
            .cloned()
            .collect()
    }

    /// Clones of every retained envelope with `seq >= lo`.
    pub fn replay_from(&self, lo: u64) -> Vec<Envelope> {
        self.range(lo, u64::MAX)
    }

    /// Smallest retained sequence number (for persisting the log).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The retained envelopes in sequence order (for persisting the log).
    pub fn items(&self) -> impl Iterator<Item = &Envelope> {
        self.items.iter()
    }

    /// Rebuild a log from persisted parts: `items[i].seq` must equal
    /// `base + i` (checked), the invariant [`ReplayLog::record`] maintains.
    pub fn restore(base: u64, items: Vec<Envelope>) -> ReplayLog {
        for (i, env) in items.iter().enumerate() {
            assert_eq!(env.seq, base + i as u64, "replay log restore out of order");
        }
        ReplayLog {
            base,
            items: items.into(),
        }
    }

    /// Number of retained envelopes (feeds the `replay_log_depth` gauge).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the log retains nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The stop-and-wait ARQ schedule for one message on a lossy link: one
/// virtual-time pause per dropped attempt (exponential backoff plus the
/// repeated injection cost), or [`CommError::RetransmitExhausted`] once
/// every attempt up to `max_retries` was dropped — the loop is bounded, it
/// never retries forever.
///
/// Drop decisions are pure hashes of `(seed, from, to, seq, attempt)`, so
/// the schedule — and therefore every engine's clock arithmetic — is
/// identical across transports and runs.
pub fn retransmit_pauses(
    fault: &FaultPlan,
    model: &MachineModel,
    from: usize,
    to: usize,
    tag: i64,
    seq: u64,
    nominal_bytes: usize,
) -> Result<Vec<f64>, CommError> {
    let mut pauses = Vec::new();
    let mut attempt: u32 = 0;
    while fault.dropped(from, to, seq, attempt) {
        attempt += 1;
        if attempt > fault.max_retries {
            return Err(CommError::RetransmitExhausted {
                rank: to,
                tag,
                attempts: attempt,
            });
        }
        pauses.push(fault.backoff(attempt) + model.send_cost(nominal_bytes));
    }
    Ok(pauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seq: u64) -> Envelope {
        Envelope {
            payload: vec![seq as f64],
            tag: 0,
            ready_at: 0.0,
            seq,
            bytes: 8,
        }
    }

    #[test]
    fn in_order_stream_delivers_directly() {
        let mut links = LinkSeq::new(2);
        for seq in 0..5 {
            assert_eq!(links.assign(1), seq);
            match links.admit(0, env(seq)) {
                Admit::Deliver(e) => assert_eq!(e.seq, seq),
                other => panic!("expected Deliver, got {other:?}"),
            }
        }
        assert_eq!(links.resequence_depth(), 0);
    }

    #[test]
    fn reordered_arrivals_are_buffered_then_released() {
        let mut links = LinkSeq::new(2);
        assert!(matches!(links.admit(0, env(1)), Admit::Buffered));
        assert_eq!(links.resequence_depth(), 1);
        assert!(links.take_ready(0).is_none());
        match links.admit(0, env(0)) {
            Admit::Deliver(e) => assert_eq!(e.seq, 0),
            other => panic!("expected Deliver, got {other:?}"),
        }
        let released = links.take_ready(0).expect("seq 1 must be ready");
        assert_eq!(released.seq, 1);
        assert_eq!(links.resequence_depth(), 0);
    }

    #[test]
    fn duplicates_are_suppressed_delivered_or_buffered() {
        let mut links = LinkSeq::new(2);
        assert!(matches!(links.admit(0, env(0)), Admit::Deliver(_)));
        // A copy of a delivered envelope.
        assert!(matches!(links.admit(0, env(0)), Admit::Duplicate));
        // A copy of a buffered envelope.
        assert!(matches!(links.admit(0, env(2)), Admit::Buffered));
        assert!(matches!(links.admit(0, env(2)), Admit::Duplicate));
    }

    #[test]
    fn retransmit_schedule_matches_the_fault_plan() {
        let fault = FaultPlan::lossy(7, 0.5);
        let model = MachineModel::fast_ethernet_p3();
        // Find a message the plan drops at least once, then check each
        // pause equals backoff + injection cost.
        let mut checked = false;
        for seq in 0..64 {
            let pauses = retransmit_pauses(&fault, &model, 0, 1, 0, seq, 128).unwrap();
            for (i, pause) in pauses.iter().enumerate() {
                let attempt = (i + 1) as u32;
                assert_eq!(*pause, fault.backoff(attempt) + model.send_cost(128));
                checked = true;
            }
        }
        assert!(checked, "seed 7 at 50% must drop something in 64 messages");
    }

    #[test]
    fn retransmission_gives_up_with_a_typed_error() {
        // A 100% drop rate exhausts the bounded retry budget: the loop must
        // terminate with RetransmitExhausted naming rank, tag and attempts —
        // never retry forever.
        let model = MachineModel::fast_ethernet_p3();
        let total = FaultPlan {
            max_retries: 3,
            ..FaultPlan::lossy(1, 1.0)
        };
        match retransmit_pauses(&total, &model, 0, 1, 42, 0, 8) {
            Err(CommError::RetransmitExhausted {
                rank: 1,
                tag: 42,
                attempts,
            }) => assert_eq!(attempts, 4),
            other => panic!("expected RetransmitExhausted, got {other:?}"),
        }
    }

    #[test]
    fn replay_log_records_trims_and_replays() {
        let mut log = ReplayLog::new();
        assert!(log.is_empty());
        for seq in 0..6 {
            log.record(env(seq));
        }
        // Re-records of already-logged seqs are ignored (recovery
        // re-execution is idempotent).
        log.record(env(3));
        assert_eq!(log.len(), 6);
        assert_eq!(log.high(), 6);

        // A checkpoint ack trims the prefix.
        log.trim_below(2);
        assert_eq!(log.len(), 4);
        log.record(env(1)); // below base: ignored
        assert_eq!(log.len(), 4);

        let replayed = log.range(3, 5);
        assert_eq!(
            replayed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
        let tail = log.replay_from(4);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);

        // Trimming past the end empties the log but keeps it consistent.
        log.trim_below(100);
        assert!(log.is_empty());
        assert_eq!(log.high(), 100);
        log.record(env(100));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn linkseq_rewind_keeps_resequence_and_reinjects() {
        let mut links = LinkSeq::new(2);
        let next0 = links.next_frontier();
        let expect0 = links.expect_frontier();
        // Deliver 0, buffer 2 (out of order).
        assert!(matches!(links.admit(0, env(0)), Admit::Deliver(_)));
        assert!(matches!(links.admit(0, env(2)), Admit::Buffered));
        assert_eq!(links.assign(1), 0);
        assert_eq!(links.expect_of(0), 1);

        // Rewind to the initial frontiers: seq 2 stays parked.
        links.rewind(&next0, &expect0);
        assert_eq!(links.expect_of(0), 0);
        assert_eq!(links.resequence_depth(), 1);

        // Replay re-injects the lost window; duplicates are ignored.
        links.reinject(0, env(0));
        links.reinject(0, env(2));
        assert_eq!(links.resequence_depth(), 2);
        let e = links.take_ready(0).expect("seq 0 must be ready");
        assert_eq!(e.seq, 0);
        assert!(links.take_ready(0).is_none(), "seq 1 was never re-injected");
    }
}
