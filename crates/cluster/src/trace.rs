#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
//! Execution traces: per-process event logs in virtual time, with
//! utilization analysis and an ASCII Gantt rendering.
//!
//! Tracing is opt-in (see [`crate::threaded::EngineOptions`]); when enabled,
//! every compute phase, send and receive is recorded with its virtual
//! timestamps, which makes the wavefront structure of tiled executions
//! directly visible.

/// One traced event on a process's virtual timeline.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A computation phase.
    Compute {
        /// Virtual time the phase began.
        start: f64,
        /// Virtual time the phase ended.
        end: f64,
        /// Loop iterations executed in the phase.
        iters: u64,
    },
    /// A message injection (instantaneous at `at` for the CPU; the wire
    /// time is modelled on the receiver side).
    Send {
        /// Virtual injection time.
        at: f64,
        /// Destination rank.
        to: usize,
        /// Nominal message size.
        bytes: usize,
        /// Application tag; pairs the send with the matching receive so
        /// cross-rank dependence edges can be reconstructed from traces.
        tag: i64,
    },
    /// A blocking receive: `start` when the CPU began waiting, `ready` when
    /// the message arrived, `end` after the receive overhead.
    Recv {
        /// Virtual time the CPU began waiting.
        start: f64,
        /// Virtual time the message arrived.
        ready: f64,
        /// Virtual time after the receive overhead.
        end: f64,
        /// Source rank.
        from: usize,
        /// Application tag matching the sender's [`Event::Send`].
        tag: i64,
    },
}

impl Event {
    /// The event's end time on the process timeline.
    pub fn end_time(&self) -> f64 {
        match self {
            Event::Compute { end, .. } => *end,
            Event::Send { at, .. } => *at,
            Event::Recv { end, .. } => *end,
        }
    }
}

/// A per-process event log.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The events, in increasing virtual time.
    pub events: Vec<Event>,
}

impl Trace {
    /// Total time spent computing.
    pub fn compute_time(&self) -> f64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Compute { start, end, .. } => end - start,
                _ => 0.0,
            })
            .sum()
    }

    /// Total time spent blocked waiting for messages.
    pub fn wait_time(&self) -> f64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Recv { start, ready, .. } => (ready - start).max(0.0),
                _ => 0.0,
            })
            .sum()
    }

    /// Fraction of the horizon spent computing.
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        self.compute_time() / horizon
    }
}

/// Render per-rank timelines as an ASCII Gantt chart of `width` columns:
/// `#` compute, `.` waiting, `s`/`r` message endpoints, space idle.
///
/// Painting is two-pass — spans first (`#`, `.`), then message-endpoint
/// markers (`s`, `r`) on top — so the output is independent of event order
/// within a trace and markers are never hidden under an adjacent compute
/// span.
pub fn render_gantt(traces: &[Trace], width: usize) -> String {
    let horizon = traces
        .iter()
        .flat_map(|t| t.events.iter().map(Event::end_time))
        .fold(0.0f64, f64::max);
    if horizon <= 0.0 || width == 0 {
        return String::new();
    }
    let col = |t: f64| -> usize {
        (((t / horizon) * width as f64) as usize).min(width.saturating_sub(1))
    };
    let mut out = String::new();
    for (rank, trace) in traces.iter().enumerate() {
        let mut row = vec![' '; width];
        for e in &trace.events {
            match e {
                Event::Compute { start, end, .. } => {
                    for c in col(*start)..=col(*end) {
                        row[c] = '#';
                    }
                }
                Event::Recv { start, ready, .. } => {
                    for c in col(*start)..col(*ready).max(col(*start)) {
                        if row[c] == ' ' {
                            row[c] = '.';
                        }
                    }
                }
                Event::Send { .. } => {}
            }
        }
        for e in &trace.events {
            match e {
                Event::Recv { end, .. } => row[col(*end)] = 'r',
                Event::Send { at, .. } => row[col(*at)] = 's',
                Event::Compute { .. } => {}
            }
        }
        out.push_str(&format!("rank {rank:>3} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!("horizon: {horizon:.6} s\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            events: vec![
                Event::Recv {
                    start: 0.0,
                    ready: 2.0,
                    end: 2.5,
                    from: 1,
                    tag: 7,
                },
                Event::Compute {
                    start: 2.5,
                    end: 7.5,
                    iters: 50,
                },
                Event::Send {
                    at: 8.0,
                    to: 1,
                    bytes: 64,
                    tag: 8,
                },
            ],
        }
    }

    #[test]
    fn compute_and_wait_accounting() {
        let t = sample();
        assert!((t.compute_time() - 5.0).abs() < 1e-12);
        assert!((t.wait_time() - 2.0).abs() < 1e-12);
        assert!((t.utilization(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(t.utilization(0.0), 0.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let traces = vec![sample(), Trace::default()];
        let g = render_gantt(&traces, 40);
        assert!(g.contains("rank   0"));
        assert!(g.contains('#'));
        assert!(g.contains('s'));
        assert!(g.contains("horizon"));
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn empty_traces_render_empty() {
        assert_eq!(render_gantt(&[], 40), "");
        assert_eq!(render_gantt(&[Trace::default()], 0), "");
    }

    #[test]
    fn gantt_golden_render() {
        // Pinned output: any change to the renderer must update this test
        // deliberately.
        let traces = vec![
            Trace {
                events: vec![
                    Event::Compute {
                        start: 0.0,
                        end: 5.0,
                        iters: 10,
                    },
                    Event::Send {
                        at: 5.0,
                        to: 1,
                        bytes: 8,
                        tag: 1,
                    },
                ],
            },
            Trace {
                events: vec![
                    Event::Recv {
                        start: 0.0,
                        ready: 5.0,
                        end: 6.0,
                        from: 0,
                        tag: 1,
                    },
                    Event::Compute {
                        start: 6.0,
                        end: 10.0,
                        iters: 8,
                    },
                ],
            },
        ];
        let expected = "rank   0 |#####s    |\n\
                        rank   1 |..... r###|\n\
                        horizon: 10.000000 s\n";
        assert_eq!(render_gantt(&traces, 10), expected);
    }

    #[test]
    fn zero_duration_events_render_one_cell() {
        // A zero-duration compute (start == end) must still paint exactly one
        // column, not disappear or panic.
        let traces = vec![Trace {
            events: vec![
                Event::Compute {
                    start: 2.0,
                    end: 2.0,
                    iters: 0,
                },
                Event::Compute {
                    start: 0.0,
                    end: 4.0,
                    iters: 4,
                },
            ],
        }];
        let g = render_gantt(&traces, 8);
        let row = g.lines().next().unwrap();
        assert_eq!(row.matches('#').count(), 8, "{g}");
        // Degenerate recv where the message was already waiting: no '.' cells.
        let instant = vec![Trace {
            events: vec![Event::Recv {
                start: 3.0,
                ready: 3.0,
                end: 3.5,
                from: 0,
                tag: 0,
            }],
        }];
        let g = render_gantt(&instant, 8);
        let row = g.lines().next().unwrap();
        assert!(!row.contains('.'), "{g}");
        assert!(row.contains('r'), "{g}");
    }

    #[test]
    fn out_of_order_events_render_identically() {
        // The renderer and the accounting helpers must not depend on events
        // being sorted by time (reliability-layer resequencing can log
        // receives out of order).
        let sorted = sample();
        let mut shuffled = sorted.clone();
        shuffled.events.reverse();
        assert_eq!(
            render_gantt(std::slice::from_ref(&sorted), 32),
            render_gantt(std::slice::from_ref(&shuffled), 32)
        );
        assert!((sorted.compute_time() - shuffled.compute_time()).abs() < 1e-12);
        assert!((sorted.wait_time() - shuffled.wait_time()).abs() < 1e-12);
    }

    #[test]
    fn event_end_times() {
        let t = sample();
        let ends: Vec<f64> = t.events.iter().map(Event::end_time).collect();
        assert_eq!(ends, vec![2.5, 7.5, 8.0]);
    }
}
