#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
//! Execution traces: per-process event logs in virtual time, with
//! utilization analysis and an ASCII Gantt rendering.
//!
//! Tracing is opt-in (see [`crate::threaded::EngineOptions`]); when enabled,
//! every compute phase, send and receive is recorded with its virtual
//! timestamps, which makes the wavefront structure of tiled executions
//! directly visible.

/// One traced event on a process's virtual timeline.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A computation phase.
    Compute { start: f64, end: f64, iters: u64 },
    /// A message injection (instantaneous at `at` for the CPU; the wire
    /// time is modelled on the receiver side).
    Send { at: f64, to: usize, bytes: usize },
    /// A blocking receive: `start` when the CPU began waiting, `ready` when
    /// the message arrived, `end` after the receive overhead.
    Recv {
        start: f64,
        ready: f64,
        end: f64,
        from: usize,
    },
}

impl Event {
    /// The event's end time on the process timeline.
    pub fn end_time(&self) -> f64 {
        match self {
            Event::Compute { end, .. } => *end,
            Event::Send { at, .. } => *at,
            Event::Recv { end, .. } => *end,
        }
    }
}

/// A per-process event log.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub events: Vec<Event>,
}

impl Trace {
    /// Total time spent computing.
    pub fn compute_time(&self) -> f64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Compute { start, end, .. } => end - start,
                _ => 0.0,
            })
            .sum()
    }

    /// Total time spent blocked waiting for messages.
    pub fn wait_time(&self) -> f64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Recv { start, ready, .. } => (ready - start).max(0.0),
                _ => 0.0,
            })
            .sum()
    }

    /// Fraction of the horizon spent computing.
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        self.compute_time() / horizon
    }
}

/// Render per-rank timelines as an ASCII Gantt chart of `width` columns:
/// `#` compute, `.` waiting, `s`/`r` message endpoints, space idle.
pub fn render_gantt(traces: &[Trace], width: usize) -> String {
    let horizon = traces
        .iter()
        .flat_map(|t| t.events.iter().map(Event::end_time))
        .fold(0.0f64, f64::max);
    if horizon <= 0.0 || width == 0 {
        return String::new();
    }
    let col = |t: f64| -> usize {
        (((t / horizon) * width as f64) as usize).min(width.saturating_sub(1))
    };
    let mut out = String::new();
    for (rank, trace) in traces.iter().enumerate() {
        let mut row = vec![' '; width];
        for e in &trace.events {
            match e {
                Event::Compute { start, end, .. } => {
                    for c in col(*start)..=col(*end) {
                        row[c] = '#';
                    }
                }
                Event::Recv {
                    start, ready, end, ..
                } => {
                    for c in col(*start)..col(*ready).max(col(*start)) {
                        if row[c] == ' ' {
                            row[c] = '.';
                        }
                    }
                    row[col(*end)] = 'r';
                }
                Event::Send { at, .. } => {
                    row[col(*at)] = 's';
                }
            }
        }
        out.push_str(&format!("rank {rank:>3} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!("horizon: {horizon:.6} s\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            events: vec![
                Event::Recv {
                    start: 0.0,
                    ready: 2.0,
                    end: 2.5,
                    from: 1,
                },
                Event::Compute {
                    start: 2.5,
                    end: 7.5,
                    iters: 50,
                },
                Event::Send {
                    at: 8.0,
                    to: 1,
                    bytes: 64,
                },
            ],
        }
    }

    #[test]
    fn compute_and_wait_accounting() {
        let t = sample();
        assert!((t.compute_time() - 5.0).abs() < 1e-12);
        assert!((t.wait_time() - 2.0).abs() < 1e-12);
        assert!((t.utilization(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(t.utilization(0.0), 0.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let traces = vec![sample(), Trace::default()];
        let g = render_gantt(&traces, 40);
        assert!(g.contains("rank   0"));
        assert!(g.contains('#'));
        assert!(g.contains('s'));
        assert!(g.contains("horizon"));
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn empty_traces_render_empty() {
        assert_eq!(render_gantt(&[], 40), "");
        assert_eq!(render_gantt(&[Trace::default()], 0), "");
    }
}
