//! Cluster-wide observability: structured span tracing, a per-rank metrics
//! registry, and Chrome-trace/Perfetto export.
//!
//! The virtual-time [`crate::trace`] module answers *"what does the modelled
//! machine do?"*; this module answers *"where do the ranks actually spend
//! their time?"* — and makes both inspectable outside the process:
//!
//! * [`MetricsRegistry`] — one lock-free slot of atomic counters, gauges and
//!   fixed-bucket histograms per rank, shared by `Arc` between the engine,
//!   the executor and the driver. Ranks never contend: each rank thread is
//!   the only writer of its own slot.
//! * [`Span`]s — structured phase intervals (lower, plan, compile-chain,
//!   compute, pack, send, recv, unpack, gather) carrying **both** wall-clock
//!   nanoseconds (from a shared epoch) and the engine's virtual-clock
//!   timestamps. Rank threads buffer spans locally and flush once at exit.
//! * [`MetricsRegistry::chrome_trace`] — trace-event JSON loadable in
//!   `chrome://tracing` / Perfetto: one pid per rank (rank *r* is pid
//!   `r + 1`; pid 0 is the driver/compiler), one tid lane per phase kind.
//! * [`RunReport`] — the per-rank compute/wait/comm split (which sums to
//!   each rank's virtual makespan exactly), utilization, traffic and tile
//!   counters, serialized with the same hand-rolled JSON style as the bench
//!   artifacts, plus a human-readable text rendering.
//!
//! Observability is strictly opt-in: with `EngineOptions::obs == None` the
//! engine and executor only ever test an `Option` that is `None`, so the
//! hot paths are unchanged (see `perf --obs-overhead`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The pid used for driver/compiler-side spans in the Chrome trace; rank
/// `r`'s spans live on pid `r + 1`.
pub const DRIVER_PID: u32 = 0;

/// Span taxonomy: one variant per pipeline phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Frontend: source text → loop-nest model.
    Lower,
    /// Plan construction: validation, HNF/FM tiled space, distribution,
    /// communication plan, LDS geometry.
    Plan,
    /// `CompiledChain` lowering (flat-index execution tables).
    CompileChain,
    /// A tile's kernel loop on a rank.
    Compute,
    /// Packing a communication region into a message payload.
    Pack,
    /// Message injection (engine-side).
    Send,
    /// Blocking receive (engine-side).
    Recv,
    /// Unpacking a received payload into the LDS.
    Unpack,
    /// Writing a rank's LDS back into the global data space (driver-side).
    Gather,
    /// Draining the rank's comm lane under the overlapped strategy: the
    /// residual send/transit time not hidden behind interior compute.
    Overlap,
}

impl Phase {
    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Lower => "lower",
            Phase::Plan => "plan",
            Phase::CompileChain => "compile-chain",
            Phase::Compute => "compute",
            Phase::Pack => "pack",
            Phase::Send => "send",
            Phase::Recv => "recv",
            Phase::Unpack => "unpack",
            Phase::Gather => "gather",
            Phase::Overlap => "overlap",
        }
    }

    /// The tid lane this phase renders on within its pid.
    pub fn lane(self) -> u32 {
        match self {
            Phase::Compute => 0,
            Phase::Recv => 1,
            Phase::Send => 2,
            Phase::Pack => 3,
            Phase::Unpack => 4,
            Phase::Overlap => 5,
            // Driver-side lanes (pid 0).
            Phase::Lower => 0,
            Phase::Plan => 1,
            Phase::CompileChain => 2,
            Phase::Gather => 3,
        }
    }
}

/// The cross-rank dependence a send/recv span participates in: the peer
/// rank plus the envelope's `(tag, seq)` identity. A send span on rank *s*
/// with `peer = r` matches the recv span on rank *r* with `peer = s` and
/// the same `(tag, seq)` — together they form one edge of the run's
/// dependence graph, which the critical-path walker follows backward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEdge {
    /// The other endpoint's rank (receiver for send spans, sender for recv
    /// spans).
    pub peer: u32,
    /// The envelope's message tag.
    pub tag: i64,
    /// The envelope's per-link sequence number.
    pub seq: u64,
}

/// One traced interval. `virt` is the engine's virtual-clock interval in
/// seconds (absent for driver-side spans, which have no virtual clock).
#[derive(Clone, Debug)]
pub struct Span {
    /// The phase the span belongs to.
    pub phase: Phase,
    /// Event name (defaults to the phase name; driver spans may refine it,
    /// e.g. `"fourier-motzkin"` under [`Phase::Plan`]).
    pub name: &'static str,
    /// Chrome-trace pid: [`DRIVER_PID`] or `rank + 1`.
    pub pid: u32,
    /// Wall-clock start in nanoseconds since the registry epoch.
    pub wall_start_ns: u64,
    /// Wall-clock end in nanoseconds since the registry epoch.
    pub wall_end_ns: u64,
    /// Virtual-clock interval in seconds, when the span ran under the
    /// engine's virtual clock.
    pub virt: Option<(f64, f64)>,
    /// Phase-specific magnitude: iterations for compute, bytes for
    /// pack/send/recv/unpack, rank for gather, 0 otherwise.
    pub detail: u64,
    /// The cross-rank dependence for send/recv spans (`None` elsewhere).
    pub edge: Option<SpanEdge>,
}

/// Monotonically named counters, one cell per rank. Plain `u64` adds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Messages handed to the transport.
    MessagesSent,
    /// Nominal bytes of every sent message.
    BytesSent,
    /// Messages accepted by the receive path.
    MessagesReceived,
    /// Nominal bytes of every accepted message.
    BytesReceived,
    /// Transmission attempts repeated by the reliability layer.
    Retransmits,
    /// Envelopes discarded by receiver-side duplicate suppression.
    DupsSuppressed,
    /// Fault-plan drop decisions that fired.
    FaultDrops,
    /// Fault-plan duplicate decisions that fired.
    FaultDups,
    /// Fault-plan reorder decisions that fired.
    FaultReorders,
    /// Fault-plan delay decisions that fired.
    FaultDelays,
    /// Tiles executed.
    Tiles,
    /// Dense-interior tiles (compiled fast path, no bounds clamping).
    InteriorTiles,
    /// Boundary tiles (clamped against the iteration-space box).
    BoundaryTiles,
    /// Loop iterations executed.
    Iterations,
    /// Tiles dispatched through the compiled flat-index path.
    CompiledDispatches,
    /// Tiles dispatched through the per-point reference path.
    ReferenceDispatches,
    /// Iterations computed through batched affine-run kernel dispatches
    /// (the vectorized interior path) rather than per-point calls. A
    /// dispatch-shape counter like the two above: bitwise-identical
    /// strategies may legitimately differ on it.
    VectorizedPoints,
    /// Recovery checkpoints taken.
    Checkpoints,
    /// Crash recoveries performed (checkpoint restores / respawns).
    Recoveries,
    /// Checkpoint persistence operations (file writes on the TCP backend,
    /// in-memory snapshots on the threaded engine). Transport-level: not
    /// expected to agree bitwise across backends.
    CkptWrites,
    /// Bytes written by checkpoint persistence. Transport-level.
    CkptBytes,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 21;
    /// Every counter, in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::MessagesSent,
        Counter::BytesSent,
        Counter::MessagesReceived,
        Counter::BytesReceived,
        Counter::Retransmits,
        Counter::DupsSuppressed,
        Counter::FaultDrops,
        Counter::FaultDups,
        Counter::FaultReorders,
        Counter::FaultDelays,
        Counter::Tiles,
        Counter::InteriorTiles,
        Counter::BoundaryTiles,
        Counter::Iterations,
        Counter::CompiledDispatches,
        Counter::ReferenceDispatches,
        Counter::VectorizedPoints,
        Counter::Checkpoints,
        Counter::Recoveries,
        Counter::CkptWrites,
        Counter::CkptBytes,
    ];

    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MessagesSent => "messages_sent",
            Counter::BytesSent => "bytes_sent",
            Counter::MessagesReceived => "messages_received",
            Counter::BytesReceived => "bytes_received",
            Counter::Retransmits => "retransmits",
            Counter::DupsSuppressed => "dups_suppressed",
            Counter::FaultDrops => "fault_drops",
            Counter::FaultDups => "fault_dups",
            Counter::FaultReorders => "fault_reorders",
            Counter::FaultDelays => "fault_delays",
            Counter::Tiles => "tiles",
            Counter::InteriorTiles => "interior_tiles",
            Counter::BoundaryTiles => "boundary_tiles",
            Counter::Iterations => "iterations",
            Counter::CompiledDispatches => "compiled_dispatches",
            Counter::ReferenceDispatches => "reference_dispatches",
            Counter::VectorizedPoints => "vectorized_points",
            Counter::Checkpoints => "checkpoints",
            Counter::Recoveries => "recoveries",
            Counter::CkptWrites => "ckpt_writes",
            Counter::CkptBytes => "ckpt_write_bytes",
        }
    }
}

/// Level gauges: current value plus high-water mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GaugeId {
    /// Arrived-but-unmatched envelopes buffered by MPI-style tag matching.
    PendingDepth,
    /// Out-of-order arrivals awaiting re-sequencing.
    ResequenceDepth,
    /// Accepted sends not yet on the wire (reorder holdbacks).
    OutstandingSends,
    /// Wall nanoseconds the TCP backend spent establishing its full mesh
    /// (rendezvous + peer handshakes). Set once per run.
    ConnectNs,
    /// Envelopes retained in this rank's outgoing replay logs awaiting a
    /// receiver checkpoint ack (max over links; the high-water mark bounds
    /// the recovery replay window).
    ReplayLogDepth,
    /// Frames queued toward a peer's writer thread but not yet written to
    /// the socket (max over links; TCP backend). The high-water mark shows
    /// how deep the per-peer send queues actually run.
    WriterQueueDepth,
}

impl GaugeId {
    /// Number of gauge ids (update together with [`GaugeId::ALL`]).
    pub const COUNT: usize = 6;
    /// All gauge ids, in storage order.
    pub const ALL: [GaugeId; GaugeId::COUNT] = [
        GaugeId::PendingDepth,
        GaugeId::ResequenceDepth,
        GaugeId::OutstandingSends,
        GaugeId::ConnectNs,
        GaugeId::ReplayLogDepth,
        GaugeId::WriterQueueDepth,
    ];

    /// Stable export name of this gauge.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::PendingDepth => "pending_depth",
            GaugeId::ResequenceDepth => "resequence_depth",
            GaugeId::OutstandingSends => "outstanding_sends",
            GaugeId::ConnectNs => "connect_ns",
            GaugeId::ReplayLogDepth => "replay_log_depth",
            GaugeId::WriterQueueDepth => "writer_queue_depth",
        }
    }
}

/// Fixed-bucket wall-clock histograms (power-of-two nanosecond buckets).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistId {
    /// Wall nanoseconds per tile's kernel loop.
    ComputeTileNs,
    /// Wall nanoseconds blocked in a receive (including tag-mismatch
    /// buffering of unrelated arrivals).
    RecvWaitNs,
    /// Wall nanoseconds packing one communication region.
    PackNs,
    /// Wall nanoseconds unpacking one payload.
    UnpackNs,
    /// Wall nanoseconds gathering one tile into the global data space.
    GatherNs,
    /// Wall nanoseconds encoding one envelope to wire bytes (TCP backend).
    SerializeNs,
    /// Wall nanoseconds decoding one wire frame back into an envelope
    /// (TCP backend; recorded by the reader thread).
    DeserializeNs,
    /// Wall nanoseconds per retransmission attempt (the reliability layer's
    /// re-injection latency, both backends).
    RetransNs,
}

impl HistId {
    /// Number of histogram ids (update together with [`HistId::ALL`]).
    pub const COUNT: usize = 8;
    /// All histogram ids, in storage order.
    pub const ALL: [HistId; HistId::COUNT] = [
        HistId::ComputeTileNs,
        HistId::RecvWaitNs,
        HistId::PackNs,
        HistId::UnpackNs,
        HistId::GatherNs,
        HistId::SerializeNs,
        HistId::DeserializeNs,
        HistId::RetransNs,
    ];

    /// Stable export name of this histogram.
    pub fn name(self) -> &'static str {
        match self {
            HistId::ComputeTileNs => "compute_tile_ns",
            HistId::RecvWaitNs => "recv_wait_ns",
            HistId::PackNs => "pack_ns",
            HistId::UnpackNs => "unpack_ns",
            HistId::GatherNs => "gather_ns",
            HistId::SerializeNs => "serialize_ns",
            HistId::DeserializeNs => "deserialize_ns",
            HistId::RetransNs => "retrans_ns",
        }
    }
}

/// Virtual-time accumulators; together they partition a rank's final
/// virtual clock exactly (see [`RunReport`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VirtAcc {
    /// `advance_compute` charges.
    Compute,
    /// True data-dependence waiting in receives.
    Wait,
    /// Sender-side injection cost (zero under the overlapped scheme).
    Send,
    /// Receiver-side per-message overhead (zero under overlapped).
    RecvOverhead,
    /// Retransmission backoff + repeated injections.
    Retrans,
    /// Injected stalls.
    Stall,
    /// Comm-lane overshoot paid when draining outstanding overlapped sends
    /// (the part of the lane that was *not* hidden behind compute).
    Drain,
    /// Comm-lane busy time hidden behind compute under the overlapped
    /// strategy. Informational: NOT part of the clock partition.
    OverlapHidden,
    /// Virtual time re-executed after a crash recovery, charged once when
    /// the rank settles its recovery debt at the end of the run.
    Recovery,
}

impl VirtAcc {
    /// Number of accumulators.
    pub const COUNT: usize = 9;
    /// Every accumulator, in index order.
    pub const ALL: [VirtAcc; VirtAcc::COUNT] = [
        VirtAcc::Compute,
        VirtAcc::Wait,
        VirtAcc::Send,
        VirtAcc::RecvOverhead,
        VirtAcc::Retrans,
        VirtAcc::Stall,
        VirtAcc::Drain,
        VirtAcc::OverlapHidden,
        VirtAcc::Recovery,
    ];

    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            VirtAcc::Compute => "compute_virt",
            VirtAcc::Wait => "wait_virt",
            VirtAcc::Send => "send_virt",
            VirtAcc::RecvOverhead => "recv_overhead_virt",
            VirtAcc::Retrans => "retrans_virt",
            VirtAcc::Stall => "stall_virt",
            VirtAcc::Drain => "drain_virt",
            VirtAcc::OverlapHidden => "overlap_hidden_virt",
            VirtAcc::Recovery => "recovery_virt",
        }
    }
}

/// Number of power-of-two histogram buckets: bucket `i` counts values in
/// `[2^i, 2^(i+1))` ns (bucket 0 also takes 0), the last bucket is
/// unbounded (≥ ~67 ms).
pub const HIST_BUCKETS: usize = 27;

/// A fixed-bucket histogram with atomic cells.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index for a value: `floor(log2(v))` clamped to the range.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((63 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Record one value (thread-safe; cells are atomic).
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Every bucket's count, in index order (including empty buckets) —
    /// the raw shape [`StatsSnapshot`] captures and delta-encodes.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// `(bucket_lower_bound, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((if i == 0 { 0 } else { 1u64 << i }, c))
            })
            .collect()
    }
}

/// A level gauge: last set value and high-water mark.
pub struct Gauge {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Set the level, updating the high-water mark.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Last set value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// One rank's metrics slot. Counters and histograms are atomic so the slot
/// can be shared by `Arc`, but by construction each rank thread is the only
/// writer of its own slot — reads from the driver after the run race with
/// nothing.
pub struct RankMetrics {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [Gauge; GaugeId::COUNT],
    hists: [Histogram; HistId::COUNT],
    /// f64 accumulators stored as bits; single-writer, so load-add-store is
    /// race-free.
    virt: [AtomicU64; VirtAcc::COUNT],
}

impl RankMetrics {
    fn new() -> Self {
        RankMetrics {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| Gauge::new()),
            hists: std::array::from_fn(|_| Histogram::new()),
            virt: std::array::from_fn(|_| AtomicU64::new(0.0f64.to_bits())),
        }
    }

    /// Add `v` to counter `c`.
    pub fn add(&self, c: Counter, v: u64) {
        self.counters[c as usize].fetch_add(v, Ordering::Relaxed);
    }

    /// Current value of counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Overwrite counter `c` (crash recovery rewinds counters to a
    /// checkpoint snapshot; single-writer discipline applies).
    pub fn set(&self, c: Counter, v: u64) {
        self.counters[c as usize].store(v, Ordering::Relaxed);
    }

    /// The gauge cell for `g`.
    pub fn gauge(&self, g: GaugeId) -> &Gauge {
        &self.gauges[g as usize]
    }

    /// The histogram for `h`.
    pub fn hist(&self, h: HistId) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Accumulate virtual seconds. Only the owning rank thread may call
    /// this (single-writer discipline).
    pub fn virt_add(&self, a: VirtAcc, dv: f64) {
        let cell = &self.virt[a as usize];
        let cur = f64::from_bits(cell.load(Ordering::Relaxed));
        cell.store((cur + dv).to_bits(), Ordering::Relaxed);
    }

    /// Current value of accumulator `a` in virtual seconds.
    pub fn virt_get(&self, a: VirtAcc) -> f64 {
        f64::from_bits(self.virt[a as usize].load(Ordering::Relaxed))
    }

    /// Overwrite accumulator `a` (crash recovery rewinds the virtual
    /// accumulators to a checkpoint snapshot; single-writer discipline
    /// applies).
    pub fn virt_set(&self, a: VirtAcc, v: f64) {
        self.virt[a as usize].store(v.to_bits(), Ordering::Relaxed);
    }
}

/// The shared observability session: per-rank metrics slots, the collected
/// spans, and the wall-clock epoch every span timestamp is relative to.
pub struct MetricsRegistry {
    epoch: Instant,
    ranks: Mutex<Vec<Arc<RankMetrics>>>,
    spans: Mutex<Vec<Span>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsRegistry({} ranks)", self.rank_count())
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            epoch: Instant::now(),
            ranks: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
        }
    }
}

impl MetricsRegistry {
    /// A fresh shared registry with its epoch at "now".
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Nanoseconds since the registry epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The metrics slot for `rank`, growing the registry as needed.
    pub fn rank_metrics(&self, rank: usize) -> Arc<RankMetrics> {
        let mut ranks = self.ranks.lock().expect("obs registry poisoned");
        while ranks.len() <= rank {
            ranks.push(Arc::new(RankMetrics::new()));
        }
        ranks[rank].clone()
    }

    /// Number of rank slots allocated so far.
    pub fn rank_count(&self) -> usize {
        self.ranks.lock().expect("obs registry poisoned").len()
    }

    /// Snapshot of every rank slot.
    pub fn ranks(&self) -> Vec<Arc<RankMetrics>> {
        self.ranks.lock().expect("obs registry poisoned").clone()
    }

    /// Append a batch of rank spans (called by [`RankObs::flush`]).
    pub fn push_spans(&self, spans: &mut Vec<Span>) {
        if spans.is_empty() {
            return;
        }
        self.spans
            .lock()
            .expect("obs registry poisoned")
            .append(spans);
    }

    /// Record a driver-side span (no virtual clock) ending now.
    pub fn driver_span(&self, phase: Phase, name: &'static str, wall_start_ns: u64, detail: u64) {
        let span = Span {
            phase,
            name,
            pid: DRIVER_PID,
            wall_start_ns,
            wall_end_ns: self.now_ns(),
            virt: None,
            detail,
            edge: None,
        };
        self.spans.lock().expect("obs registry poisoned").push(span);
    }

    /// Snapshot of every collected span.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().expect("obs registry poisoned").clone()
    }

    /// Chrome trace-event JSON on the virtual clock (rank lanes use virtual
    /// microseconds; driver lanes, which have no virtual clock, use wall).
    pub fn chrome_trace(&self) -> String {
        self.chrome_trace_with(ExportClock::Virtual)
    }

    /// Chrome trace-event JSON with an explicit timeline clock.
    pub fn chrome_trace_with(&self, clock: ExportClock) -> String {
        chrome_trace_json(&self.spans(), clock)
    }

    /// Chrome trace-event JSON with the critical path highlighted as
    /// Perfetto flow arrows (see [`chrome_trace_json_with_path`]).
    pub fn chrome_trace_with_path(
        &self,
        clock: ExportClock,
        path: Option<&CriticalPath>,
    ) -> String {
        chrome_trace_json_with_path(&self.spans(), clock, path)
    }

    /// The dependency-true critical path of a finished run: walk the
    /// collected spans backward through send→recv edges from the slowest
    /// rank's final clock (see [`critical_path_from_spans`]).
    pub fn critical_path(&self, local_times: &[f64]) -> Option<CriticalPath> {
        critical_path_from_spans(&self.spans(), local_times)
    }

    /// Build the aggregated [`RunReport`] for a finished run with the given
    /// per-rank final virtual clocks.
    pub fn run_report(&self, local_times: &[f64]) -> RunReport {
        RunReport::from_registry(self, local_times)
    }
}

/// Per-rank observability handle owned by the engine's communication
/// endpoint: a metrics slot plus a local span buffer, flushed to the
/// registry when the rank finishes.
pub struct RankObs {
    rank: usize,
    reg: Arc<MetricsRegistry>,
    metrics: Arc<RankMetrics>,
    spans: Vec<Span>,
}

impl RankObs {
    /// The observability handle for `rank`, allocating its registry slot.
    pub fn new(reg: Arc<MetricsRegistry>, rank: usize) -> Self {
        let metrics = reg.rank_metrics(rank);
        RankObs {
            rank,
            reg,
            metrics,
            spans: Vec::new(),
        }
    }

    /// The rank this handle records for.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The underlying per-rank metric store, for helper threads that record
    /// on this rank's behalf (e.g. the TCP reader threads timing frame
    /// decodes). Counters, gauges and histograms are atomics and safe to
    /// update from any thread; the *virtual* accumulators are single-writer
    /// and must only be touched through [`RankObs::virt_add`] on the rank's
    /// own thread.
    pub fn metrics(&self) -> Arc<RankMetrics> {
        self.metrics.clone()
    }

    /// Nanoseconds since the registry epoch.
    pub fn now_ns(&self) -> u64 {
        self.reg.now_ns()
    }

    /// Add `v` to this rank's counter `c`.
    pub fn add(&self, c: Counter, v: u64) {
        self.metrics.add(c, v);
    }

    /// Record `ns` into this rank's histogram `h`.
    pub fn observe(&self, h: HistId, ns: u64) {
        self.metrics.hist(h).observe(ns);
    }

    /// Set this rank's gauge `g`.
    pub fn gauge_set(&self, g: GaugeId, v: u64) {
        self.metrics.gauge(g).set(v);
    }

    /// Accumulate virtual seconds into this rank's accumulator `a`.
    pub fn virt_add(&self, a: VirtAcc, dv: f64) {
        self.metrics.virt_add(a, dv);
    }

    /// Record a span ending now on this rank's pid.
    pub fn span(&mut self, phase: Phase, wall_start_ns: u64, virt: (f64, f64), detail: u64) {
        self.named_span(phase, phase.name(), wall_start_ns, virt, detail);
    }

    /// [`RankObs::span`] with a refined event name (e.g.
    /// `"compute-boundary"` / `"compute-interior"` under [`Phase::Compute`]).
    pub fn named_span(
        &mut self,
        phase: Phase,
        name: &'static str,
        wall_start_ns: u64,
        virt: (f64, f64),
        detail: u64,
    ) {
        let wall_end_ns = self.reg.now_ns();
        self.spans.push(Span {
            phase,
            name,
            pid: self.rank as u32 + 1,
            wall_start_ns,
            wall_end_ns,
            virt: Some(virt),
            detail,
            edge: None,
        });
    }

    /// [`RankObs::span`] carrying the cross-rank dependence identity of a
    /// send or receive, so the critical-path walker can match the two ends.
    pub fn edge_span(
        &mut self,
        phase: Phase,
        wall_start_ns: u64,
        virt: (f64, f64),
        detail: u64,
        edge: SpanEdge,
    ) {
        let wall_end_ns = self.reg.now_ns();
        self.spans.push(Span {
            phase,
            name: phase.name(),
            pid: self.rank as u32 + 1,
            wall_start_ns,
            wall_end_ns,
            virt: Some(virt),
            detail,
            edge: Some(edge),
        });
    }

    /// Push the buffered spans to the registry.
    pub fn flush(&mut self) {
        let mut spans = std::mem::take(&mut self.spans);
        self.reg.push_spans(&mut spans);
    }
}

impl Drop for RankObs {
    fn drop(&mut self) {
        self.flush();
    }
}

// ---------------------------------------------------------------------------
// StatsSnapshot: the STATS frame payload
// ---------------------------------------------------------------------------

/// One histogram's full state as captured by a [`StatsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Every bucket's count, in index order ([`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

/// A complete copy of one rank's [`RankMetrics`] state, as shipped in a
/// TCMP `STATS` frame: every counter, every virtual accumulator (as `f64`
/// bit patterns, so clocks survive the wire bitwise), every gauge
/// `(value, high-water)` pair and every histogram.
///
/// On the wire a snapshot travels as a *delta* against the previous
/// snapshot on the same stream (see [`StatsSnapshot::encode_delta`]): the
/// control connection is ordered and reliable, so the decoder can fold
/// each delta into its running state. An absolute snapshot is simply a
/// delta against [`StatsSnapshot::zero`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// One value per [`Counter`], in [`Counter::ALL`] order.
    pub counters: Vec<u64>,
    /// One `f64` bit pattern per [`VirtAcc`], in [`VirtAcc::ALL`] order.
    pub virts: Vec<u64>,
    /// One `(value, max)` pair per [`GaugeId`], in [`GaugeId::ALL`] order.
    pub gauges: Vec<(u64, u64)>,
    /// One [`HistSnapshot`] per [`HistId`], in [`HistId::ALL`] order.
    pub hists: Vec<HistSnapshot>,
}

/// Append `v` as unsigned LEB128.
fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Read one unsigned LEB128 value, advancing `*i`.
fn get_uvarint(buf: &[u8], i: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*i)
            .ok_or_else(|| format!("stats payload truncated at byte {}", *i))?;
        *i += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(format!("stats varint overflows u64 at byte {}", *i));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-map a signed delta so small magnitudes stay small on the wire.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append the zigzag-encoded wrapping difference `cur - prev`.
fn put_delta(out: &mut Vec<u8>, prev: u64, cur: u64) {
    put_uvarint(out, zigzag(cur.wrapping_sub(prev) as i64));
}

/// Apply one zigzag delta read from `buf` to `prev`.
fn get_delta(buf: &[u8], i: &mut usize, prev: u64) -> Result<u64, String> {
    Ok(prev.wrapping_add(unzigzag(get_uvarint(buf, i)?) as u64))
}

impl StatsSnapshot {
    /// The all-zero snapshot: the decoder's baseline for absolute frames.
    pub fn zero() -> StatsSnapshot {
        StatsSnapshot {
            counters: vec![0; Counter::COUNT],
            virts: vec![0.0f64.to_bits(); VirtAcc::COUNT],
            gauges: vec![(0, 0); GaugeId::COUNT],
            hists: vec![
                HistSnapshot {
                    count: 0,
                    sum: 0,
                    buckets: vec![0; HIST_BUCKETS],
                };
                HistId::COUNT
            ],
        }
    }

    /// Capture the current state of one rank's metrics slot. Values are
    /// read with relaxed atomics: mid-run captures are a consistent-enough
    /// telemetry view, and the final capture (after the rank finished) is
    /// exact because the slot is single-writer.
    pub fn capture(m: &RankMetrics) -> StatsSnapshot {
        StatsSnapshot {
            counters: Counter::ALL.iter().map(|&c| m.get(c)).collect(),
            virts: VirtAcc::ALL
                .iter()
                .map(|&a| m.virt_get(a).to_bits())
                .collect(),
            gauges: GaugeId::ALL
                .iter()
                .map(|&g| (m.gauge(g).value(), m.gauge(g).max()))
                .collect(),
            hists: HistId::ALL
                .iter()
                .map(|&h| {
                    let hist = m.hist(h);
                    HistSnapshot {
                        count: hist.count(),
                        sum: hist.sum(),
                        buckets: hist.buckets().to_vec(),
                    }
                })
                .collect(),
        }
    }

    /// One counter's value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// One virtual accumulator's value in virtual seconds.
    pub fn virt(&self, a: VirtAcc) -> f64 {
        f64::from_bits(self.virts[a as usize])
    }

    /// The rank's current virtual clock, reconstructed from the partition
    /// invariant: every clock advance is charged to exactly one
    /// accumulator ([`VirtAcc::OverlapHidden`] is informational and
    /// excluded), so their sum *is* the clock — no separate clock cell has
    /// to travel with the snapshot.
    pub fn local_clock(&self) -> f64 {
        self.virt(VirtAcc::Compute)
            + self.virt(VirtAcc::Wait)
            + self.virt(VirtAcc::Send)
            + self.virt(VirtAcc::RecvOverhead)
            + self.virt(VirtAcc::Retrans)
            + self.virt(VirtAcc::Stall)
            + self.virt(VirtAcc::Drain)
            + self.virt(VirtAcc::Recovery)
    }

    /// Delta-encode this snapshot against `prev` as the `STATS` payload:
    /// zigzag-LEB128 of each wrapping difference, fields in declaration
    /// order (counters, virts as XORed bit patterns, gauges, histograms).
    /// Counters are signed deltas because a crash recovery *rewinds* them.
    pub fn encode_delta(&self, prev: &StatsSnapshot) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        for (p, c) in prev.counters.iter().zip(&self.counters) {
            put_delta(&mut out, *p, *c);
        }
        // Virtual clocks: XOR of the bit patterns — identical values encode
        // as a single zero byte and decoding is exact (bitwise), which a
        // numeric f64 delta could never guarantee.
        for (p, c) in prev.virts.iter().zip(&self.virts) {
            put_uvarint(&mut out, p ^ c);
        }
        for ((pv, pm), (cv, cm)) in prev.gauges.iter().zip(&self.gauges) {
            put_delta(&mut out, *pv, *cv);
            put_delta(&mut out, *pm, *cm);
        }
        for (p, c) in prev.hists.iter().zip(&self.hists) {
            put_delta(&mut out, p.count, c.count);
            put_delta(&mut out, p.sum, c.sum);
            for (pb, cb) in p.buckets.iter().zip(&c.buckets) {
                put_delta(&mut out, *pb, *cb);
            }
        }
        out
    }

    /// Decode a `STATS` payload produced by [`StatsSnapshot::encode_delta`]
    /// on top of `prev`. Rejects truncated and oversized payloads with a
    /// typed message; both sides are the same binary, so the field counts
    /// are implicit.
    pub fn apply_delta(prev: &StatsSnapshot, payload: &[u8]) -> Result<StatsSnapshot, String> {
        let mut i = 0usize;
        let mut snap = StatsSnapshot::zero();
        for (k, p) in prev.counters.iter().enumerate() {
            snap.counters[k] = get_delta(payload, &mut i, *p)?;
        }
        for (k, p) in prev.virts.iter().enumerate() {
            snap.virts[k] = p ^ get_uvarint(payload, &mut i)?;
        }
        for (k, (pv, pm)) in prev.gauges.iter().enumerate() {
            snap.gauges[k] = (
                get_delta(payload, &mut i, *pv)?,
                get_delta(payload, &mut i, *pm)?,
            );
        }
        for (k, p) in prev.hists.iter().enumerate() {
            snap.hists[k].count = get_delta(payload, &mut i, p.count)?;
            snap.hists[k].sum = get_delta(payload, &mut i, p.sum)?;
            for (b, pb) in p.buckets.iter().enumerate() {
                snap.hists[k].buckets[b] = get_delta(payload, &mut i, *pb)?;
            }
        }
        if i != payload.len() {
            return Err(format!(
                "stats payload has {} trailing bytes after the last field",
                payload.len() - i
            ));
        }
        Ok(snap)
    }
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// Which clock drives the exported timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExportClock {
    /// Rank lanes on the deterministic virtual clock (µs = virtual
    /// seconds × 10⁶); driver lanes fall back to wall time.
    #[default]
    Virtual,
    /// Everything on real wall time since the registry epoch.
    Wall,
}

fn fmt_us(ns_or_us: f64) -> String {
    // Trim to 3 decimals; trace viewers do not need more.
    format!("{ns_or_us:.3}")
}

/// Serialize spans as Chrome trace-event JSON (`ph:"X"` complete events
/// plus process/thread-name metadata). One pid per rank, one tid per phase
/// lane.
pub fn chrome_trace_json(spans: &[Span], clock: ExportClock) -> String {
    chrome_trace_json_with_path(spans, clock, None)
}

/// [`chrome_trace_json`] plus the critical path highlighted as Perfetto
/// flow events: every cross-rank hop of `path` becomes an `s`/`f` arrow
/// (category `critical-path`) from the sender's send lane to the
/// receiver's recv lane at the hand-off instant. Flows are only emitted on
/// the virtual clock — the path's coordinates are virtual seconds.
pub fn chrome_trace_json_with_path(
    spans: &[Span],
    clock: ExportClock,
    path: Option<&CriticalPath>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    // Metadata: name each pid and each (pid, lane) we are about to emit.
    let mut pids: Vec<u32> = spans.iter().map(|s| s.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    let mut lanes: Vec<(u32, u32, &'static str)> = spans
        .iter()
        .map(|s| (s.pid, s.phase.lane(), s.phase.name()))
        .collect();
    lanes.sort_unstable();
    lanes.dedup_by_key(|l| (l.0, l.1));
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };
    for pid in &pids {
        let name = if *pid == DRIVER_PID {
            "driver".to_string()
        } else {
            format!("rank {}", pid - 1)
        };
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"args\": {{\"name\": \"{name}\"}}}}"
        );
    }
    for (pid, lane, name) in &lanes {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {lane}, \"args\": {{\"name\": \"{name}\"}}}}"
        );
    }
    for s in spans {
        let (ts, dur) = match (clock, s.virt) {
            (ExportClock::Virtual, Some((v0, v1))) => (v0 * 1e6, (v1 - v0).max(0.0) * 1e6),
            _ => (
                s.wall_start_ns as f64 / 1e3,
                s.wall_end_ns.saturating_sub(s.wall_start_ns) as f64 / 1e3,
            ),
        };
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": {}, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"detail\": {}, \"wall_start_ns\": {}, \"wall_dur_ns\": {}",
            s.name,
            s.phase.name(),
            s.pid,
            s.phase.lane(),
            fmt_us(ts),
            fmt_us(dur),
            s.detail,
            s.wall_start_ns,
            s.wall_end_ns.saturating_sub(s.wall_start_ns),
        );
        if let Some((v0, v1)) = s.virt {
            let _ = write!(out, ", \"virt_start_s\": {v0:.9}, \"virt_end_s\": {v1:.9}");
        }
        out.push_str("}}");
    }
    if let (ExportClock::Virtual, Some(cp)) = (clock, path) {
        let mut id = 0u64;
        for h in &cp.hops {
            let Some(from) = h.from_rank else { continue };
            id += 1;
            let ts = fmt_us(h.start * 1e6);
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\": \"critical-path\", \"cat\": \"critical-path\", \"ph\": \"s\", \"id\": {id}, \"pid\": {}, \"tid\": {}, \"ts\": {ts}}}",
                from as u32 + 1,
                Phase::Send.lane(),
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\": \"critical-path\", \"cat\": \"critical-path\", \"ph\": \"f\", \"bp\": \"e\", \"id\": {id}, \"pid\": {}, \"tid\": {}, \"ts\": {ts}}}",
                h.rank as u32 + 1,
                Phase::Recv.lane(),
            );
        }
    }
    out.push_str("\n]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

/// One hop of the dependency-true critical path: the half-open virtual
/// interval `(start, end]` during which `rank` was the binding constraint
/// on the run's completion.
#[derive(Clone, Debug)]
pub struct CriticalHop {
    /// The rank the path runs on during this hop.
    pub rank: usize,
    /// What the rank was doing: a [`Phase::name`], or `"idle"` (between
    /// recorded spans) / `"origin"` (before the rank's first span).
    pub phase: &'static str,
    /// Virtual start of the hop (exclusive).
    pub start: f64,
    /// Virtual end of the hop (inclusive).
    pub end: f64,
    /// `Some(sender)` when this hop was entered through a send→recv edge:
    /// the hop starts the instant `sender`'s matched send completed.
    pub from_rank: Option<usize>,
}

impl CriticalHop {
    /// The hop's virtual duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The longest dependency chain of a run: a sequence of hops that tiles
/// `(0, makespan]` exactly, following send→recv edges across ranks. Unlike
/// the "slowest rank" approximation, the chain shows *which* rank bound
/// the run during every interval and where the hand-offs happened.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// The hops in chronological order; consecutive hops share a boundary
    /// (`hops[k].end == hops[k+1].start`), so the durations telescope.
    pub hops: Vec<CriticalHop>,
    /// The chain's total length in virtual seconds — the makespan, since
    /// the chain tiles `(0, makespan]`. Always ≥ the slowest rank's clock.
    pub length: f64,
}

/// Walk the recorded spans backward from the slowest rank's final clock,
/// following matched send→recv [`SpanEdge`]s to produce the true longest
/// dependency chain. Returns `None` without rank spans to walk (e.g. a
/// multi-process driver registry, which only holds driver-side spans).
pub fn critical_path_from_spans(spans: &[Span], local_times: &[f64]) -> Option<CriticalPath> {
    use std::collections::HashMap;
    let n = local_times.len();
    if n == 0 {
        return None;
    }
    let mut by_rank: Vec<Vec<&Span>> = vec![Vec::new(); n];
    // (sender, receiver, tag, seq) → the send span's virtual end.
    let mut sends: HashMap<(usize, u32, i64, u64), f64> = HashMap::new();
    for s in spans {
        if s.pid == DRIVER_PID {
            continue;
        }
        let rank = (s.pid - 1) as usize;
        if rank >= n || s.virt.is_none() {
            continue;
        }
        if s.phase == Phase::Send {
            if let Some(e) = s.edge {
                sends.insert((rank, e.peer, e.tag, e.seq), s.virt.expect("filtered").1);
            }
        }
        by_rank[rank].push(s);
    }
    if by_rank.iter().all(|v| v.is_empty()) {
        return None;
    }
    for v in &mut by_rank {
        v.sort_by(|a, b| {
            let (a0, a1) = a.virt.expect("filtered");
            let (b0, b1) = b.virt.expect("filtered");
            a1.total_cmp(&b1).then(a0.total_cmp(&b0))
        });
    }
    let (start_rank, start_t) = local_times
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(r, &t)| (r, t))?;
    let mut rank = start_rank;
    let mut t = start_t;
    let mut rev: Vec<CriticalHop> = Vec::new();
    // Every iteration pushes one hop that strictly decreases `t`, and each
    // hop is anchored at a span boundary, so the walk terminates; the cap
    // is pure defense against malformed span data.
    let cap = 2 * spans.len() + n + 16;
    'walk: while t > 0.0 && rev.len() < cap {
        for s in by_rank[rank].iter().rev() {
            let (v0, v1) = s.virt.expect("filtered");
            if v1 > t {
                continue;
            }
            if v1 < t {
                // Nothing recorded on this rank in (v1, t]: it sat idle
                // (e.g. finished early and the makespan is another rank's).
                rev.push(CriticalHop {
                    rank,
                    phase: "idle",
                    start: v1,
                    end: t,
                    from_rank: None,
                });
                t = v1;
                continue 'walk;
            }
            // v1 == t. A receive whose matched send completed *after* this
            // rank started waiting hands the path to the sender: during
            // (send_end, t] the binding constraint was message delivery.
            if s.phase == Phase::Recv {
                if let Some(e) = s.edge {
                    let key = (e.peer as usize, rank as u32, e.tag, e.seq);
                    if let Some(&send_end) = sends.get(&key) {
                        if send_end < t && send_end > v0 {
                            rev.push(CriticalHop {
                                rank,
                                phase: s.phase.name(),
                                start: send_end,
                                end: t,
                                from_rank: Some(e.peer as usize),
                            });
                            rank = e.peer as usize;
                            t = send_end;
                            continue 'walk;
                        }
                    }
                }
            }
            if v0 < t {
                rev.push(CriticalHop {
                    rank,
                    phase: s.phase.name(),
                    start: v0,
                    end: t,
                    from_rank: None,
                });
                t = v0;
                continue 'walk;
            }
            // A zero-length span exactly at `t` cannot advance the walk;
            // keep scanning earlier spans.
        }
        // No span reaches further back: the remainder is this rank's
        // pre-span time (model setup before its first recorded phase).
        rev.push(CriticalHop {
            rank,
            phase: "origin",
            start: 0.0,
            end: t,
            from_rank: None,
        });
        t = 0.0;
    }
    rev.reverse();
    // Merge runs of same-rank same-phase hops (a long local stretch walks
    // as one hop per span; the report wants the stretch).
    let mut hops: Vec<CriticalHop> = Vec::new();
    for h in rev {
        match hops.last_mut() {
            Some(last)
                if last.rank == h.rank
                    && last.phase == h.phase
                    && h.from_rank.is_none()
                    && last.end == h.start =>
            {
                last.end = h.end;
            }
            _ => hops.push(h),
        }
    }
    Some(CriticalPath {
        hops,
        length: start_t,
    })
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

/// One histogram's aggregated view: `(id, count, sum, non-empty buckets)`
/// where each bucket is `(floor, count)`.
pub type HistReport = (HistId, u64, u64, Vec<(u64, u64)>);

/// One rank's aggregated view.
#[derive(Clone, Debug)]
pub struct RankReport {
    /// The rank this row describes.
    pub rank: usize,
    /// The rank's final virtual clock.
    pub local_time: f64,
    /// Virtual seconds computing.
    pub compute: f64,
    /// Virtual seconds blocked on data dependences (incl. injected stalls).
    pub wait: f64,
    /// Virtual seconds of communication CPU cost: send injection, receive
    /// overhead, retransmission charges and overlapped-lane drains.
    pub comm: f64,
    /// Virtual seconds re-executed after crash recoveries (zero on a
    /// recovery-free run); `local_time - recovery` is the fault-free clock.
    pub recovery: f64,
    /// Virtual seconds of comm-lane time hidden behind compute under the
    /// overlapped strategy (informational; not part of the partition).
    pub overlap_hidden: f64,
    /// `compute / local_time` (0 for an idle rank).
    pub utilization: f64,
    /// `(counter, value)` for every counter.
    pub counters: Vec<(Counter, u64)>,
    /// `(gauge, value, high-water mark)` for every gauge.
    pub gauges: Vec<(GaugeId, u64, u64)>,
    /// `(hist, count, sum, non-empty buckets)` for every histogram.
    pub hists: Vec<HistReport>,
}

/// The whole run, aggregated from the registry. Per rank,
/// `compute + wait + comm + recovery == local_time` exactly (the virtual
/// accumulators partition every clock advance; `recovery` is zero unless a
/// crash was recovered).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// One row per rank, in rank order.
    pub ranks: Vec<RankReport>,
    /// Virtual makespan: the latest local clock.
    pub makespan: f64,
    /// The dependency-true critical path, when spans with edges were
    /// available to walk (attach with [`RunReport::with_critical_path`]).
    pub critical_path: Option<CriticalPath>,
}

impl RunReport {
    /// Aggregate the registry's metrics into per-rank rows, pairing each
    /// rank with its final virtual clock.
    pub fn from_registry(reg: &MetricsRegistry, local_times: &[f64]) -> RunReport {
        let slots = reg.ranks();
        let mut ranks = Vec::with_capacity(local_times.len());
        for (rank, &local_time) in local_times.iter().enumerate() {
            let empty = Arc::new(RankMetrics::new());
            let m = slots.get(rank).unwrap_or(&empty);
            let compute = m.virt_get(VirtAcc::Compute);
            let wait = m.virt_get(VirtAcc::Wait) + m.virt_get(VirtAcc::Stall);
            let comm = m.virt_get(VirtAcc::Send)
                + m.virt_get(VirtAcc::RecvOverhead)
                + m.virt_get(VirtAcc::Retrans)
                + m.virt_get(VirtAcc::Drain);
            let recovery = m.virt_get(VirtAcc::Recovery);
            let overlap_hidden = m.virt_get(VirtAcc::OverlapHidden);
            ranks.push(RankReport {
                rank,
                local_time,
                compute,
                wait,
                comm,
                recovery,
                overlap_hidden,
                utilization: if local_time > 0.0 {
                    compute / local_time
                } else {
                    0.0
                },
                counters: Counter::ALL.iter().map(|&c| (c, m.get(c))).collect(),
                gauges: GaugeId::ALL
                    .iter()
                    .map(|&g| (g, m.gauge(g).value(), m.gauge(g).max()))
                    .collect(),
                hists: HistId::ALL
                    .iter()
                    .map(|&h| {
                        let hist = m.hist(h);
                        (h, hist.count(), hist.sum(), hist.nonzero_buckets())
                    })
                    .collect(),
            });
        }
        let makespan = local_times.iter().copied().fold(0.0, f64::max);
        RunReport {
            ranks,
            makespan,
            critical_path: None,
        }
    }

    /// Attach (or clear) the dependency-true critical path. Kept out of
    /// [`RunReport::from_registry`] so the JSON of a snapshot-merged report
    /// and a registry-built report stay byte-identical by default.
    pub fn with_critical_path(mut self, path: Option<CriticalPath>) -> RunReport {
        self.critical_path = path;
        self
    }

    /// Build the same aggregated report from per-rank [`StatsSnapshot`]s —
    /// the multi-process driver's merge path. The arithmetic mirrors
    /// [`RunReport::from_registry`] term for term, so merging the final
    /// absolute snapshots of a run yields a report **bitwise identical**
    /// to the one built from the live registry (fuzz-checked).
    pub fn from_snapshots(snaps: &[StatsSnapshot], local_times: &[f64]) -> RunReport {
        let zero = StatsSnapshot::zero();
        let mut ranks = Vec::with_capacity(local_times.len());
        for (rank, &local_time) in local_times.iter().enumerate() {
            let m = snaps.get(rank).unwrap_or(&zero);
            let compute = m.virt(VirtAcc::Compute);
            let wait = m.virt(VirtAcc::Wait) + m.virt(VirtAcc::Stall);
            let comm = m.virt(VirtAcc::Send)
                + m.virt(VirtAcc::RecvOverhead)
                + m.virt(VirtAcc::Retrans)
                + m.virt(VirtAcc::Drain);
            let recovery = m.virt(VirtAcc::Recovery);
            let overlap_hidden = m.virt(VirtAcc::OverlapHidden);
            ranks.push(RankReport {
                rank,
                local_time,
                compute,
                wait,
                comm,
                recovery,
                overlap_hidden,
                utilization: if local_time > 0.0 {
                    compute / local_time
                } else {
                    0.0
                },
                counters: Counter::ALL.iter().map(|&c| (c, m.counter(c))).collect(),
                gauges: GaugeId::ALL
                    .iter()
                    .map(|&g| {
                        let (v, mx) = m.gauges[g as usize];
                        (g, v, mx)
                    })
                    .collect(),
                hists: HistId::ALL
                    .iter()
                    .map(|&h| {
                        let hs = &m.hists[h as usize];
                        let buckets = hs
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, &c)| {
                                (c > 0).then_some((if i == 0 { 0 } else { 1u64 << i }, c))
                            })
                            .collect();
                        (h, hs.count, hs.sum, buckets)
                    })
                    .collect(),
            });
        }
        let makespan = local_times.iter().copied().fold(0.0, f64::max);
        RunReport {
            ranks,
            makespan,
            critical_path: None,
        }
    }

    /// Compare the *deterministic* subset of two reports — everything the
    /// virtual-time model pins down bitwise across backends: the makespan
    /// bits, every rank's clock-partition terms and utilization bits, and
    /// every logical counter. Wall-clock artifacts (histograms, gauge
    /// levels) and transport-local counters ([`Counter::CkptWrites`],
    /// [`Counter::CkptBytes`]) legitimately differ between a threaded and
    /// a multi-process run and are excluded. Returns one message per
    /// mismatch; empty means the reports agree.
    pub fn deterministic_diff(&self, other: &RunReport) -> Vec<String> {
        let mut diffs = Vec::new();
        if self.ranks.len() != other.ranks.len() {
            diffs.push(format!(
                "rank count: {} vs {}",
                self.ranks.len(),
                other.ranks.len()
            ));
            return diffs;
        }
        if self.makespan.to_bits() != other.makespan.to_bits() {
            diffs.push(format!(
                "makespan: {:.9} vs {:.9}",
                self.makespan, other.makespan
            ));
        }
        for (a, b) in self.ranks.iter().zip(&other.ranks) {
            let fields = [
                ("local_time", a.local_time, b.local_time),
                ("compute", a.compute, b.compute),
                ("wait", a.wait, b.wait),
                ("comm", a.comm, b.comm),
                ("recovery", a.recovery, b.recovery),
                ("overlap_hidden", a.overlap_hidden, b.overlap_hidden),
                ("utilization", a.utilization, b.utilization),
            ];
            for (name, x, y) in fields {
                if x.to_bits() != y.to_bits() {
                    diffs.push(format!("rank {} {}: {:.9} vs {:.9}", a.rank, name, x, y));
                }
            }
            for (&(c, x), &(_, y)) in a.counters.iter().zip(&b.counters) {
                if matches!(c, Counter::CkptWrites | Counter::CkptBytes) {
                    continue;
                }
                if x != y {
                    diffs.push(format!("rank {} {}: {} vs {}", a.rank, c.name(), x, y));
                }
            }
        }
        diffs
    }

    /// Sum of one counter across all ranks.
    pub fn total(&self, c: Counter) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.counters[c as usize].1)
            .sum::<u64>()
    }

    /// The rank with the latest local clock (the critical path), if any.
    pub fn slowest_rank(&self) -> Option<&RankReport> {
        self.ranks
            .iter()
            .max_by(|a, b| a.local_time.total_cmp(&b.local_time))
    }

    /// Hand-rolled JSON, same style as the bench artifacts
    /// (`schema: "tilecc-metrics-v1"`; see `docs/observability.md`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut j = String::from("{\n  \"schema\": \"tilecc-metrics-v1\",\n");
        let _ = writeln!(j, "  \"makespan\": {:.9},", self.makespan);
        if let Some(cp) = &self.critical_path {
            let _ = writeln!(j, "  \"critical_path\": {{");
            let _ = writeln!(j, "    \"length\": {:.9},", cp.length);
            let _ = writeln!(j, "    \"hops\": [");
            let nh = cp.hops.len();
            for (k, h) in cp.hops.iter().enumerate() {
                let from = h.from_rank.map_or("null".to_string(), |r| r.to_string());
                let _ = writeln!(
                    j,
                    "      {{\"rank\": {}, \"phase\": \"{}\", \"start\": {:.9}, \"end\": {:.9}, \"from_rank\": {}}}{}",
                    h.rank,
                    h.phase,
                    h.start,
                    h.end,
                    from,
                    if k + 1 < nh { "," } else { "" }
                );
            }
            let _ = writeln!(j, "    ]");
            let _ = writeln!(j, "  }},");
        }
        let _ = writeln!(j, "  \"ranks\": [");
        let nr = self.ranks.len();
        for (i, r) in self.ranks.iter().enumerate() {
            let _ = writeln!(j, "    {{");
            let _ = writeln!(j, "      \"rank\": {},", r.rank);
            let _ = writeln!(j, "      \"local_time\": {:.9},", r.local_time);
            let _ = writeln!(j, "      \"compute\": {:.9},", r.compute);
            let _ = writeln!(j, "      \"wait\": {:.9},", r.wait);
            let _ = writeln!(j, "      \"comm\": {:.9},", r.comm);
            let _ = writeln!(j, "      \"recovery\": {:.9},", r.recovery);
            let _ = writeln!(j, "      \"overlap_hidden\": {:.9},", r.overlap_hidden);
            let _ = writeln!(j, "      \"utilization\": {:.6},", r.utilization);
            let _ = writeln!(j, "      \"counters\": {{");
            let nc = r.counters.len();
            for (k, (c, v)) in r.counters.iter().enumerate() {
                let _ = writeln!(
                    j,
                    "        \"{}\": {}{}",
                    c.name(),
                    v,
                    if k + 1 < nc { "," } else { "" }
                );
            }
            let _ = writeln!(j, "      }},");
            let _ = writeln!(j, "      \"gauges\": {{");
            let ng = r.gauges.len();
            for (k, (g, v, mx)) in r.gauges.iter().enumerate() {
                let _ = writeln!(
                    j,
                    "        \"{}\": {{\"value\": {}, \"max\": {}}}{}",
                    g.name(),
                    v,
                    mx,
                    if k + 1 < ng { "," } else { "" }
                );
            }
            let _ = writeln!(j, "      }},");
            let _ = writeln!(j, "      \"histograms\": {{");
            let nh = r.hists.len();
            for (k, (h, count, sum, buckets)) in r.hists.iter().enumerate() {
                let bs: Vec<String> = buckets
                    .iter()
                    .map(|(lo, c)| format!("[{lo}, {c}]"))
                    .collect();
                let _ = writeln!(
                    j,
                    "        \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}{}",
                    h.name(),
                    count,
                    sum,
                    bs.join(", "),
                    if k + 1 < nh { "," } else { "" }
                );
            }
            let _ = writeln!(j, "      }}");
            let _ = writeln!(j, "    }}{}", if i + 1 < nr { "," } else { "" });
        }
        j.push_str("  ]\n}\n");
        j
    }

    /// Human-readable summary: utilization, compute/wait/comm split, wire
    /// traffic, tile mix and the slowest-rank critical path.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let n = self.ranks.len();
        let _ = writeln!(
            out,
            "run report: {n} rank{}, makespan {:.6} s",
            if n == 1 { "" } else { "s" },
            self.makespan
        );
        let (mut tc, mut tw, mut tm, mut tt) = (0.0, 0.0, 0.0, 0.0);
        for r in &self.ranks {
            tc += r.compute;
            tw += r.wait;
            tm += r.comm;
            tt += r.local_time;
        }
        if tt > 0.0 {
            let _ = writeln!(
                out,
                "  split      : compute {:.1}%  wait {:.1}%  comm {:.1}%  (of total rank time)",
                100.0 * tc / tt,
                100.0 * tw / tt,
                100.0 * tm / tt
            );
            let _ = writeln!(
                out,
                "  utilization: {:.1}% mean over ranks",
                100.0 * self.ranks.iter().map(|r| r.utilization).sum::<f64>() / n.max(1) as f64
            );
        }
        let _ = writeln!(
            out,
            "  traffic    : {} messages, {} bytes on the wire, {} retransmits, {} dups suppressed",
            self.total(Counter::MessagesSent),
            self.total(Counter::BytesSent),
            self.total(Counter::Retransmits),
            self.total(Counter::DupsSuppressed),
        );
        let _ = writeln!(
            out,
            "  tiles      : {} ({} interior, {} boundary), {} iterations",
            self.total(Counter::Tiles),
            self.total(Counter::InteriorTiles),
            self.total(Counter::BoundaryTiles),
            self.total(Counter::Iterations),
        );
        let vectorized = self.total(Counter::VectorizedPoints);
        if vectorized > 0 {
            let iters = self.total(Counter::Iterations).max(1);
            let _ = writeln!(
                out,
                "  vectorized : {vectorized} iterations through batched runs ({:.1}%)",
                100.0 * vectorized as f64 / iters as f64
            );
        }
        let hidden: f64 = self.ranks.iter().map(|r| r.overlap_hidden).sum();
        if hidden > 0.0 {
            let _ = writeln!(
                out,
                "  overlap    : {hidden:.6} s of comm-lane time hidden behind compute"
            );
        }
        let recoveries = self.total(Counter::Recoveries);
        if recoveries > 0 {
            let rec: f64 = self.ranks.iter().map(|r| r.recovery).sum();
            let _ = writeln!(
                out,
                "  recovery   : {recoveries} recoveries, {rec:.6} s re-executed ({} checkpoints)",
                self.total(Counter::Checkpoints)
            );
        }
        if let Some(cp) = &self.critical_path {
            let cross = cp.hops.iter().filter(|h| h.from_rank.is_some()).count();
            let _ = writeln!(
                out,
                "  critical   : {:.6} s dependency chain, {} hops ({} cross-rank)",
                cp.length,
                cp.hops.len(),
                cross
            );
            const SHOWN: usize = 16;
            for h in cp.hops.iter().take(SHOWN) {
                let via = match h.from_rank {
                    Some(s) => format!("  <- rank {s}"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "    {:>12.6} .. {:>12.6}  rank {:>3}  {:<8} {:.6} s{}",
                    h.start,
                    h.end,
                    h.rank,
                    h.phase,
                    h.duration(),
                    via
                );
            }
            if cp.hops.len() > SHOWN {
                let rest: f64 = cp.hops[SHOWN..].iter().map(|h| h.duration()).sum();
                let _ = writeln!(
                    out,
                    "    ... {} more hops ({rest:.6} s)",
                    cp.hops.len() - SHOWN
                );
            }
        } else if let Some(s) = self.slowest_rank() {
            let _ = writeln!(
                out,
                "  critical   : rank {} ({:.6} s = compute {:.6} + wait {:.6} + comm {:.6})",
                s.rank, s.local_time, s.compute, s.wait, s.comm
            );
        }
        for r in &self.ranks {
            let _ = writeln!(
                out,
                "  rank {:>3}   : {:.6} s  compute {:.6}  wait {:.6}  comm {:.6}  util {:>5.1}%",
                r.rank,
                r.local_time,
                r.compute,
                r.wait,
                r.comm,
                100.0 * r.utilization
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (artifact validation and `tilecc report`)
// ---------------------------------------------------------------------------

/// A tiny recursive-descent JSON reader: enough to validate the emitted
/// artifacts and re-render saved metrics, with zero dependencies.
pub mod json {
    /// A parsed JSON value.
    ///
    /// Integer lexemes (no `.`/`e`/`E`) parse to [`Json::Int`] so u64-sized
    /// counters round-trip exactly; routing everything through `f64` would
    /// silently lose precision above 2^53.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number with a fractional or exponent part.
        Num(f64),
        /// An integer lexeme, kept exact.
        Int(i128),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, fields in source order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as `f64` (integers convert; may round above 2^53).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(x) => Some(*x),
                Json::Int(x) => Some(*x as f64),
                _ => None,
            }
        }

        /// The value as `u64`, when it is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
                Json::Int(x) => u64::try_from(*x).ok(),
                _ => None,
            }
        }

        /// The exact integer value, when the lexeme was an integer.
        pub fn as_i128(&self) -> Option<i128> {
            match self {
                Json::Int(x) => Some(*x),
                _ => None,
            }
        }

        /// The string value.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The array elements.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The object fields, in source order.
        pub fn as_obj(&self) -> Option<&[(String, Json)]> {
            match self {
                Json::Obj(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Maximum container nesting the parser accepts. Recursion is bounded
    /// so adversarial input (e.g. 100k `[`s) reports a typed error instead
    /// of overflowing the stack.
    pub const MAX_DEPTH: usize = 128;

    struct P<'a> {
        s: &'a [u8],
        i: usize,
        depth: usize,
    }

    impl<'a> P<'a> {
        fn err<T>(&self, msg: &str) -> Result<T, String> {
            Err(format!("JSON error at byte {}: {}", self.i, msg))
        }

        fn ws(&mut self) {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.s.get(self.i).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.i += 1;
                Ok(())
            } else {
                self.err(&format!("expected `{}`", b as char))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            self.ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => self.lit("true", Json::Bool(true)),
                Some(b'f') => self.lit("false", Json::Bool(false)),
                Some(b'n') => self.lit("null", Json::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => self.err("expected a value"),
            }
        }

        fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
            if self.s[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                self.err(&format!("expected `{word}`"))
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.i;
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            let mut integral = true;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                if matches!(self.s[self.i], b'.' | b'e' | b'E') {
                    integral = false;
                }
                self.i += 1;
            }
            let lexeme = std::str::from_utf8(&self.s[start..self.i]).ok();
            // Integer lexemes stay exact via i128; anything with a fraction
            // or exponent (or beyond i128) takes the f64 path.
            if integral {
                if let Some(x) = lexeme.and_then(|t| t.parse::<i128>().ok()) {
                    return Ok(Json::Int(x));
                }
            }
            lexeme
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("JSON error at byte {start}: bad number"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return self.err("unterminated string"),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                if self.i + 4 >= self.s.len() {
                                    return self.err("truncated \\u escape");
                                }
                                let hex = std::str::from_utf8(&self.s[self.i + 1..self.i + 5])
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                                self.i += 4;
                            }
                            _ => return self.err("bad escape"),
                        }
                        self.i += 1;
                    }
                    Some(_) => {
                        // Copy a full UTF-8 scalar.
                        let rest = std::str::from_utf8(&self.s[self.i..])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        let ch = rest.chars().next().unwrap();
                        out.push(ch);
                        self.i += ch.len_utf8();
                    }
                }
            }
        }

        fn enter(&mut self) -> Result<(), String> {
            self.depth += 1;
            if self.depth > MAX_DEPTH {
                return self.err(&format!("nesting deeper than {MAX_DEPTH} levels"));
            }
            Ok(())
        }

        fn array(&mut self) -> Result<Json, String> {
            self.eat(b'[')?;
            self.enter()?;
            let mut items = Vec::new();
            self.ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                self.depth -= 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.ws();
                match self.peek() {
                    Some(b',') => {
                        self.i += 1;
                    }
                    Some(b']') => {
                        self.i += 1;
                        self.depth -= 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return self.err("expected `,` or `]`"),
                }
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.eat(b'{')?;
            self.enter()?;
            let mut fields = Vec::new();
            self.ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                self.depth -= 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.ws();
                let key = self.string()?;
                self.ws();
                self.eat(b':')?;
                let val = self.value()?;
                fields.push((key, val));
                self.ws();
                match self.peek() {
                    Some(b',') => {
                        self.i += 1;
                    }
                    Some(b'}') => {
                        self.i += 1;
                        self.depth -= 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return self.err("expected `,` or `}`"),
                }
            }
        }
    }

    /// Parse a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = P {
            s: s.as_bytes(),
            i: 0,
            depth: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.s.len() {
            return p.err("trailing data");
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let h = Histogram::new();
        h.observe(0);
        h.observe(5);
        h.observe(5);
        h.observe(1 << 40);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10 + (1 << 40));
        let nz = h.nonzero_buckets();
        assert_eq!(nz, vec![(0, 1), (4, 2), (1 << (HIST_BUCKETS - 1), 1)]);
    }

    #[test]
    fn gauge_tracks_high_water_mark() {
        let g = Gauge::new();
        g.set(3);
        g.set(7);
        g.set(2);
        assert_eq!(g.value(), 2);
        assert_eq!(g.max(), 7);
    }

    #[test]
    fn registry_grows_and_aggregates() {
        let reg = MetricsRegistry::new();
        let m0 = reg.rank_metrics(0);
        let m2 = reg.rank_metrics(2);
        assert_eq!(reg.rank_count(), 3);
        m0.add(Counter::BytesSent, 100);
        m2.add(Counter::BytesSent, 23);
        m2.virt_add(VirtAcc::Compute, 1.5);
        m2.virt_add(VirtAcc::Compute, 0.5);
        assert_eq!(m2.virt_get(VirtAcc::Compute), 2.0);
        let report = reg.run_report(&[1.0, 0.0, 4.0]);
        assert_eq!(report.total(Counter::BytesSent), 123);
        assert_eq!(report.makespan, 4.0);
        assert_eq!(report.slowest_rank().unwrap().rank, 2);
        assert_eq!(report.ranks[2].compute, 2.0);
        assert_eq!(report.ranks[2].utilization, 0.5);
    }

    #[test]
    fn run_report_json_parses_and_round_trips_fields() {
        let reg = MetricsRegistry::new();
        let m = reg.rank_metrics(0);
        m.add(Counter::MessagesSent, 7);
        m.hist(HistId::ComputeTileNs).observe(100);
        m.gauge(GaugeId::PendingDepth).set(2);
        let report = reg.run_report(&[2.5]);
        let j = json::parse(&report.to_json()).expect("metrics JSON must parse");
        assert_eq!(
            j.get("schema").and_then(|s| s.as_str()),
            Some("tilecc-metrics-v1")
        );
        let ranks = j.get("ranks").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(ranks.len(), 1);
        let counters = ranks[0].get("counters").unwrap();
        assert_eq!(
            counters.get("messages_sent").and_then(|v| v.as_u64()),
            Some(7)
        );
        let hist = ranks[0].get("histograms").unwrap().get("compute_tile_ns");
        assert_eq!(
            hist.and_then(|h| h.get("count")).and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn chrome_trace_is_valid_json_with_metadata() {
        let reg = MetricsRegistry::new();
        let mut obs = RankObs::new(reg.clone(), 0);
        let t0 = obs.now_ns();
        obs.span(Phase::Compute, t0, (0.0, 1.0), 64);
        obs.span(Phase::Send, obs.now_ns(), (1.0, 1.25), 128);
        drop(obs); // flush
        reg.driver_span(Phase::Plan, "fourier-motzkin", 0, 0);
        let trace = reg.chrome_trace();
        let j = json::parse(&trace).expect("chrome trace must parse");
        let events = j.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // 2 process_name + 3 thread_name + 3 spans.
        assert_eq!(events.len(), 8);
        let compute = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("compute"))
            .unwrap();
        assert_eq!(compute.get("pid").and_then(|p| p.as_u64()), Some(1));
        assert_eq!(compute.get("ts").and_then(|t| t.as_f64()), Some(0.0));
        assert_eq!(compute.get("dur").and_then(|t| t.as_f64()), Some(1e6));
    }

    #[test]
    fn virtual_export_keeps_rank_lanes_monotone() {
        let reg = MetricsRegistry::new();
        let mut obs = RankObs::new(reg.clone(), 3);
        for k in 0..5 {
            let t0 = obs.now_ns();
            obs.span(Phase::Compute, t0, (k as f64, k as f64 + 0.5), 1);
        }
        obs.flush();
        let j = json::parse(&reg.chrome_trace()).unwrap();
        let events = j.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        let mut last = f64::NEG_INFINITY;
        for e in events {
            if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            let ts = e.get("ts").and_then(|t| t.as_f64()).unwrap();
            assert!(ts >= last, "per-lane timestamps must be monotone");
            last = ts;
        }
    }

    #[test]
    fn json_parser_handles_the_usual_suspects() {
        use json::{parse, Json};
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(
            parse(" [1, 2.5, -3e2] ").unwrap().as_arr().unwrap().len(),
            3
        );
        let obj = parse(r#"{"a": "x\ny", "b": [true, false], "c": {"d": 1}}"#).unwrap();
        assert_eq!(obj.get("a").and_then(|v| v.as_str()), Some("x\ny"));
        assert_eq!(
            obj.get("c")
                .and_then(|c| c.get("d"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"u": "A"}"#).unwrap().get("u").unwrap().as_str() == Some("A"));
    }

    #[test]
    fn json_integers_round_trip_exactly() {
        use json::{parse, Json};
        // u64::MAX and the first values that f64 cannot represent exactly.
        for v in [
            u64::MAX,
            (1u64 << 53) - 1,
            1u64 << 53,
            (1u64 << 53) + 1,
            0,
            1,
        ] {
            let doc = format!("{{\"c\": {v}}}");
            let j = parse(&doc).expect("integer JSON must parse");
            assert_eq!(
                j.get("c").and_then(|x| x.as_u64()),
                Some(v),
                "u64 {v} must round-trip exactly"
            );
            assert_eq!(j.get("c").and_then(|x| x.as_i128()), Some(v as i128));
        }
        // Distinguishes 2^53 from 2^53 + 1, which f64 cannot.
        let a = parse("9007199254740992").unwrap();
        let b = parse("9007199254740993").unwrap();
        assert_ne!(a, b);
        // Negative integers and fractional/exponent forms keep working.
        assert_eq!(parse("-42").unwrap().as_i128(), Some(-42));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("-3e2").unwrap().as_f64(), Some(-300.0));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn run_report_counters_survive_json_at_u64_extremes() {
        let reg = MetricsRegistry::new();
        let m = reg.rank_metrics(0);
        m.add(Counter::BytesSent, u64::MAX);
        m.add(Counter::Iterations, (1u64 << 53) + 1);
        let report = reg.run_report(&[1.0]);
        let j = json::parse(&report.to_json()).expect("metrics JSON must parse");
        let counters = j.get("ranks").and_then(|r| r.as_arr()).unwrap()[0]
            .get("counters")
            .unwrap();
        assert_eq!(
            counters.get("bytes_sent").and_then(|v| v.as_u64()),
            Some(u64::MAX)
        );
        assert_eq!(
            counters.get("iterations").and_then(|v| v.as_u64()),
            Some((1u64 << 53) + 1)
        );
    }

    #[test]
    fn rank_report_split_partitions_local_time() {
        let reg = MetricsRegistry::new();
        let m = reg.rank_metrics(0);
        m.virt_add(VirtAcc::Compute, 3.0);
        m.virt_add(VirtAcc::Wait, 1.0);
        m.virt_add(VirtAcc::Send, 0.5);
        m.virt_add(VirtAcc::RecvOverhead, 0.25);
        m.virt_add(VirtAcc::Retrans, 0.125);
        m.virt_add(VirtAcc::Drain, 0.0625);
        m.virt_add(VirtAcc::Recovery, 0.03125);
        // OverlapHidden is informational only: must NOT enter the partition.
        m.virt_add(VirtAcc::OverlapHidden, 100.0);
        let report = reg.run_report(&[4.96875]);
        let r = &report.ranks[0];
        assert!((r.compute + r.wait + r.comm + r.recovery - r.local_time).abs() < 1e-12);
        assert_eq!(r.recovery, 0.03125);
        assert_eq!(r.overlap_hidden, 100.0);
    }

    /// A metrics slot with something in every field family, including f64
    /// values whose bit patterns a numeric delta could not reproduce.
    fn populated_metrics() -> Arc<RankMetrics> {
        let m = Arc::new(RankMetrics::new());
        m.add(Counter::MessagesSent, 42);
        m.add(Counter::BytesSent, u64::MAX / 3);
        m.add(Counter::Retransmits, 7);
        m.add(Counter::CkptWrites, 2);
        m.virt_add(VirtAcc::Compute, 0.1 + 0.2); // 0.30000000000000004
        m.virt_add(VirtAcc::Wait, 1.0 / 3.0);
        m.virt_add(VirtAcc::Drain, 5e-324); // subnormal
        m.gauge(GaugeId::PendingDepth).set(9);
        m.gauge(GaugeId::PendingDepth).set(3);
        m.gauge(GaugeId::WriterQueueDepth).set(17);
        m.hist(HistId::RetransNs).observe(1024);
        m.hist(HistId::RetransNs).observe(1 << 50);
        m.hist(HistId::ComputeTileNs).observe(0);
        m
    }

    #[test]
    fn stats_snapshot_delta_chain_round_trips_bitwise() {
        let m = populated_metrics();
        let a = StatsSnapshot::capture(&m);
        // Absolute frame: a delta against zero().
        let abs = a.encode_delta(&StatsSnapshot::zero());
        let got = StatsSnapshot::apply_delta(&StatsSnapshot::zero(), &abs).unwrap();
        assert_eq!(got, a);

        // Mutate and chain a second (incremental) frame on top.
        m.add(Counter::MessagesSent, 1);
        m.virt_add(VirtAcc::Compute, 0.25);
        m.gauge(GaugeId::WriterQueueDepth).set(1);
        m.hist(HistId::RetransNs).observe(3);
        let b = StatsSnapshot::capture(&m);
        let delta = b.encode_delta(&a);
        let got = StatsSnapshot::apply_delta(&got, &delta).unwrap();
        assert_eq!(got, b);
        // Identical consecutive snapshots encode compactly: one zero byte
        // per field.
        let idle = b.encode_delta(&b);
        assert!(idle.iter().all(|&x| x == 0), "{idle:?}");
    }

    #[test]
    fn stats_snapshot_delta_survives_counter_rewind() {
        // Crash recovery rewinds counters DOWN; the signed zigzag delta
        // must carry the decrease (an unsigned delta would wrap).
        let m = populated_metrics();
        let before = StatsSnapshot::capture(&m);
        m.set(Counter::MessagesSent, 5); // rewound below the previous 42
        m.virt_set(VirtAcc::Compute, 0.125);
        let after = StatsSnapshot::capture(&m);
        let delta = after.encode_delta(&before);
        let got = StatsSnapshot::apply_delta(&before, &delta).unwrap();
        assert_eq!(got, after);
        assert_eq!(got.counter(Counter::MessagesSent), 5);
        assert_eq!(got.virt(VirtAcc::Compute).to_bits(), 0.125f64.to_bits());
    }

    #[test]
    fn stats_snapshot_rejects_corrupt_payloads() {
        let m = populated_metrics();
        let snap = StatsSnapshot::capture(&m);
        let zero = StatsSnapshot::zero();
        let good = snap.encode_delta(&zero);
        // Truncation anywhere must surface as Err, never a panic.
        for cut in [0, 1, good.len() / 2, good.len() - 1] {
            assert!(
                StatsSnapshot::apply_delta(&zero, &good[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        // Trailing garbage is rejected too.
        let mut long = good.clone();
        long.push(0);
        assert!(StatsSnapshot::apply_delta(&zero, &long).is_err());
        // An unterminated varint (all continuation bits) is rejected.
        assert!(StatsSnapshot::apply_delta(&zero, &[0xFF; 64]).is_err());
    }

    #[test]
    fn stats_snapshot_local_clock_matches_partition() {
        let m = populated_metrics();
        m.virt_add(VirtAcc::OverlapHidden, 9.0); // informational: excluded
        let snap = StatsSnapshot::capture(&m);
        let expect = VirtAcc::ALL
            .iter()
            .filter(|&&a| a != VirtAcc::OverlapHidden)
            .map(|&a| m.virt_get(a))
            .sum::<f64>();
        assert_eq!(snap.local_clock().to_bits(), expect.to_bits());
    }

    #[test]
    fn report_from_snapshots_matches_registry_bitwise() {
        // The driver-side merge path must reproduce the registry-built
        // report byte for byte — the cross-backend identity the TCP
        // driver's merged `--metrics-out` relies on.
        let reg = MetricsRegistry::new();
        for rank in 0..3 {
            let m = reg.rank_metrics(rank);
            m.add(Counter::MessagesSent, 10 + rank as u64);
            m.add(Counter::BytesSent, (rank as u64 + 1) * 1000);
            m.virt_add(VirtAcc::Compute, 0.1 * (rank as f64 + 1.0) / 3.0);
            m.virt_add(VirtAcc::Wait, 1.0 / 7.0);
            m.virt_add(VirtAcc::Send, 0.01);
            m.gauge(GaugeId::PendingDepth).set(rank as u64);
            m.hist(HistId::RecvWaitNs).observe(123 << rank);
        }
        let local_times = [0.5, 0.7, 0.6];
        let snaps: Vec<StatsSnapshot> = (0..3)
            .map(|r| StatsSnapshot::capture(&reg.rank_metrics(r)))
            .collect();
        let from_reg = RunReport::from_registry(&reg, &local_times).to_json();
        let from_snaps = RunReport::from_snapshots(&snaps, &local_times).to_json();
        assert_eq!(from_reg, from_snaps);
        // And the snapshots survive a wire round-trip first.
        let wired: Vec<StatsSnapshot> = snaps
            .iter()
            .map(|s| {
                let payload = s.encode_delta(&StatsSnapshot::zero());
                StatsSnapshot::apply_delta(&StatsSnapshot::zero(), &payload).unwrap()
            })
            .collect();
        assert_eq!(
            RunReport::from_snapshots(&wired, &local_times).to_json(),
            from_reg
        );
    }

    /// Two ranks, one message: rank 0 computes then sends, rank 1 blocks in
    /// a receive and computes on. The dependency-true path must cross from
    /// rank 1 back to rank 0 through the send→recv edge.
    fn cross_rank_spans(reg: &Arc<MetricsRegistry>) {
        let edge = SpanEdge {
            peer: 1,
            tag: 5,
            seq: 1,
        };
        let mut o0 = RankObs::new(reg.clone(), 0);
        let t = o0.now_ns();
        o0.span(Phase::Compute, t, (0.0, 1.0), 100);
        o0.edge_span(Phase::Send, t, (1.0, 1.2), 64, edge);
        drop(o0);
        let mut o1 = RankObs::new(reg.clone(), 1);
        o1.edge_span(
            Phase::Recv,
            t,
            (0.0, 1.3),
            64,
            SpanEdge {
                peer: 0,
                tag: 5,
                seq: 1,
            },
        );
        o1.span(Phase::Compute, t, (1.3, 2.0), 70);
        drop(o1);
    }

    #[test]
    fn critical_path_follows_send_recv_edges() {
        let reg = MetricsRegistry::new();
        cross_rank_spans(&reg);
        let local_times = [1.2, 2.0];
        let cp = reg
            .critical_path(&local_times)
            .expect("spans were recorded");
        // The chain tiles (0, makespan] exactly.
        assert_eq!(cp.length, 2.0);
        assert!(cp.length >= local_times.iter().fold(0.0f64, |a, &b| a.max(b)));
        let hop_sum: f64 = cp.hops.iter().map(|h| h.duration()).sum();
        assert!((hop_sum - cp.length).abs() < 1e-9, "{cp:?}");
        assert_eq!(cp.hops.first().unwrap().start, 0.0);
        assert_eq!(cp.hops.last().unwrap().end, 2.0);
        for w in cp.hops.windows(2) {
            assert_eq!(w[0].end, w[1].start, "hops must telescope: {cp:?}");
        }
        // The walk crossed to rank 0 through the recv: the hand-off hop
        // starts the instant the matched send completed (1.2).
        let cross = cp
            .hops
            .iter()
            .find(|h| h.from_rank.is_some())
            .expect("one cross-rank hop");
        assert_eq!(cross.rank, 1);
        assert_eq!(cross.from_rank, Some(0));
        assert_eq!(cross.phase, "recv");
        assert_eq!(cross.start, 1.2);
        assert_eq!(cross.end, 1.3);
        // Before the hand-off the path runs on rank 0, after it on rank 1.
        assert!(cp
            .hops
            .iter()
            .take_while(|h| h.from_rank.is_none())
            .all(|h| h.rank == 0));
        assert_eq!(cp.hops.last().unwrap().rank, 1);
        assert_eq!(cp.hops.last().unwrap().phase, "compute");
    }

    #[test]
    fn critical_path_needs_rank_spans() {
        // A driver-only registry (the multi-process case) has nothing to
        // walk: slowest-rank stays the report's fallback.
        let reg = MetricsRegistry::new();
        reg.driver_span(Phase::Plan, "plan", 0, 0);
        assert!(reg.critical_path(&[1.0, 2.0]).is_none());
        assert!(critical_path_from_spans(&[], &[]).is_none());
    }

    #[test]
    fn critical_path_flows_land_in_trace_export() {
        let reg = MetricsRegistry::new();
        cross_rank_spans(&reg);
        let cp = reg.critical_path(&[1.2, 2.0]).unwrap();
        let trace = reg.chrome_trace_with_path(ExportClock::Virtual, Some(&cp));
        let j = json::parse(&trace).expect("trace with flows must parse");
        let events = j.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert_eq!(phases.iter().filter(|&&p| p == "s").count(), 1);
        assert_eq!(phases.iter().filter(|&&p| p == "f").count(), 1);
        // Flow arrows carry coordinates only on the virtual clock.
        let wall = reg.chrome_trace_with_path(ExportClock::Wall, Some(&cp));
        assert!(!wall.contains("\"ph\": \"s\""), "no flows on wall clock");
    }

    #[test]
    fn json_parser_bounds_recursion_depth() {
        // MAX_DEPTH levels parse; one more is a typed error; absurd depth
        // must not overflow the stack.
        let ok = format!(
            "{}1{}",
            "[".repeat(json::MAX_DEPTH),
            "]".repeat(json::MAX_DEPTH)
        );
        assert!(json::parse(&ok).is_ok());
        let deep = format!(
            "{}1{}",
            "[".repeat(json::MAX_DEPTH + 1),
            "]".repeat(json::MAX_DEPTH + 1)
        );
        let e = json::parse(&deep).unwrap_err();
        assert!(e.contains("nesting"), "{e}");
        let absurd = "[".repeat(10_000);
        assert!(json::parse(&absurd).is_err()); // typed error, no overflow
        let mixed = format!("{}{}", "{\"k\":".repeat(10_000), "[");
        assert!(json::parse(&mixed).is_err());
    }

    #[test]
    fn json_extreme_f64_round_trip() {
        for v in [
            f64::MAX,
            f64::MIN_POSITIVE, // smallest normal
            5e-324,            // smallest subnormal
            1e308,
            -1.7976931348623157e308,
        ] {
            let doc = format!("[{v:e}]");
            let j = json::parse(&doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
            let got = j.as_arr().unwrap()[0].as_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits(), "{v:e} must round-trip bitwise");
        }
    }

    #[test]
    fn histogram_power_of_two_boundaries_are_deterministic() {
        // An exact power of two is always the *floor* of its bucket: 2^k
        // lands in bucket k, 2^k - 1 in bucket k-1 — no boundary value can
        // flap between buckets.
        for k in 1..63u32 {
            let v = 1u64 << k;
            let expect = (k as usize).min(HIST_BUCKETS - 1);
            assert_eq!(Histogram::bucket_of(v), expect, "2^{k}");
            let below = (k as usize - 1).min(HIST_BUCKETS - 1);
            assert_eq!(Histogram::bucket_of(v - 1), below, "2^{k} - 1");
        }
        // The reported floor is the bucket's power of two.
        let h = Histogram::new();
        h.observe(4096);
        assert_eq!(h.nonzero_buckets(), vec![(4096, 1)]);
    }
}
