//! Cluster-wide observability: structured span tracing, a per-rank metrics
//! registry, and Chrome-trace/Perfetto export.
//!
//! The virtual-time [`crate::trace`] module answers *"what does the modelled
//! machine do?"*; this module answers *"where do the ranks actually spend
//! their time?"* — and makes both inspectable outside the process:
//!
//! * [`MetricsRegistry`] — one lock-free slot of atomic counters, gauges and
//!   fixed-bucket histograms per rank, shared by `Arc` between the engine,
//!   the executor and the driver. Ranks never contend: each rank thread is
//!   the only writer of its own slot.
//! * [`Span`]s — structured phase intervals (lower, plan, compile-chain,
//!   compute, pack, send, recv, unpack, gather) carrying **both** wall-clock
//!   nanoseconds (from a shared epoch) and the engine's virtual-clock
//!   timestamps. Rank threads buffer spans locally and flush once at exit.
//! * [`MetricsRegistry::chrome_trace`] — trace-event JSON loadable in
//!   `chrome://tracing` / Perfetto: one pid per rank (rank *r* is pid
//!   `r + 1`; pid 0 is the driver/compiler), one tid lane per phase kind.
//! * [`RunReport`] — the per-rank compute/wait/comm split (which sums to
//!   each rank's virtual makespan exactly), utilization, traffic and tile
//!   counters, serialized with the same hand-rolled JSON style as the bench
//!   artifacts, plus a human-readable text rendering.
//!
//! Observability is strictly opt-in: with `EngineOptions::obs == None` the
//! engine and executor only ever test an `Option` that is `None`, so the
//! hot paths are unchanged (see `perf --obs-overhead`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The pid used for driver/compiler-side spans in the Chrome trace; rank
/// `r`'s spans live on pid `r + 1`.
pub const DRIVER_PID: u32 = 0;

/// Span taxonomy: one variant per pipeline phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Frontend: source text → loop-nest model.
    Lower,
    /// Plan construction: validation, HNF/FM tiled space, distribution,
    /// communication plan, LDS geometry.
    Plan,
    /// `CompiledChain` lowering (flat-index execution tables).
    CompileChain,
    /// A tile's kernel loop on a rank.
    Compute,
    /// Packing a communication region into a message payload.
    Pack,
    /// Message injection (engine-side).
    Send,
    /// Blocking receive (engine-side).
    Recv,
    /// Unpacking a received payload into the LDS.
    Unpack,
    /// Writing a rank's LDS back into the global data space (driver-side).
    Gather,
    /// Draining the rank's comm lane under the overlapped strategy: the
    /// residual send/transit time not hidden behind interior compute.
    Overlap,
}

impl Phase {
    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Lower => "lower",
            Phase::Plan => "plan",
            Phase::CompileChain => "compile-chain",
            Phase::Compute => "compute",
            Phase::Pack => "pack",
            Phase::Send => "send",
            Phase::Recv => "recv",
            Phase::Unpack => "unpack",
            Phase::Gather => "gather",
            Phase::Overlap => "overlap",
        }
    }

    /// The tid lane this phase renders on within its pid.
    pub fn lane(self) -> u32 {
        match self {
            Phase::Compute => 0,
            Phase::Recv => 1,
            Phase::Send => 2,
            Phase::Pack => 3,
            Phase::Unpack => 4,
            Phase::Overlap => 5,
            // Driver-side lanes (pid 0).
            Phase::Lower => 0,
            Phase::Plan => 1,
            Phase::CompileChain => 2,
            Phase::Gather => 3,
        }
    }
}

/// One traced interval. `virt` is the engine's virtual-clock interval in
/// seconds (absent for driver-side spans, which have no virtual clock).
#[derive(Clone, Debug)]
pub struct Span {
    /// The phase the span belongs to.
    pub phase: Phase,
    /// Event name (defaults to the phase name; driver spans may refine it,
    /// e.g. `"fourier-motzkin"` under [`Phase::Plan`]).
    pub name: &'static str,
    /// Chrome-trace pid: [`DRIVER_PID`] or `rank + 1`.
    pub pid: u32,
    /// Wall-clock start in nanoseconds since the registry epoch.
    pub wall_start_ns: u64,
    /// Wall-clock end in nanoseconds since the registry epoch.
    pub wall_end_ns: u64,
    /// Virtual-clock interval in seconds, when the span ran under the
    /// engine's virtual clock.
    pub virt: Option<(f64, f64)>,
    /// Phase-specific magnitude: iterations for compute, bytes for
    /// pack/send/recv/unpack, rank for gather, 0 otherwise.
    pub detail: u64,
}

/// Monotonically named counters, one cell per rank. Plain `u64` adds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Messages handed to the transport.
    MessagesSent,
    /// Nominal bytes of every sent message.
    BytesSent,
    /// Messages accepted by the receive path.
    MessagesReceived,
    /// Nominal bytes of every accepted message.
    BytesReceived,
    /// Transmission attempts repeated by the reliability layer.
    Retransmits,
    /// Envelopes discarded by receiver-side duplicate suppression.
    DupsSuppressed,
    /// Fault-plan drop decisions that fired.
    FaultDrops,
    /// Fault-plan duplicate decisions that fired.
    FaultDups,
    /// Fault-plan reorder decisions that fired.
    FaultReorders,
    /// Fault-plan delay decisions that fired.
    FaultDelays,
    /// Tiles executed.
    Tiles,
    /// Dense-interior tiles (compiled fast path, no bounds clamping).
    InteriorTiles,
    /// Boundary tiles (clamped against the iteration-space box).
    BoundaryTiles,
    /// Loop iterations executed.
    Iterations,
    /// Tiles dispatched through the compiled flat-index path.
    CompiledDispatches,
    /// Tiles dispatched through the per-point reference path.
    ReferenceDispatches,
    /// Iterations computed through batched affine-run kernel dispatches
    /// (the vectorized interior path) rather than per-point calls. A
    /// dispatch-shape counter like the two above: bitwise-identical
    /// strategies may legitimately differ on it.
    VectorizedPoints,
    /// Recovery checkpoints taken.
    Checkpoints,
    /// Crash recoveries performed (checkpoint restores / respawns).
    Recoveries,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 19;
    /// Every counter, in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::MessagesSent,
        Counter::BytesSent,
        Counter::MessagesReceived,
        Counter::BytesReceived,
        Counter::Retransmits,
        Counter::DupsSuppressed,
        Counter::FaultDrops,
        Counter::FaultDups,
        Counter::FaultReorders,
        Counter::FaultDelays,
        Counter::Tiles,
        Counter::InteriorTiles,
        Counter::BoundaryTiles,
        Counter::Iterations,
        Counter::CompiledDispatches,
        Counter::ReferenceDispatches,
        Counter::VectorizedPoints,
        Counter::Checkpoints,
        Counter::Recoveries,
    ];

    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MessagesSent => "messages_sent",
            Counter::BytesSent => "bytes_sent",
            Counter::MessagesReceived => "messages_received",
            Counter::BytesReceived => "bytes_received",
            Counter::Retransmits => "retransmits",
            Counter::DupsSuppressed => "dups_suppressed",
            Counter::FaultDrops => "fault_drops",
            Counter::FaultDups => "fault_dups",
            Counter::FaultReorders => "fault_reorders",
            Counter::FaultDelays => "fault_delays",
            Counter::Tiles => "tiles",
            Counter::InteriorTiles => "interior_tiles",
            Counter::BoundaryTiles => "boundary_tiles",
            Counter::Iterations => "iterations",
            Counter::CompiledDispatches => "compiled_dispatches",
            Counter::ReferenceDispatches => "reference_dispatches",
            Counter::VectorizedPoints => "vectorized_points",
            Counter::Checkpoints => "checkpoints",
            Counter::Recoveries => "recoveries",
        }
    }
}

/// Level gauges: current value plus high-water mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GaugeId {
    /// Arrived-but-unmatched envelopes buffered by MPI-style tag matching.
    PendingDepth,
    /// Out-of-order arrivals awaiting re-sequencing.
    ResequenceDepth,
    /// Accepted sends not yet on the wire (reorder holdbacks).
    OutstandingSends,
    /// Wall nanoseconds the TCP backend spent establishing its full mesh
    /// (rendezvous + peer handshakes). Set once per run.
    ConnectNs,
    /// Envelopes retained in this rank's outgoing replay logs awaiting a
    /// receiver checkpoint ack (max over links; the high-water mark bounds
    /// the recovery replay window).
    ReplayLogDepth,
}

impl GaugeId {
    /// Number of gauge ids (update together with [`GaugeId::ALL`]).
    pub const COUNT: usize = 5;
    /// All gauge ids, in storage order.
    pub const ALL: [GaugeId; GaugeId::COUNT] = [
        GaugeId::PendingDepth,
        GaugeId::ResequenceDepth,
        GaugeId::OutstandingSends,
        GaugeId::ConnectNs,
        GaugeId::ReplayLogDepth,
    ];

    /// Stable export name of this gauge.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::PendingDepth => "pending_depth",
            GaugeId::ResequenceDepth => "resequence_depth",
            GaugeId::OutstandingSends => "outstanding_sends",
            GaugeId::ConnectNs => "connect_ns",
            GaugeId::ReplayLogDepth => "replay_log_depth",
        }
    }
}

/// Fixed-bucket wall-clock histograms (power-of-two nanosecond buckets).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistId {
    /// Wall nanoseconds per tile's kernel loop.
    ComputeTileNs,
    /// Wall nanoseconds blocked in a receive (including tag-mismatch
    /// buffering of unrelated arrivals).
    RecvWaitNs,
    /// Wall nanoseconds packing one communication region.
    PackNs,
    /// Wall nanoseconds unpacking one payload.
    UnpackNs,
    /// Wall nanoseconds gathering one tile into the global data space.
    GatherNs,
    /// Wall nanoseconds encoding one envelope to wire bytes (TCP backend).
    SerializeNs,
    /// Wall nanoseconds decoding one wire frame back into an envelope
    /// (TCP backend; recorded by the reader thread).
    DeserializeNs,
}

impl HistId {
    /// Number of histogram ids (update together with [`HistId::ALL`]).
    pub const COUNT: usize = 7;
    /// All histogram ids, in storage order.
    pub const ALL: [HistId; HistId::COUNT] = [
        HistId::ComputeTileNs,
        HistId::RecvWaitNs,
        HistId::PackNs,
        HistId::UnpackNs,
        HistId::GatherNs,
        HistId::SerializeNs,
        HistId::DeserializeNs,
    ];

    /// Stable export name of this histogram.
    pub fn name(self) -> &'static str {
        match self {
            HistId::ComputeTileNs => "compute_tile_ns",
            HistId::RecvWaitNs => "recv_wait_ns",
            HistId::PackNs => "pack_ns",
            HistId::UnpackNs => "unpack_ns",
            HistId::GatherNs => "gather_ns",
            HistId::SerializeNs => "serialize_ns",
            HistId::DeserializeNs => "deserialize_ns",
        }
    }
}

/// Virtual-time accumulators; together they partition a rank's final
/// virtual clock exactly (see [`RunReport`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VirtAcc {
    /// `advance_compute` charges.
    Compute,
    /// True data-dependence waiting in receives.
    Wait,
    /// Sender-side injection cost (zero under the overlapped scheme).
    Send,
    /// Receiver-side per-message overhead (zero under overlapped).
    RecvOverhead,
    /// Retransmission backoff + repeated injections.
    Retrans,
    /// Injected stalls.
    Stall,
    /// Comm-lane overshoot paid when draining outstanding overlapped sends
    /// (the part of the lane that was *not* hidden behind compute).
    Drain,
    /// Comm-lane busy time hidden behind compute under the overlapped
    /// strategy. Informational: NOT part of the clock partition.
    OverlapHidden,
    /// Virtual time re-executed after a crash recovery, charged once when
    /// the rank settles its recovery debt at the end of the run.
    Recovery,
}

impl VirtAcc {
    /// Number of accumulators.
    pub const COUNT: usize = 9;
    /// Every accumulator, in index order.
    pub const ALL: [VirtAcc; VirtAcc::COUNT] = [
        VirtAcc::Compute,
        VirtAcc::Wait,
        VirtAcc::Send,
        VirtAcc::RecvOverhead,
        VirtAcc::Retrans,
        VirtAcc::Stall,
        VirtAcc::Drain,
        VirtAcc::OverlapHidden,
        VirtAcc::Recovery,
    ];

    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            VirtAcc::Compute => "compute_virt",
            VirtAcc::Wait => "wait_virt",
            VirtAcc::Send => "send_virt",
            VirtAcc::RecvOverhead => "recv_overhead_virt",
            VirtAcc::Retrans => "retrans_virt",
            VirtAcc::Stall => "stall_virt",
            VirtAcc::Drain => "drain_virt",
            VirtAcc::OverlapHidden => "overlap_hidden_virt",
            VirtAcc::Recovery => "recovery_virt",
        }
    }
}

/// Number of power-of-two histogram buckets: bucket `i` counts values in
/// `[2^i, 2^(i+1))` ns (bucket 0 also takes 0), the last bucket is
/// unbounded (≥ ~67 ms).
pub const HIST_BUCKETS: usize = 27;

/// A fixed-bucket histogram with atomic cells.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index for a value: `floor(log2(v))` clamped to the range.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((63 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Record one value (thread-safe; cells are atomic).
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// `(bucket_lower_bound, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((if i == 0 { 0 } else { 1u64 << i }, c))
            })
            .collect()
    }
}

/// A level gauge: last set value and high-water mark.
pub struct Gauge {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Set the level, updating the high-water mark.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Last set value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// One rank's metrics slot. Counters and histograms are atomic so the slot
/// can be shared by `Arc`, but by construction each rank thread is the only
/// writer of its own slot — reads from the driver after the run race with
/// nothing.
pub struct RankMetrics {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [Gauge; GaugeId::COUNT],
    hists: [Histogram; HistId::COUNT],
    /// f64 accumulators stored as bits; single-writer, so load-add-store is
    /// race-free.
    virt: [AtomicU64; VirtAcc::COUNT],
}

impl RankMetrics {
    fn new() -> Self {
        RankMetrics {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| Gauge::new()),
            hists: std::array::from_fn(|_| Histogram::new()),
            virt: std::array::from_fn(|_| AtomicU64::new(0.0f64.to_bits())),
        }
    }

    /// Add `v` to counter `c`.
    pub fn add(&self, c: Counter, v: u64) {
        self.counters[c as usize].fetch_add(v, Ordering::Relaxed);
    }

    /// Current value of counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Overwrite counter `c` (crash recovery rewinds counters to a
    /// checkpoint snapshot; single-writer discipline applies).
    pub fn set(&self, c: Counter, v: u64) {
        self.counters[c as usize].store(v, Ordering::Relaxed);
    }

    /// The gauge cell for `g`.
    pub fn gauge(&self, g: GaugeId) -> &Gauge {
        &self.gauges[g as usize]
    }

    /// The histogram for `h`.
    pub fn hist(&self, h: HistId) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Accumulate virtual seconds. Only the owning rank thread may call
    /// this (single-writer discipline).
    pub fn virt_add(&self, a: VirtAcc, dv: f64) {
        let cell = &self.virt[a as usize];
        let cur = f64::from_bits(cell.load(Ordering::Relaxed));
        cell.store((cur + dv).to_bits(), Ordering::Relaxed);
    }

    /// Current value of accumulator `a` in virtual seconds.
    pub fn virt_get(&self, a: VirtAcc) -> f64 {
        f64::from_bits(self.virt[a as usize].load(Ordering::Relaxed))
    }

    /// Overwrite accumulator `a` (crash recovery rewinds the virtual
    /// accumulators to a checkpoint snapshot; single-writer discipline
    /// applies).
    pub fn virt_set(&self, a: VirtAcc, v: f64) {
        self.virt[a as usize].store(v.to_bits(), Ordering::Relaxed);
    }
}

/// The shared observability session: per-rank metrics slots, the collected
/// spans, and the wall-clock epoch every span timestamp is relative to.
pub struct MetricsRegistry {
    epoch: Instant,
    ranks: Mutex<Vec<Arc<RankMetrics>>>,
    spans: Mutex<Vec<Span>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsRegistry({} ranks)", self.rank_count())
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            epoch: Instant::now(),
            ranks: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
        }
    }
}

impl MetricsRegistry {
    /// A fresh shared registry with its epoch at "now".
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Nanoseconds since the registry epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The metrics slot for `rank`, growing the registry as needed.
    pub fn rank_metrics(&self, rank: usize) -> Arc<RankMetrics> {
        let mut ranks = self.ranks.lock().expect("obs registry poisoned");
        while ranks.len() <= rank {
            ranks.push(Arc::new(RankMetrics::new()));
        }
        ranks[rank].clone()
    }

    /// Number of rank slots allocated so far.
    pub fn rank_count(&self) -> usize {
        self.ranks.lock().expect("obs registry poisoned").len()
    }

    /// Snapshot of every rank slot.
    pub fn ranks(&self) -> Vec<Arc<RankMetrics>> {
        self.ranks.lock().expect("obs registry poisoned").clone()
    }

    /// Append a batch of rank spans (called by [`RankObs::flush`]).
    pub fn push_spans(&self, spans: &mut Vec<Span>) {
        if spans.is_empty() {
            return;
        }
        self.spans
            .lock()
            .expect("obs registry poisoned")
            .append(spans);
    }

    /// Record a driver-side span (no virtual clock) ending now.
    pub fn driver_span(&self, phase: Phase, name: &'static str, wall_start_ns: u64, detail: u64) {
        let span = Span {
            phase,
            name,
            pid: DRIVER_PID,
            wall_start_ns,
            wall_end_ns: self.now_ns(),
            virt: None,
            detail,
        };
        self.spans.lock().expect("obs registry poisoned").push(span);
    }

    /// Snapshot of every collected span.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().expect("obs registry poisoned").clone()
    }

    /// Chrome trace-event JSON on the virtual clock (rank lanes use virtual
    /// microseconds; driver lanes, which have no virtual clock, use wall).
    pub fn chrome_trace(&self) -> String {
        self.chrome_trace_with(ExportClock::Virtual)
    }

    /// Chrome trace-event JSON with an explicit timeline clock.
    pub fn chrome_trace_with(&self, clock: ExportClock) -> String {
        chrome_trace_json(&self.spans(), clock)
    }

    /// Build the aggregated [`RunReport`] for a finished run with the given
    /// per-rank final virtual clocks.
    pub fn run_report(&self, local_times: &[f64]) -> RunReport {
        RunReport::from_registry(self, local_times)
    }
}

/// Per-rank observability handle owned by the engine's communication
/// endpoint: a metrics slot plus a local span buffer, flushed to the
/// registry when the rank finishes.
pub struct RankObs {
    rank: usize,
    reg: Arc<MetricsRegistry>,
    metrics: Arc<RankMetrics>,
    spans: Vec<Span>,
}

impl RankObs {
    /// The observability handle for `rank`, allocating its registry slot.
    pub fn new(reg: Arc<MetricsRegistry>, rank: usize) -> Self {
        let metrics = reg.rank_metrics(rank);
        RankObs {
            rank,
            reg,
            metrics,
            spans: Vec::new(),
        }
    }

    /// The rank this handle records for.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The underlying per-rank metric store, for helper threads that record
    /// on this rank's behalf (e.g. the TCP reader threads timing frame
    /// decodes). Counters, gauges and histograms are atomics and safe to
    /// update from any thread; the *virtual* accumulators are single-writer
    /// and must only be touched through [`RankObs::virt_add`] on the rank's
    /// own thread.
    pub fn metrics(&self) -> Arc<RankMetrics> {
        self.metrics.clone()
    }

    /// Nanoseconds since the registry epoch.
    pub fn now_ns(&self) -> u64 {
        self.reg.now_ns()
    }

    /// Add `v` to this rank's counter `c`.
    pub fn add(&self, c: Counter, v: u64) {
        self.metrics.add(c, v);
    }

    /// Record `ns` into this rank's histogram `h`.
    pub fn observe(&self, h: HistId, ns: u64) {
        self.metrics.hist(h).observe(ns);
    }

    /// Set this rank's gauge `g`.
    pub fn gauge_set(&self, g: GaugeId, v: u64) {
        self.metrics.gauge(g).set(v);
    }

    /// Accumulate virtual seconds into this rank's accumulator `a`.
    pub fn virt_add(&self, a: VirtAcc, dv: f64) {
        self.metrics.virt_add(a, dv);
    }

    /// Record a span ending now on this rank's pid.
    pub fn span(&mut self, phase: Phase, wall_start_ns: u64, virt: (f64, f64), detail: u64) {
        self.named_span(phase, phase.name(), wall_start_ns, virt, detail);
    }

    /// [`RankObs::span`] with a refined event name (e.g.
    /// `"compute-boundary"` / `"compute-interior"` under [`Phase::Compute`]).
    pub fn named_span(
        &mut self,
        phase: Phase,
        name: &'static str,
        wall_start_ns: u64,
        virt: (f64, f64),
        detail: u64,
    ) {
        let wall_end_ns = self.reg.now_ns();
        self.spans.push(Span {
            phase,
            name,
            pid: self.rank as u32 + 1,
            wall_start_ns,
            wall_end_ns,
            virt: Some(virt),
            detail,
        });
    }

    /// Push the buffered spans to the registry.
    pub fn flush(&mut self) {
        let mut spans = std::mem::take(&mut self.spans);
        self.reg.push_spans(&mut spans);
    }
}

impl Drop for RankObs {
    fn drop(&mut self) {
        self.flush();
    }
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// Which clock drives the exported timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExportClock {
    /// Rank lanes on the deterministic virtual clock (µs = virtual
    /// seconds × 10⁶); driver lanes fall back to wall time.
    #[default]
    Virtual,
    /// Everything on real wall time since the registry epoch.
    Wall,
}

fn fmt_us(ns_or_us: f64) -> String {
    // Trim to 3 decimals; trace viewers do not need more.
    format!("{ns_or_us:.3}")
}

/// Serialize spans as Chrome trace-event JSON (`ph:"X"` complete events
/// plus process/thread-name metadata). One pid per rank, one tid per phase
/// lane.
pub fn chrome_trace_json(spans: &[Span], clock: ExportClock) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    // Metadata: name each pid and each (pid, lane) we are about to emit.
    let mut pids: Vec<u32> = spans.iter().map(|s| s.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    let mut lanes: Vec<(u32, u32, &'static str)> = spans
        .iter()
        .map(|s| (s.pid, s.phase.lane(), s.phase.name()))
        .collect();
    lanes.sort_unstable();
    lanes.dedup_by_key(|l| (l.0, l.1));
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };
    for pid in &pids {
        let name = if *pid == DRIVER_PID {
            "driver".to_string()
        } else {
            format!("rank {}", pid - 1)
        };
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"args\": {{\"name\": \"{name}\"}}}}"
        );
    }
    for (pid, lane, name) in &lanes {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {lane}, \"args\": {{\"name\": \"{name}\"}}}}"
        );
    }
    for s in spans {
        let (ts, dur) = match (clock, s.virt) {
            (ExportClock::Virtual, Some((v0, v1))) => (v0 * 1e6, (v1 - v0).max(0.0) * 1e6),
            _ => (
                s.wall_start_ns as f64 / 1e3,
                s.wall_end_ns.saturating_sub(s.wall_start_ns) as f64 / 1e3,
            ),
        };
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": {}, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"detail\": {}, \"wall_start_ns\": {}, \"wall_dur_ns\": {}",
            s.name,
            s.phase.name(),
            s.pid,
            s.phase.lane(),
            fmt_us(ts),
            fmt_us(dur),
            s.detail,
            s.wall_start_ns,
            s.wall_end_ns.saturating_sub(s.wall_start_ns),
        );
        if let Some((v0, v1)) = s.virt {
            let _ = write!(out, ", \"virt_start_s\": {v0:.9}, \"virt_end_s\": {v1:.9}");
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

/// One histogram's aggregated view: `(id, count, sum, non-empty buckets)`
/// where each bucket is `(floor, count)`.
pub type HistReport = (HistId, u64, u64, Vec<(u64, u64)>);

/// One rank's aggregated view.
#[derive(Clone, Debug)]
pub struct RankReport {
    /// The rank this row describes.
    pub rank: usize,
    /// The rank's final virtual clock.
    pub local_time: f64,
    /// Virtual seconds computing.
    pub compute: f64,
    /// Virtual seconds blocked on data dependences (incl. injected stalls).
    pub wait: f64,
    /// Virtual seconds of communication CPU cost: send injection, receive
    /// overhead, retransmission charges and overlapped-lane drains.
    pub comm: f64,
    /// Virtual seconds re-executed after crash recoveries (zero on a
    /// recovery-free run); `local_time - recovery` is the fault-free clock.
    pub recovery: f64,
    /// Virtual seconds of comm-lane time hidden behind compute under the
    /// overlapped strategy (informational; not part of the partition).
    pub overlap_hidden: f64,
    /// `compute / local_time` (0 for an idle rank).
    pub utilization: f64,
    /// `(counter, value)` for every counter.
    pub counters: Vec<(Counter, u64)>,
    /// `(gauge, value, high-water mark)` for every gauge.
    pub gauges: Vec<(GaugeId, u64, u64)>,
    /// `(hist, count, sum, non-empty buckets)` for every histogram.
    pub hists: Vec<HistReport>,
}

/// The whole run, aggregated from the registry. Per rank,
/// `compute + wait + comm + recovery == local_time` exactly (the virtual
/// accumulators partition every clock advance; `recovery` is zero unless a
/// crash was recovered).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// One row per rank, in rank order.
    pub ranks: Vec<RankReport>,
    /// Virtual makespan: the latest local clock.
    pub makespan: f64,
}

impl RunReport {
    /// Aggregate the registry's metrics into per-rank rows, pairing each
    /// rank with its final virtual clock.
    pub fn from_registry(reg: &MetricsRegistry, local_times: &[f64]) -> RunReport {
        let slots = reg.ranks();
        let mut ranks = Vec::with_capacity(local_times.len());
        for (rank, &local_time) in local_times.iter().enumerate() {
            let empty = Arc::new(RankMetrics::new());
            let m = slots.get(rank).unwrap_or(&empty);
            let compute = m.virt_get(VirtAcc::Compute);
            let wait = m.virt_get(VirtAcc::Wait) + m.virt_get(VirtAcc::Stall);
            let comm = m.virt_get(VirtAcc::Send)
                + m.virt_get(VirtAcc::RecvOverhead)
                + m.virt_get(VirtAcc::Retrans)
                + m.virt_get(VirtAcc::Drain);
            let recovery = m.virt_get(VirtAcc::Recovery);
            let overlap_hidden = m.virt_get(VirtAcc::OverlapHidden);
            ranks.push(RankReport {
                rank,
                local_time,
                compute,
                wait,
                comm,
                recovery,
                overlap_hidden,
                utilization: if local_time > 0.0 {
                    compute / local_time
                } else {
                    0.0
                },
                counters: Counter::ALL.iter().map(|&c| (c, m.get(c))).collect(),
                gauges: GaugeId::ALL
                    .iter()
                    .map(|&g| (g, m.gauge(g).value(), m.gauge(g).max()))
                    .collect(),
                hists: HistId::ALL
                    .iter()
                    .map(|&h| {
                        let hist = m.hist(h);
                        (h, hist.count(), hist.sum(), hist.nonzero_buckets())
                    })
                    .collect(),
            });
        }
        let makespan = local_times.iter().copied().fold(0.0, f64::max);
        RunReport { ranks, makespan }
    }

    /// Sum of one counter across all ranks.
    pub fn total(&self, c: Counter) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.counters[c as usize].1)
            .sum::<u64>()
    }

    /// The rank with the latest local clock (the critical path), if any.
    pub fn slowest_rank(&self) -> Option<&RankReport> {
        self.ranks
            .iter()
            .max_by(|a, b| a.local_time.total_cmp(&b.local_time))
    }

    /// Hand-rolled JSON, same style as the bench artifacts
    /// (`schema: "tilecc-metrics-v1"`; see `docs/observability.md`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut j = String::from("{\n  \"schema\": \"tilecc-metrics-v1\",\n");
        let _ = writeln!(j, "  \"makespan\": {:.9},", self.makespan);
        let _ = writeln!(j, "  \"ranks\": [");
        let nr = self.ranks.len();
        for (i, r) in self.ranks.iter().enumerate() {
            let _ = writeln!(j, "    {{");
            let _ = writeln!(j, "      \"rank\": {},", r.rank);
            let _ = writeln!(j, "      \"local_time\": {:.9},", r.local_time);
            let _ = writeln!(j, "      \"compute\": {:.9},", r.compute);
            let _ = writeln!(j, "      \"wait\": {:.9},", r.wait);
            let _ = writeln!(j, "      \"comm\": {:.9},", r.comm);
            let _ = writeln!(j, "      \"recovery\": {:.9},", r.recovery);
            let _ = writeln!(j, "      \"overlap_hidden\": {:.9},", r.overlap_hidden);
            let _ = writeln!(j, "      \"utilization\": {:.6},", r.utilization);
            let _ = writeln!(j, "      \"counters\": {{");
            let nc = r.counters.len();
            for (k, (c, v)) in r.counters.iter().enumerate() {
                let _ = writeln!(
                    j,
                    "        \"{}\": {}{}",
                    c.name(),
                    v,
                    if k + 1 < nc { "," } else { "" }
                );
            }
            let _ = writeln!(j, "      }},");
            let _ = writeln!(j, "      \"gauges\": {{");
            let ng = r.gauges.len();
            for (k, (g, v, mx)) in r.gauges.iter().enumerate() {
                let _ = writeln!(
                    j,
                    "        \"{}\": {{\"value\": {}, \"max\": {}}}{}",
                    g.name(),
                    v,
                    mx,
                    if k + 1 < ng { "," } else { "" }
                );
            }
            let _ = writeln!(j, "      }},");
            let _ = writeln!(j, "      \"histograms\": {{");
            let nh = r.hists.len();
            for (k, (h, count, sum, buckets)) in r.hists.iter().enumerate() {
                let bs: Vec<String> = buckets
                    .iter()
                    .map(|(lo, c)| format!("[{lo}, {c}]"))
                    .collect();
                let _ = writeln!(
                    j,
                    "        \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}{}",
                    h.name(),
                    count,
                    sum,
                    bs.join(", "),
                    if k + 1 < nh { "," } else { "" }
                );
            }
            let _ = writeln!(j, "      }}");
            let _ = writeln!(j, "    }}{}", if i + 1 < nr { "," } else { "" });
        }
        j.push_str("  ]\n}\n");
        j
    }

    /// Human-readable summary: utilization, compute/wait/comm split, wire
    /// traffic, tile mix and the slowest-rank critical path.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let n = self.ranks.len();
        let _ = writeln!(
            out,
            "run report: {n} rank{}, makespan {:.6} s",
            if n == 1 { "" } else { "s" },
            self.makespan
        );
        let (mut tc, mut tw, mut tm, mut tt) = (0.0, 0.0, 0.0, 0.0);
        for r in &self.ranks {
            tc += r.compute;
            tw += r.wait;
            tm += r.comm;
            tt += r.local_time;
        }
        if tt > 0.0 {
            let _ = writeln!(
                out,
                "  split      : compute {:.1}%  wait {:.1}%  comm {:.1}%  (of total rank time)",
                100.0 * tc / tt,
                100.0 * tw / tt,
                100.0 * tm / tt
            );
            let _ = writeln!(
                out,
                "  utilization: {:.1}% mean over ranks",
                100.0 * self.ranks.iter().map(|r| r.utilization).sum::<f64>() / n.max(1) as f64
            );
        }
        let _ = writeln!(
            out,
            "  traffic    : {} messages, {} bytes on the wire, {} retransmits, {} dups suppressed",
            self.total(Counter::MessagesSent),
            self.total(Counter::BytesSent),
            self.total(Counter::Retransmits),
            self.total(Counter::DupsSuppressed),
        );
        let _ = writeln!(
            out,
            "  tiles      : {} ({} interior, {} boundary), {} iterations",
            self.total(Counter::Tiles),
            self.total(Counter::InteriorTiles),
            self.total(Counter::BoundaryTiles),
            self.total(Counter::Iterations),
        );
        let vectorized = self.total(Counter::VectorizedPoints);
        if vectorized > 0 {
            let iters = self.total(Counter::Iterations).max(1);
            let _ = writeln!(
                out,
                "  vectorized : {vectorized} iterations through batched runs ({:.1}%)",
                100.0 * vectorized as f64 / iters as f64
            );
        }
        let hidden: f64 = self.ranks.iter().map(|r| r.overlap_hidden).sum();
        if hidden > 0.0 {
            let _ = writeln!(
                out,
                "  overlap    : {hidden:.6} s of comm-lane time hidden behind compute"
            );
        }
        let recoveries = self.total(Counter::Recoveries);
        if recoveries > 0 {
            let rec: f64 = self.ranks.iter().map(|r| r.recovery).sum();
            let _ = writeln!(
                out,
                "  recovery   : {recoveries} recoveries, {rec:.6} s re-executed ({} checkpoints)",
                self.total(Counter::Checkpoints)
            );
        }
        if let Some(s) = self.slowest_rank() {
            let _ = writeln!(
                out,
                "  critical   : rank {} ({:.6} s = compute {:.6} + wait {:.6} + comm {:.6})",
                s.rank, s.local_time, s.compute, s.wait, s.comm
            );
        }
        for r in &self.ranks {
            let _ = writeln!(
                out,
                "  rank {:>3}   : {:.6} s  compute {:.6}  wait {:.6}  comm {:.6}  util {:>5.1}%",
                r.rank,
                r.local_time,
                r.compute,
                r.wait,
                r.comm,
                100.0 * r.utilization
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (artifact validation and `tilecc report`)
// ---------------------------------------------------------------------------

/// A tiny recursive-descent JSON reader: enough to validate the emitted
/// artifacts and re-render saved metrics, with zero dependencies.
pub mod json {
    /// A parsed JSON value.
    ///
    /// Integer lexemes (no `.`/`e`/`E`) parse to [`Json::Int`] so u64-sized
    /// counters round-trip exactly; routing everything through `f64` would
    /// silently lose precision above 2^53.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number with a fractional or exponent part.
        Num(f64),
        /// An integer lexeme, kept exact.
        Int(i128),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, fields in source order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as `f64` (integers convert; may round above 2^53).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(x) => Some(*x),
                Json::Int(x) => Some(*x as f64),
                _ => None,
            }
        }

        /// The value as `u64`, when it is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
                Json::Int(x) => u64::try_from(*x).ok(),
                _ => None,
            }
        }

        /// The exact integer value, when the lexeme was an integer.
        pub fn as_i128(&self) -> Option<i128> {
            match self {
                Json::Int(x) => Some(*x),
                _ => None,
            }
        }

        /// The string value.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The array elements.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The object fields, in source order.
        pub fn as_obj(&self) -> Option<&[(String, Json)]> {
            match self {
                Json::Obj(v) => Some(v),
                _ => None,
            }
        }
    }

    struct P<'a> {
        s: &'a [u8],
        i: usize,
    }

    impl<'a> P<'a> {
        fn err<T>(&self, msg: &str) -> Result<T, String> {
            Err(format!("JSON error at byte {}: {}", self.i, msg))
        }

        fn ws(&mut self) {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.s.get(self.i).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.i += 1;
                Ok(())
            } else {
                self.err(&format!("expected `{}`", b as char))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            self.ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => self.lit("true", Json::Bool(true)),
                Some(b'f') => self.lit("false", Json::Bool(false)),
                Some(b'n') => self.lit("null", Json::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => self.err("expected a value"),
            }
        }

        fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
            if self.s[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                self.err(&format!("expected `{word}`"))
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.i;
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            let mut integral = true;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                if matches!(self.s[self.i], b'.' | b'e' | b'E') {
                    integral = false;
                }
                self.i += 1;
            }
            let lexeme = std::str::from_utf8(&self.s[start..self.i]).ok();
            // Integer lexemes stay exact via i128; anything with a fraction
            // or exponent (or beyond i128) takes the f64 path.
            if integral {
                if let Some(x) = lexeme.and_then(|t| t.parse::<i128>().ok()) {
                    return Ok(Json::Int(x));
                }
            }
            lexeme
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("JSON error at byte {start}: bad number"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return self.err("unterminated string"),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                if self.i + 4 >= self.s.len() {
                                    return self.err("truncated \\u escape");
                                }
                                let hex = std::str::from_utf8(&self.s[self.i + 1..self.i + 5])
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                                self.i += 4;
                            }
                            _ => return self.err("bad escape"),
                        }
                        self.i += 1;
                    }
                    Some(_) => {
                        // Copy a full UTF-8 scalar.
                        let rest = std::str::from_utf8(&self.s[self.i..])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        let ch = rest.chars().next().unwrap();
                        out.push(ch);
                        self.i += ch.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.ws();
                match self.peek() {
                    Some(b',') => {
                        self.i += 1;
                    }
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return self.err("expected `,` or `]`"),
                }
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            self.ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.ws();
                let key = self.string()?;
                self.ws();
                self.eat(b':')?;
                let val = self.value()?;
                fields.push((key, val));
                self.ws();
                match self.peek() {
                    Some(b',') => {
                        self.i += 1;
                    }
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return self.err("expected `,` or `}`"),
                }
            }
        }
    }

    /// Parse a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = P {
            s: s.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.s.len() {
            return p.err("trailing data");
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let h = Histogram::new();
        h.observe(0);
        h.observe(5);
        h.observe(5);
        h.observe(1 << 40);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10 + (1 << 40));
        let nz = h.nonzero_buckets();
        assert_eq!(nz, vec![(0, 1), (4, 2), (1 << (HIST_BUCKETS - 1), 1)]);
    }

    #[test]
    fn gauge_tracks_high_water_mark() {
        let g = Gauge::new();
        g.set(3);
        g.set(7);
        g.set(2);
        assert_eq!(g.value(), 2);
        assert_eq!(g.max(), 7);
    }

    #[test]
    fn registry_grows_and_aggregates() {
        let reg = MetricsRegistry::new();
        let m0 = reg.rank_metrics(0);
        let m2 = reg.rank_metrics(2);
        assert_eq!(reg.rank_count(), 3);
        m0.add(Counter::BytesSent, 100);
        m2.add(Counter::BytesSent, 23);
        m2.virt_add(VirtAcc::Compute, 1.5);
        m2.virt_add(VirtAcc::Compute, 0.5);
        assert_eq!(m2.virt_get(VirtAcc::Compute), 2.0);
        let report = reg.run_report(&[1.0, 0.0, 4.0]);
        assert_eq!(report.total(Counter::BytesSent), 123);
        assert_eq!(report.makespan, 4.0);
        assert_eq!(report.slowest_rank().unwrap().rank, 2);
        assert_eq!(report.ranks[2].compute, 2.0);
        assert_eq!(report.ranks[2].utilization, 0.5);
    }

    #[test]
    fn run_report_json_parses_and_round_trips_fields() {
        let reg = MetricsRegistry::new();
        let m = reg.rank_metrics(0);
        m.add(Counter::MessagesSent, 7);
        m.hist(HistId::ComputeTileNs).observe(100);
        m.gauge(GaugeId::PendingDepth).set(2);
        let report = reg.run_report(&[2.5]);
        let j = json::parse(&report.to_json()).expect("metrics JSON must parse");
        assert_eq!(
            j.get("schema").and_then(|s| s.as_str()),
            Some("tilecc-metrics-v1")
        );
        let ranks = j.get("ranks").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(ranks.len(), 1);
        let counters = ranks[0].get("counters").unwrap();
        assert_eq!(
            counters.get("messages_sent").and_then(|v| v.as_u64()),
            Some(7)
        );
        let hist = ranks[0].get("histograms").unwrap().get("compute_tile_ns");
        assert_eq!(
            hist.and_then(|h| h.get("count")).and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn chrome_trace_is_valid_json_with_metadata() {
        let reg = MetricsRegistry::new();
        let mut obs = RankObs::new(reg.clone(), 0);
        let t0 = obs.now_ns();
        obs.span(Phase::Compute, t0, (0.0, 1.0), 64);
        obs.span(Phase::Send, obs.now_ns(), (1.0, 1.25), 128);
        drop(obs); // flush
        reg.driver_span(Phase::Plan, "fourier-motzkin", 0, 0);
        let trace = reg.chrome_trace();
        let j = json::parse(&trace).expect("chrome trace must parse");
        let events = j.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // 2 process_name + 3 thread_name + 3 spans.
        assert_eq!(events.len(), 8);
        let compute = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("compute"))
            .unwrap();
        assert_eq!(compute.get("pid").and_then(|p| p.as_u64()), Some(1));
        assert_eq!(compute.get("ts").and_then(|t| t.as_f64()), Some(0.0));
        assert_eq!(compute.get("dur").and_then(|t| t.as_f64()), Some(1e6));
    }

    #[test]
    fn virtual_export_keeps_rank_lanes_monotone() {
        let reg = MetricsRegistry::new();
        let mut obs = RankObs::new(reg.clone(), 3);
        for k in 0..5 {
            let t0 = obs.now_ns();
            obs.span(Phase::Compute, t0, (k as f64, k as f64 + 0.5), 1);
        }
        obs.flush();
        let j = json::parse(&reg.chrome_trace()).unwrap();
        let events = j.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        let mut last = f64::NEG_INFINITY;
        for e in events {
            if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            let ts = e.get("ts").and_then(|t| t.as_f64()).unwrap();
            assert!(ts >= last, "per-lane timestamps must be monotone");
            last = ts;
        }
    }

    #[test]
    fn json_parser_handles_the_usual_suspects() {
        use json::{parse, Json};
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(
            parse(" [1, 2.5, -3e2] ").unwrap().as_arr().unwrap().len(),
            3
        );
        let obj = parse(r#"{"a": "x\ny", "b": [true, false], "c": {"d": 1}}"#).unwrap();
        assert_eq!(obj.get("a").and_then(|v| v.as_str()), Some("x\ny"));
        assert_eq!(
            obj.get("c")
                .and_then(|c| c.get("d"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"u": "A"}"#).unwrap().get("u").unwrap().as_str() == Some("A"));
    }

    #[test]
    fn json_integers_round_trip_exactly() {
        use json::{parse, Json};
        // u64::MAX and the first values that f64 cannot represent exactly.
        for v in [
            u64::MAX,
            (1u64 << 53) - 1,
            1u64 << 53,
            (1u64 << 53) + 1,
            0,
            1,
        ] {
            let doc = format!("{{\"c\": {v}}}");
            let j = parse(&doc).expect("integer JSON must parse");
            assert_eq!(
                j.get("c").and_then(|x| x.as_u64()),
                Some(v),
                "u64 {v} must round-trip exactly"
            );
            assert_eq!(j.get("c").and_then(|x| x.as_i128()), Some(v as i128));
        }
        // Distinguishes 2^53 from 2^53 + 1, which f64 cannot.
        let a = parse("9007199254740992").unwrap();
        let b = parse("9007199254740993").unwrap();
        assert_ne!(a, b);
        // Negative integers and fractional/exponent forms keep working.
        assert_eq!(parse("-42").unwrap().as_i128(), Some(-42));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("-3e2").unwrap().as_f64(), Some(-300.0));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn run_report_counters_survive_json_at_u64_extremes() {
        let reg = MetricsRegistry::new();
        let m = reg.rank_metrics(0);
        m.add(Counter::BytesSent, u64::MAX);
        m.add(Counter::Iterations, (1u64 << 53) + 1);
        let report = reg.run_report(&[1.0]);
        let j = json::parse(&report.to_json()).expect("metrics JSON must parse");
        let counters = j.get("ranks").and_then(|r| r.as_arr()).unwrap()[0]
            .get("counters")
            .unwrap();
        assert_eq!(
            counters.get("bytes_sent").and_then(|v| v.as_u64()),
            Some(u64::MAX)
        );
        assert_eq!(
            counters.get("iterations").and_then(|v| v.as_u64()),
            Some((1u64 << 53) + 1)
        );
    }

    #[test]
    fn rank_report_split_partitions_local_time() {
        let reg = MetricsRegistry::new();
        let m = reg.rank_metrics(0);
        m.virt_add(VirtAcc::Compute, 3.0);
        m.virt_add(VirtAcc::Wait, 1.0);
        m.virt_add(VirtAcc::Send, 0.5);
        m.virt_add(VirtAcc::RecvOverhead, 0.25);
        m.virt_add(VirtAcc::Retrans, 0.125);
        m.virt_add(VirtAcc::Drain, 0.0625);
        m.virt_add(VirtAcc::Recovery, 0.03125);
        // OverlapHidden is informational only: must NOT enter the partition.
        m.virt_add(VirtAcc::OverlapHidden, 100.0);
        let report = reg.run_report(&[4.96875]);
        let r = &report.ranks[0];
        assert!((r.compute + r.wait + r.comm + r.recovery - r.local_time).abs() < 1e-12);
        assert_eq!(r.recovery, 0.03125);
        assert_eq!(r.overlap_hidden, 100.0);
    }
}
