//! The threaded cluster engine: one OS thread per logical process,
//! `std::sync::mpsc` channels as links.
//!
//! Execution is *functionally deterministic*: programs only use blocking
//! point-to-point receives on FIFO per-pair channels, so computed values and
//! virtual clocks do not depend on OS scheduling. The engine therefore
//! doubles as a discrete-event simulator — the returned [`RunReport`]
//! contains the exact virtual makespan on the modelled machine.
//!
//! # Fault tolerance
//!
//! The engine no longer assumes a perfect substrate:
//!
//! * Each rank runs under [`std::panic::catch_unwind`]; a panicking rank is
//!   reported as [`RunError::RankPanicked`] and its channels are dropped so
//!   blocked peers unwind (as [`CommError::Disconnected`]) instead of
//!   hanging.
//! * An optional [`FaultPlan`] injects deterministic per-link drops,
//!   duplicates, reorders and delays between `send_tagged` and the channel.
//!   A reliability sublayer — per-link sequence numbers, receiver-side
//!   duplicate suppression and re-sequencing, and sender-side retransmission
//!   charged to the virtual clock with exponential backoff — restores exact
//!   FIFO delivery, so lossy runs produce data bitwise identical to
//!   fault-free runs.
//! * A watchdog detects the all-ranks-blocked condition (a cyclic
//!   communication schedule) and returns [`RunError::Deadlock`] naming the
//!   blocked ranks, and optionally enforces a wall-clock cap
//!   ([`RunError::WallTimeout`]) so a wedged run can never hang the caller
//!   forever.

use crate::comm::{Comm, CommAbort, CommStats, Envelope, Restored};
use crate::error::{CommError, RunError};
use crate::fault::{FaultPlan, RankStall};
use crate::model::MachineModel;
use crate::obs::{Counter, GaugeId, HistId, MetricsRegistry, Phase, RankObs, SpanEdge, VirtAcc};
use crate::reliability::{retransmit_pauses, Admit, LinkSeq, ReplayLog};
use crate::trace::{Event, Trace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, Once};
use std::thread;
use std::time::{Duration, Instant};

/// How often a blocked receiver wakes to check the abort flag.
pub(crate) const RECV_POLL: Duration = Duration::from_millis(25);
/// How often the collector thread polls watchdog conditions.
pub(crate) const COLLECT_POLL: Duration = Duration::from_millis(10);
/// Consecutive silent polls with every live rank blocked before the
/// watchdog declares a deadlock (~120 ms of global inactivity).
pub(crate) const DEADLOCK_STABLE_POLLS: u32 = 12;
/// How long the collector drains straggler outcomes after an abort.
pub(crate) const ABORT_GRACE: Duration = Duration::from_secs(1);

/// Outcome of a cluster run.
#[derive(Clone, Debug)]
pub struct RunReport<R> {
    /// Per-rank results returned by the SPMD closure.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks.
    pub local_times: Vec<f64>,
    /// Per-rank statistics.
    pub stats: Vec<CommStats>,
    /// Per-rank event traces (empty unless tracing was enabled).
    pub traces: Vec<Trace>,
}

impl<R> RunReport<R> {
    /// The simulated parallel completion time: the latest local clock.
    ///
    /// An empty report (no ranks — only constructible by hand, the engine
    /// requires `size > 0`) has makespan `0.0` by convention. Debug builds
    /// assert every clock is finite so a `NaN` clock cannot silently poison
    /// downstream speedup arithmetic.
    pub fn makespan(&self) -> f64 {
        debug_assert!(
            self.local_times.iter().all(|t| t.is_finite()),
            "non-finite rank clock in {:?}",
            self.local_times
        );
        self.local_times.iter().copied().fold(0.0, f64::max)
    }

    /// Aggregate bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// Aggregate bytes accepted by receivers across all ranks (duplicate
    /// deliveries suppressed by the reliability layer are not counted, so
    /// this equals [`RunReport::total_bytes`] even on faulty links).
    pub fn total_bytes_received(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_received).sum()
    }

    /// Aggregate messages sent across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.stats.iter().map(|s| s.messages_sent).sum()
    }

    /// Aggregate retransmissions across all ranks (0 on perfect links).
    pub fn total_retransmissions(&self) -> u64 {
        self.stats.iter().map(|s| s.retransmissions).sum()
    }

    /// Aggregate receiver-side duplicate suppressions across all ranks.
    pub fn total_duplicates_suppressed(&self) -> u64 {
        self.stats.iter().map(|s| s.duplicates_suppressed).sum()
    }

    /// Aggregate checkpoint restores across all ranks (0 unless a crash
    /// was recovered).
    pub fn total_recoveries(&self) -> u64 {
        self.stats.iter().map(|s| s.recoveries).sum()
    }

    /// Aggregate virtual seconds charged to crash recovery across all
    /// ranks. Subtracting each rank's share from its local clock recovers
    /// the fault-free clock bitwise.
    pub fn total_recovery_time(&self) -> f64 {
        self.stats.iter().map(|s| s.recovery_time).sum()
    }
}

/// Communication scheme for the virtual-time model.
///
/// `Blocking` is the paper's scheme: the CPU pays the full send cost before
/// continuing and the full receive overhead on arrival. `Overlapped` models
/// the computation/communication overlapping of the paper's future-work
/// reference (Goumas/Sotiropoulos/Koziris, IPDPS'01 [8]): transfers proceed
/// in the background (DMA/comm thread), so the sender's clock is not
/// charged for injection and the receiver pays no per-message overhead —
/// only true data-dependence waiting remains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CommScheme {
    /// MPI-style blocking sends and receives: the sender's clock pays the
    /// injection cost, the receiver pays the per-message overhead.
    #[default]
    Blocking,
    /// Background transfers on a dedicated comm lane: only true
    /// data-dependence waiting charges the ranks' clocks.
    Overlapped,
}

/// Crash-recovery policy: checkpoint cadence and the shared restore budget.
///
/// With a policy attached the executor calls [`Comm::checkpoint`] every
/// `interval` completed chain steps, and an injected crash rewinds the rank
/// to its latest checkpoint instead of killing the run — as long as the
/// run-wide `max_recoveries` budget is not exhausted. Recovered runs stay
/// bitwise identical to fault-free ones: the re-executed virtual time is
/// charged to the `recovery` accumulator at the end of the run, never to
/// individual message timestamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Take a checkpoint every `interval` chain steps (min 1).
    pub interval: u64,
    /// Total restores permitted across all ranks of the run.
    pub max_recoveries: u64,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            interval: 4,
            max_recoveries: 1,
        }
    }
}

/// Engine options: communication scheme, tracing, fault injection and the
/// watchdog configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Communication scheme in force (see [`CommScheme`]).
    pub scheme: CommScheme,
    /// Record per-rank [`Trace`] event logs.
    pub trace: bool,
    /// Deterministic fault-injection plan (`None` = perfect substrate).
    pub fault: Option<FaultPlan>,
    /// Crash-recovery policy (`None` = a crash fails the run).
    pub recovery: Option<RecoveryOptions>,
    /// Wall-clock cap on the whole run. `None` disables the cap. The
    /// default is `None` in release dependents and 60 s when this crate is
    /// compiled under `cfg(test)`, so the crate's own test suite can never
    /// hang on a wedged run.
    pub wall_timeout: Option<Duration>,
    /// Detect the all-ranks-blocked condition and return
    /// [`RunError::Deadlock`] instead of hanging (default: on).
    pub deadlock_detection: bool,
    /// Observability session: when set, every rank records spans, counters,
    /// gauges and histograms into its slot of the shared registry. `None`
    /// (the default) keeps the hot paths observability-free.
    pub obs: Option<Arc<MetricsRegistry>>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            scheme: CommScheme::default(),
            trace: false,
            fault: None,
            recovery: None,
            wall_timeout: default_wall_timeout(),
            deadlock_detection: true,
            obs: None,
        }
    }
}

/// Wall-clock cap applied when none is configured: bounded under
/// `cfg(test)` (a blocked rank must never hang `cargo test`), unbounded
/// otherwise.
fn default_wall_timeout() -> Option<Duration> {
    if cfg!(test) {
        Some(Duration::from_secs(60))
    } else {
        None
    }
}

/// Panic payload of a [`FaultPlan`]-injected rank crash.
#[derive(Clone, Debug)]
pub struct InjectedCrash {
    /// The crashed rank.
    pub rank: usize,
    /// Configured crash time.
    pub at: f64,
    /// Virtual clock when the crash fired.
    pub clock: f64,
}

/// Shared sender-side replay logs: `logs[from][to]` retains the envelopes
/// `from` pushed to `to` until `to`'s checkpoint acknowledges them.
pub(crate) type ReplayLogs = Arc<Vec<Vec<Mutex<ReplayLog>>>>;

/// A replay-log matrix for a world of `size` ranks (diagonal unused).
pub(crate) fn new_replay_logs(size: usize) -> ReplayLogs {
    Arc::new(
        (0..size)
            .map(|_| (0..size).map(|_| Mutex::new(ReplayLog::new())).collect())
            .collect(),
    )
}

/// One rank's checkpoint: everything needed to rewind the endpoint to a
/// chain position and re-execute deterministically from there. Shared with
/// the in-process TCP engine, which recovers at the same level.
pub(crate) struct CkptState {
    /// Chain position the checkpoint was taken at.
    pub(crate) chain_pos: u64,
    /// Opaque application snapshot (LDS values + logical counters).
    pub(crate) app: Vec<u8>,
    pub(crate) clock: f64,
    pub(crate) comm_lane: f64,
    pub(crate) lane_busy: f64,
    pub(crate) stats: CommStats,
    /// Outgoing sequence frontier per link.
    pub(crate) next: Vec<u64>,
    /// Incoming expected-sequence frontier per link.
    pub(crate) expect: Vec<u64>,
    /// Arrived-but-unmatched envelopes (MPI tag-matching buffers).
    pub(crate) pending: Vec<Vec<Envelope>>,
    /// Trace length, so restore can truncate re-executed events.
    pub(crate) trace_len: usize,
    /// Observability counter values at the checkpoint (`None` without obs).
    pub(crate) counters: Option<Vec<u64>>,
    /// Virtual-accumulator values at the checkpoint (`None` without obs).
    pub(crate) virts: Option<Vec<f64>>,
}

/// Per-rank recovery state, shared by the threaded and in-process TCP
/// engines.
pub(crate) struct RecoveryCtl {
    /// Checkpoint cadence requested from the executor.
    pub(crate) interval: u64,
    /// Run-wide remaining-restores budget, shared across ranks.
    pub(crate) budget: Arc<AtomicU64>,
    /// Latest checkpoint (overwritten each interval).
    pub(crate) ckpt: Option<CkptState>,
    /// Re-execution send frontier per outgoing link: sends with
    /// `seq < resend_skip[to]` redo all virtual accounting but skip the
    /// physical push — the receiver already holds those envelopes (either
    /// delivered pre-crash or re-injected from the replay log).
    pub(crate) resend_skip: Vec<u64>,
    /// Virtual seconds rewound over, re-charged once at settle time.
    pub(crate) debt: f64,
    /// Restores performed by this rank.
    pub(crate) used: u64,
}

/// What a rank is doing, as seen by the watchdog (and, in the
/// multi-process model, by the driver's telemetry consumers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankPhase {
    /// Computing or sending — anything but a blocking receive.
    Running,
    /// Blocked in a receive.
    Blocked {
        /// The rank it is receiving from.
        from: usize,
        /// The tag it is waiting on.
        tag: i64,
    },
    /// Finished its program (result may still be in flight).
    Done,
}

/// Shared run state: per-rank phases, a progress counter bumped on every
/// state change and message hand-off, and the abort flag. Shared between
/// the threaded and TCP engines (the TCP multi-process driver rebuilds the
/// same view from heartbeat frames).
pub(crate) struct Monitor {
    phases: Mutex<Vec<RankPhase>>,
    progress: AtomicU64,
    abort: AtomicBool,
}

impl Monitor {
    pub(crate) fn new(size: usize) -> Self {
        Monitor {
            phases: Mutex::new(vec![RankPhase::Running; size]),
            progress: AtomicU64::new(0),
            abort: AtomicBool::new(false),
        }
    }

    pub(crate) fn set(&self, rank: usize, phase: RankPhase) {
        self.phases.lock().expect("monitor poisoned")[rank] = phase;
        self.bump();
    }

    pub(crate) fn snapshot(&self) -> Vec<RankPhase> {
        self.phases.lock().expect("monitor poisoned").clone()
    }

    pub(crate) fn phase_of(&self, rank: usize) -> RankPhase {
        self.phases.lock().expect("monitor poisoned")[rank]
    }

    pub(crate) fn bump(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    pub(crate) fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
    }

    pub(crate) fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }
}

/// Communication endpoint handed to each SPMD thread.
pub struct ThreadedComm {
    rank: usize,
    size: usize,
    model: MachineModel,
    scheme: CommScheme,
    clock: f64,
    /// Per-rank NIC lane for the overlapped scheme: the virtual time the
    /// lane finishes its last queued injection. Sends serialize on the lane
    /// (`max(lane, clock) + send_cost`) instead of charging the CPU clock;
    /// [`Comm::drain_sends`] max-merges the lane back into the clock.
    comm_lane: f64,
    /// Lane busy time accumulated since the last drain (for the
    /// `overlap_hidden` accounting).
    lane_busy: f64,
    stats: CommStats,
    trace: Option<Trace>,
    /// `txs[to]`: channel to each peer (slot `rank` unused).
    txs: Vec<Option<Sender<Envelope>>>,
    /// `rxs[from]`: channel from each peer.
    rxs: Vec<Option<Receiver<Envelope>>>,
    /// Per-peer buffers of arrived-but-unmatched messages (MPI-style tag
    /// matching).
    pending: Vec<Vec<Envelope>>,
    /// Shared watchdog state.
    monitor: Arc<Monitor>,
    /// Fault plan, if any.
    fault: Option<Arc<FaultPlan>>,
    /// This rank's injected crash time, if any.
    crash_at: Option<f64>,
    /// This rank's injected stall, if any (cleared once fired).
    stall: Option<RankStall>,
    /// Reliability layer: per-link sequence state (duplicate suppression,
    /// re-sequencing) shared with the TCP transport.
    links: LinkSeq,
    /// Reorder injection: at most one held-back envelope per outgoing link,
    /// released after the next message on that link (or at the next
    /// blocking receive / rank exit, so a hold can never cause deadlock).
    holdback: Vec<Option<Envelope>>,
    /// Observability handle (`None` unless the run has a registry attached).
    /// Buffered spans flush to the registry when the endpoint drops, which
    /// happens in the rank thread before its outcome is reported.
    obs: Option<RankObs>,
    /// Shared sender-side replay logs (`Some` only with a recovery policy).
    replay_logs: Option<ReplayLogs>,
    /// Checkpoint/restore state (`Some` only with a recovery policy).
    recovery: Option<RecoveryCtl>,
}

impl ThreadedComm {
    /// Fire any virtual-time-triggered faults for this rank: a stall jumps
    /// the clock forward once; a crash panics (contained by the engine).
    fn fault_tick(&mut self) {
        if let Some(stall) = self.stall {
            if self.clock >= stall.at {
                self.stall = None;
                self.clock += stall.duration;
                self.stats.wait_time += stall.duration;
                if let Some(o) = &self.obs {
                    o.virt_add(VirtAcc::Stall, stall.duration);
                }
            }
        }
        if let Some(at) = self.crash_at {
            if self.clock >= at {
                std::panic::panic_any(InjectedCrash {
                    rank: self.rank,
                    at,
                    clock: self.clock,
                });
            }
        }
    }

    /// Inject one envelope into a link.
    fn push_link(&self, to: usize, env: Envelope) -> Result<(), CommError> {
        self.monitor.bump();
        self.txs[to]
            .as_ref()
            .expect("no channel to peer")
            .send(env)
            .map_err(|_| {
                if self.monitor.aborted() {
                    CommError::Aborted
                } else {
                    CommError::Disconnected { peer: to }
                }
            })
    }

    /// Inject a *redundant* envelope — a duplicate copy or a released
    /// reorder hold whose payload has already been (or will be) delivered by
    /// a primary copy. A receiver that exited in the meantime simply never
    /// sees it: erroring here would make the run outcome depend on the
    /// real-time race between this push and the peer's exit.
    fn push_link_redundant(&self, to: usize, env: Envelope) -> Result<(), CommError> {
        match self.push_link(to, env) {
            Ok(()) | Err(CommError::Disconnected { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Release every held-back (reorder-injected) envelope. Called before
    /// any blocking receive and at rank exit so a hold cannot deadlock. A
    /// hold whose receiver already exited is dropped (see
    /// [`Self::push_link_redundant`]).
    fn flush_holdbacks(&mut self) -> Result<(), CommError> {
        for to in 0..self.size {
            if let Some(env) = self.holdback[to].take() {
                self.push_link_redundant(to, env)?;
            }
        }
        Ok(())
    }

    /// The next in-sequence envelope from `from`: suppresses duplicates and
    /// re-sequences out-of-order arrivals by sequence number, waking
    /// periodically to honour a watchdog abort. `tag` is only for the
    /// watchdog's diagnostics.
    fn next_in_order(&mut self, from: usize, tag: i64) -> Result<Envelope, CommError> {
        if let Some(env) = self.links.take_ready(from) {
            return Ok(env);
        }
        self.monitor
            .set(self.rank, RankPhase::Blocked { from, tag });
        let result = loop {
            let rx = self.rxs[from].as_ref().expect("no channel from peer");
            match rx.recv_timeout(RECV_POLL) {
                Ok(env) => {
                    self.monitor.bump();
                    match self.links.admit(from, env) {
                        Admit::Deliver(env) => break Ok(env),
                        Admit::Duplicate => {
                            self.stats.duplicates_suppressed += 1;
                            if let Some(o) = &self.obs {
                                o.add(Counter::DupsSuppressed, 1);
                            }
                        }
                        Admit::Buffered => {}
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.monitor.aborted() {
                        break Err(CommError::Aborted);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // After a watchdog abort, peers unwind and drop their
                    // channels; that disconnect is fallout, not a cause.
                    break Err(if self.monitor.aborted() {
                        CommError::Aborted
                    } else {
                        CommError::Disconnected { peer: from }
                    });
                }
            }
        };
        self.monitor.set(self.rank, RankPhase::Running);
        result
    }
}

impl Comm for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn try_send_tagged(
        &mut self,
        to: usize,
        tag: i64,
        payload: Vec<f64>,
        nominal_bytes: usize,
    ) -> Result<(), CommError> {
        assert!(to != self.rank, "send to self is not supported");
        self.fault_tick();
        let wall_t0 = self.obs.as_ref().map(|o| o.now_ns());
        let virt_t0 = self.clock;
        let seq = self.links.assign(to);
        // Recovery re-execution: a send the receiver already holds (below
        // the crash-time frontier) redoes every virtual charge and counter
        // but must not be pushed again — see `RecoveryCtl::resend_skip`.
        let skip_physical = self
            .recovery
            .as_ref()
            .is_some_and(|r| seq < r.resend_skip[to]);

        // Reliability layer: simulate stop-and-wait ARQ over the lossy link.
        // Each dropped attempt charges the sender's clock the injection cost
        // plus an exponential backoff before the retransmission.
        if let Some(fault) = self.fault.clone() {
            for pause in
                retransmit_pauses(&fault, &self.model, self.rank, to, tag, seq, nominal_bytes)?
            {
                self.stats.retransmissions += 1;
                self.stats.retrans_time += pause;
                match self.scheme {
                    CommScheme::Blocking => {
                        self.clock += pause;
                        if let Some(o) = &self.obs {
                            o.virt_add(VirtAcc::Retrans, pause);
                        }
                    }
                    // Overlapped: the NIC retries in the background, so the
                    // backoff occupies the comm lane, not the CPU clock —
                    // it surfaces as Drain time if the lane overshoots.
                    CommScheme::Overlapped => {
                        let lane_start = self.comm_lane.max(self.clock);
                        self.comm_lane = lane_start + pause;
                        self.lane_busy += pause;
                    }
                }
                if let Some(o) = &self.obs {
                    o.add(Counter::FaultDrops, 1);
                    o.add(Counter::Retransmits, 1);
                    // Modelled backoff latency, in virtual nanoseconds; a
                    // histogram, so it never perturbs the clock partition.
                    o.observe(HistId::RetransNs, (pause * 1e9) as u64);
                }
            }
        }

        let send_cost = match self.scheme {
            CommScheme::Blocking => self.model.send_cost(nominal_bytes),
            // Background transfer: injection off the CPU.
            CommScheme::Overlapped => 0.0,
        };
        self.clock += send_cost;
        let ready_at = match self.scheme {
            CommScheme::Blocking => self.clock + self.model.wire_latency,
            CommScheme::Overlapped => {
                // Sends serialize on the rank's NIC lane: each injection
                // starts when both the lane and the CPU have reached it.
                let lane_start = self.comm_lane.max(self.clock);
                let lane_end = lane_start + self.model.send_cost(nominal_bytes);
                self.comm_lane = lane_end;
                self.lane_busy += self.model.send_cost(nominal_bytes);
                lane_end + self.model.wire_latency
            }
        };
        let mut env = Envelope {
            payload,
            tag,
            ready_at,
            seq,
            bytes: nominal_bytes,
        };
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += nominal_bytes as u64;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Send {
                at: self.clock,
                to,
                bytes: nominal_bytes,
                tag,
            });
        }
        if let Some(o) = &self.obs {
            o.add(Counter::MessagesSent, 1);
            o.add(Counter::BytesSent, nominal_bytes as u64);
            o.virt_add(VirtAcc::Send, send_cost);
        }

        let (duplicate, reorder) = match &self.fault {
            Some(f) if f.perturbs_links() => {
                if let Some(extra) = f.delayed(self.rank, to, seq) {
                    env.ready_at += extra;
                    if let Some(o) = &self.obs {
                        o.add(Counter::FaultDelays, 1);
                    }
                }
                let (dup, reord) = (
                    f.duplicated(self.rank, to, seq),
                    f.reordered(self.rank, to, seq),
                );
                if let Some(o) = &self.obs {
                    if dup {
                        o.add(Counter::FaultDups, 1);
                    }
                    if reord {
                        o.add(Counter::FaultReorders, 1);
                    }
                }
                (dup, reord)
            }
            _ => (false, false),
        };
        if !skip_physical {
            // Retain the primary copy (post delay perturbation, so a replay
            // reproduces the receiver's wait bitwise) until the receiver's
            // checkpoint acknowledges it.
            if let Some(logs) = &self.replay_logs {
                logs[self.rank][to]
                    .lock()
                    .expect("replay log poisoned")
                    .record(env.clone());
            }
            if reorder {
                // Hold this envelope so the next message on the link
                // overtakes it. A duplicate copy delivers immediately and
                // doubles as the primary copy; an already-held envelope is
                // released first — at most one hold per link.
                if duplicate {
                    self.push_link(to, env.clone())?;
                }
                if let Some(prev) = self.holdback[to].take() {
                    self.push_link_redundant(to, prev)?;
                }
                self.holdback[to] = Some(env);
            } else {
                if duplicate {
                    self.push_link(to, env.clone())?;
                    self.push_link_redundant(to, env)?;
                } else {
                    self.push_link(to, env)?;
                }
                if let Some(prev) = self.holdback[to].take() {
                    self.push_link_redundant(to, prev)?;
                }
            }
        }
        if let Some(wall_t0) = wall_t0 {
            let virt_t1 = self.clock;
            let outstanding = self.holdback.iter().filter(|h| h.is_some()).count() as u64;
            if let Some(o) = &mut self.obs {
                o.gauge_set(GaugeId::OutstandingSends, outstanding);
                o.edge_span(
                    Phase::Send,
                    wall_t0,
                    (virt_t0, virt_t1),
                    nominal_bytes as u64,
                    SpanEdge {
                        peer: to as u32,
                        tag,
                        seq,
                    },
                );
            }
        }
        Ok(())
    }

    fn try_recv_tagged(&mut self, from: usize, tag: i64) -> Result<Vec<f64>, CommError> {
        assert!(from != self.rank, "recv from self is not supported");
        self.fault_tick();
        // Anything we still hold must be released before blocking, or a
        // reorder hold could manufacture a deadlock.
        self.flush_holdbacks()?;
        let wall_t0 = self.obs.as_ref().map(|o| o.now_ns());
        let start = self.clock;
        // Match against already-arrived messages first (MPI tag matching).
        let env = if let Some(pos) = self.pending[from].iter().position(|e| e.tag == tag) {
            self.pending[from].remove(pos)
        } else {
            loop {
                let env = self.next_in_order(from, tag)?;
                if env.tag == tag {
                    break env;
                }
                // Arrived but not the requested message: buffer it. Its
                // arrival does not advance the CPU clock (the NIC holds it).
                self.pending[from].push(env);
            }
        };
        if env.ready_at > self.clock {
            let waited = env.ready_at - self.clock;
            self.stats.wait_time += waited;
            self.clock = env.ready_at;
            if let Some(o) = &self.obs {
                o.virt_add(VirtAcc::Wait, waited);
            }
        }
        let ready = self.clock;
        if self.scheme == CommScheme::Blocking {
            self.clock += self.model.recv_overhead;
            if let Some(o) = &self.obs {
                o.virt_add(VirtAcc::RecvOverhead, self.model.recv_overhead);
            }
        }
        self.stats.messages_received += 1;
        self.stats.bytes_received += env.bytes as u64;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Recv {
                start,
                ready,
                end: self.clock,
                from,
                tag,
            });
        }
        if let Some(wall_t0) = wall_t0 {
            let virt_t1 = self.clock;
            let pending_depth = self.pending.iter().map(|p| p.len()).sum::<usize>() as u64;
            let reseq_depth = self.links.resequence_depth();
            if let Some(o) = &mut self.obs {
                o.add(Counter::MessagesReceived, 1);
                o.add(Counter::BytesReceived, env.bytes as u64);
                o.observe(HistId::RecvWaitNs, o.now_ns().saturating_sub(wall_t0));
                o.gauge_set(GaugeId::PendingDepth, pending_depth);
                o.gauge_set(GaugeId::ResequenceDepth, reseq_depth);
                o.edge_span(
                    Phase::Recv,
                    wall_t0,
                    (start, virt_t1),
                    env.bytes as u64,
                    SpanEdge {
                        peer: from as u32,
                        tag,
                        seq: env.seq,
                    },
                );
            }
        }
        Ok(env.payload)
    }

    fn drain_sends(&mut self) -> f64 {
        let overshoot = (self.comm_lane - self.clock).max(0.0);
        let hidden = (self.lane_busy - overshoot).max(0.0);
        if let Some(o) = &self.obs {
            if overshoot > 0.0 {
                o.virt_add(VirtAcc::Drain, overshoot);
            }
            if hidden > 0.0 {
                o.virt_add(VirtAcc::OverlapHidden, hidden);
            }
        }
        self.clock += overshoot;
        self.comm_lane = self.clock;
        self.lane_busy = 0.0;
        overshoot
    }

    fn advance_compute(&mut self, iters: u64) {
        self.fault_tick();
        let dt = self.model.compute_cost(iters);
        let start = self.clock;
        self.clock += dt;
        self.stats.compute_time += dt;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Compute {
                start,
                end: self.clock,
                iters,
            });
        }
        // The virtual accumulator only; the Compute *span* is recorded by
        // the executor around the whole tile (kernel + this charge), so the
        // two would double-count if both lived here.
        if let Some(o) = &self.obs {
            o.virt_add(VirtAcc::Compute, dt);
        }
    }

    fn local_time(&self) -> f64 {
        self.clock
    }

    fn model(&self) -> &MachineModel {
        &self.model
    }

    fn stats(&self) -> CommStats {
        self.stats
    }

    fn obs(&mut self) -> Option<&mut RankObs> {
        self.obs.as_mut()
    }

    fn recovery_interval(&self) -> Option<u64> {
        self.recovery.as_ref().map(|r| r.interval)
    }

    fn checkpoint(&mut self, chain_pos: u64, app: &[u8]) {
        if self.recovery.is_none() {
            return;
        }
        // Snapshot observability state *before* counting the checkpoint, so
        // a restore followed by a re-checkpoint at the same position counts
        // it exactly once — like the fault-free run.
        let (counters, virts) = match &self.obs {
            Some(o) => {
                let m = o.metrics();
                (
                    Some(Counter::ALL.iter().map(|&c| m.get(c)).collect()),
                    Some(VirtAcc::ALL.iter().map(|&a| m.virt_get(a)).collect()),
                )
            }
            None => (None, None),
        };
        let ckpt = CkptState {
            chain_pos,
            app: app.to_vec(),
            clock: self.clock,
            comm_lane: self.comm_lane,
            lane_busy: self.lane_busy,
            stats: self.stats,
            next: self.links.next_frontier(),
            expect: self.links.expect_frontier(),
            pending: self.pending.clone(),
            trace_len: self.trace.as_ref().map_or(0, |t| t.events.len()),
            counters,
            virts,
        };
        // The checkpoint acknowledges everything this rank has consumed:
        // senders may drop those envelopes from their replay logs.
        if let Some(logs) = &self.replay_logs {
            for from in 0..self.size {
                if from != self.rank {
                    logs[from][self.rank]
                        .lock()
                        .expect("replay log poisoned")
                        .trim_below(self.links.expect_of(from));
                }
            }
        }
        self.recovery.as_mut().expect("recovery checked above").ckpt = Some(ckpt);
        if let Some(o) = &self.obs {
            o.add(Counter::Checkpoints, 1);
            // Transport-level write accounting: in-process checkpoints cost
            // exactly the serialized application bytes.
            o.add(Counter::CkptWrites, 1);
            o.add(Counter::CkptBytes, app.len() as u64);
            if let Some(logs) = &self.replay_logs {
                let depth: u64 = (0..self.size)
                    .filter(|&to| to != self.rank)
                    .map(|to| {
                        logs[self.rank][to]
                            .lock()
                            .expect("replay log poisoned")
                            .len() as u64
                    })
                    .sum();
                o.gauge_set(GaugeId::ReplayLogDepth, depth);
            }
        }
    }

    fn try_restore(&mut self) -> Option<Restored> {
        self.recovery.as_ref()?.ckpt.as_ref()?;
        // Consume one unit of the run-wide restore budget.
        {
            let budget = &self.recovery.as_ref().expect("checked above").budget;
            loop {
                let left = budget.load(Ordering::SeqCst);
                if left == 0 {
                    return None;
                }
                if budget
                    .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    break;
                }
            }
        }
        // Crash-time reorder holds may contain envelopes the receiver still
        // needs; release them before rewinding (their seq numbers lie past
        // the checkpoint frontier, so re-execution will skip re-pushing).
        let _ = self.flush_holdbacks();
        let clock_crash = self.clock;
        let next_crash = self.links.next_frontier();
        let expect_crash = self.links.expect_frontier();

        let rec = self.recovery.as_mut().expect("checked above");
        let ckpt = rec.ckpt.as_ref().expect("checked above");
        self.clock = ckpt.clock;
        self.comm_lane = ckpt.comm_lane;
        self.lane_busy = ckpt.lane_busy;
        self.stats = ckpt.stats;
        self.links.rewind(&ckpt.next, &ckpt.expect);
        self.pending = ckpt.pending.clone();
        if let Some(tr) = &mut self.trace {
            tr.events.truncate(ckpt.trace_len);
        }
        if let Some(o) = &self.obs {
            let m = o.metrics();
            if let Some(counters) = &ckpt.counters {
                for (&c, &v) in Counter::ALL.iter().zip(counters) {
                    m.set(c, v);
                }
            }
            if let Some(virts) = &ckpt.virts {
                for (&a, &v) in VirtAcc::ALL.iter().zip(virts) {
                    m.virt_set(a, v);
                }
            }
        }
        // Re-inject the lost in-flight window from the peers' replay logs:
        // everything consumed between the checkpoint and the crash.
        if let Some(logs) = &self.replay_logs {
            for from in 0..self.size {
                if from != self.rank {
                    let replayed = logs[from][self.rank]
                        .lock()
                        .expect("replay log poisoned")
                        .range(ckpt.expect[from], expect_crash[from]);
                    for env in replayed {
                        self.links.reinject(from, env);
                    }
                }
            }
        }
        rec.resend_skip = next_crash;
        rec.debt += clock_crash - ckpt.clock;
        rec.used += 1;
        let (chain_pos, app) = (ckpt.chain_pos, ckpt.app.clone());
        let used = rec.used;
        self.stats.recoveries = used;
        // The crash fired; a restored rank does not re-crash.
        self.crash_at = None;
        if let Some(o) = &self.obs {
            o.add(Counter::Recoveries, 1);
        }
        self.monitor.bump();
        Some(Restored { chain_pos, app })
    }

    fn settle_recovery(&mut self) -> f64 {
        let Some(rec) = self.recovery.as_mut() else {
            return 0.0;
        };
        let debt = rec.debt;
        rec.debt = 0.0;
        if debt > 0.0 {
            self.clock += debt;
            self.stats.recovery_time += debt;
            if let Some(o) = &self.obs {
                o.virt_add(VirtAcc::Recovery, debt);
            }
        }
        debt
    }
}

impl Drop for ThreadedComm {
    fn drop(&mut self) {
        // Release reorder holds so a finished rank never strands a message;
        // failures are moot at this point (the peer is gone).
        let _ = self.flush_holdbacks();
    }
}

/// Run an SPMD program over `size` logical processes. The closure receives
/// each process's [`ThreadedComm`]; its return values, final clocks and
/// statistics are collected into a [`RunReport`] (indexed by rank).
///
/// # Panics
/// Propagates failed runs as panics — a thin wrapper over
/// [`run_cluster_opts`], which reports them as [`RunError`]s instead.
pub fn run_cluster<R, F>(size: usize, model: MachineModel, f: F) -> RunReport<R>
where
    R: Send + 'static,
    F: Fn(&mut ThreadedComm) -> R + Send + Sync + 'static,
{
    run_cluster_with(size, model, CommScheme::Blocking, f)
}

/// [`run_cluster`] with an explicit communication scheme.
///
/// # Panics
/// Propagates failed runs as panics, like [`run_cluster`].
pub fn run_cluster_with<R, F>(
    size: usize,
    model: MachineModel,
    scheme: CommScheme,
    f: F,
) -> RunReport<R>
where
    R: Send + 'static,
    F: Fn(&mut ThreadedComm) -> R + Send + Sync + 'static,
{
    run_cluster_opts(
        size,
        model,
        EngineOptions {
            scheme,
            ..EngineOptions::default()
        },
        f,
    )
    .unwrap_or_else(|e| panic!("cluster run failed: {e}"))
}

/// How one rank thread ended.
pub(crate) enum RankEnd<R> {
    Ok(R),
    CommFail(CommError),
    Panic(String),
}

/// A collected rank outcome: how it ended, final clock, stats, trace.
pub(crate) type RankSlot<R> = Option<(RankEnd<R>, f64, CommStats, Trace)>;

/// Stringify a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(c) = payload.downcast_ref::<InjectedCrash>() {
        format!(
            "injected crash at virtual time {:.6} (configured at {:.6})",
            c.clock, c.at
        )
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Silence the default panic hook for the engine's sentinel payloads
/// ([`CommAbort`] cascades and [`InjectedCrash`]es): they are expected
/// control flow, reported through [`RunError`], and would otherwise spam
/// stderr with backtraces. Genuine panics still reach the previous hook.
pub(crate) fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.downcast_ref::<CommAbort>().is_some()
                || payload.downcast_ref::<InjectedCrash>().is_some()
            {
                return;
            }
            previous(info);
        }));
    });
}

/// [`run_cluster`] with full engine options (scheme, tracing, fault
/// injection, watchdog). This is the fallible entry point: one rank's panic
/// is contained and reported as [`RunError::RankPanicked`], a cyclic
/// schedule as [`RunError::Deadlock`], and a wedged run as
/// [`RunError::WallTimeout`] — the process is never aborted and the call
/// always returns.
pub fn run_cluster_opts<R, F>(
    size: usize,
    model: MachineModel,
    options: EngineOptions,
    f: F,
) -> Result<RunReport<R>, RunError>
where
    R: Send + 'static,
    F: Fn(&mut ThreadedComm) -> R + Send + Sync + 'static,
{
    assert!(size > 0, "cluster needs at least one process");
    install_quiet_panic_hook();
    let scheme = options.scheme;
    let fault = options.fault.clone().map(Arc::new);
    let replay_logs = options.recovery.map(|_| new_replay_logs(size));
    let recovery_budget = options
        .recovery
        .map(|r| Arc::new(AtomicU64::new(r.max_recoveries)));
    // Channel matrix: channels[from][to].
    let mut senders: Vec<Vec<Option<Sender<Envelope>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<Receiver<Envelope>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    for from in 0..size {
        for to in 0..size {
            if from == to {
                continue;
            }
            let (tx, rx) = channel();
            senders[from][to] = Some(tx);
            receivers[to][from] = Some(rx);
        }
    }

    let monitor = Arc::new(Monitor::new(size));
    let f = Arc::new(f);
    let (done_tx, done_rx) = channel::<(usize, RankEnd<R>, f64, CommStats, Trace)>();
    for (rank, (txs, rxs)) in senders.into_iter().zip(receivers).enumerate() {
        let f = f.clone();
        let monitor_for_rank = monitor.clone();
        let done = done_tx.clone();
        let mut comm = ThreadedComm {
            rank,
            size,
            model,
            scheme,
            clock: 0.0,
            comm_lane: 0.0,
            lane_busy: 0.0,
            stats: CommStats::default(),
            trace: options.trace.then(Trace::default),
            pending: (0..size).map(|_| Vec::new()).collect(),
            monitor: monitor.clone(),
            crash_at: fault.as_ref().and_then(|fp| fp.crash_time(rank)),
            stall: fault.as_ref().and_then(|fp| fp.stall_of(rank)),
            fault: fault.clone(),
            links: LinkSeq::new(size),
            holdback: (0..size).map(|_| None).collect(),
            obs: options
                .obs
                .as_ref()
                .map(|reg| RankObs::new(reg.clone(), rank)),
            replay_logs: replay_logs.clone(),
            recovery: options.recovery.map(|r| RecoveryCtl {
                interval: r.interval.max(1),
                budget: recovery_budget.clone().expect("budget set with recovery"),
                ckpt: None,
                resend_skip: vec![0; size],
                debt: 0.0,
                used: 0,
            }),
            txs,
            rxs,
        };
        thread::Builder::new()
            .name(format!("tilecc-rank-{rank}"))
            .spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let r = f(&mut comm);
                    // Charge the accumulated recovery debt once, at the end:
                    // every message timestamp stayed bitwise fault-free, and
                    // the final clock is fault-free time + recovery time.
                    comm.settle_recovery();
                    r
                }));
                monitor_for_rank.set(rank, RankPhase::Done);
                let end = match outcome {
                    Ok(r) => RankEnd::Ok(r),
                    Err(payload) => match payload.downcast::<CommAbort>() {
                        Ok(abort) => RankEnd::CommFail(abort.error),
                        Err(payload) => RankEnd::Panic(panic_message(payload.as_ref())),
                    },
                };
                let (clock, stats) = (comm.clock, comm.stats);
                let trace = comm.trace.take().unwrap_or_default();
                // Disconnect this rank's channels so blocked peers unwind
                // instead of hanging on a dead sender.
                drop(comm);
                let _ = done.send((rank, end, clock, stats, trace));
            })
            .expect("failed to spawn rank thread");
    }
    drop(done_tx);

    collect(size, monitor, done_rx, &options)
}

/// Collect rank outcomes while running the watchdog: wall-clock cap and
/// all-ranks-blocked deadlock detection. Shared by the threaded engine and
/// the in-process TCP runner ([`crate::tcp::run_cluster_tcp`]).
pub(crate) fn collect<R>(
    size: usize,
    monitor: Arc<Monitor>,
    done_rx: Receiver<(usize, RankEnd<R>, f64, CommStats, Trace)>,
    options: &EngineOptions,
) -> Result<RunReport<R>, RunError> {
    let started = Instant::now();
    let mut slots: Vec<RankSlot<R>> = (0..size).map(|_| None).collect();
    let mut finished = 0usize;
    let mut last_progress = monitor.progress();
    let mut stable: u32 = 0;

    while finished < size {
        match done_rx.recv_timeout(COLLECT_POLL) {
            Ok((rank, end, clock, stats, trace)) => {
                slots[rank] = Some((end, clock, stats, trace));
                finished += 1;
                stable = 0;
                continue;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        if let Some(cap) = options.wall_timeout {
            if started.elapsed() >= cap {
                monitor.abort();
                drain_stragglers(&done_rx, &mut slots, &mut finished);
                if let Some(e) = primary_failure(&slots) {
                    return Err(e);
                }
                let unfinished: Vec<usize> = (0..size).filter(|&r| slots[r].is_none()).collect();
                return Err(RunError::WallTimeout {
                    elapsed: started.elapsed(),
                    unfinished,
                });
            }
        }

        if options.deadlock_detection {
            let progress = monitor.progress();
            if progress != last_progress {
                last_progress = progress;
                stable = 0;
                continue;
            }
            let snapshot = monitor.snapshot();
            let waiting_on: Vec<(usize, usize, i64)> = snapshot
                .iter()
                .enumerate()
                .filter_map(|(rank, p)| match p {
                    RankPhase::Blocked { from, tag } => Some((rank, *from, *tag)),
                    _ => None,
                })
                .collect();
            let any_running = snapshot.contains(&RankPhase::Running);
            if any_running || waiting_on.is_empty() {
                stable = 0;
                continue;
            }
            // Every live rank is blocked and nothing moved: count silent
            // polls before declaring deadlock (a message hand-off or state
            // change would have bumped the progress counter).
            stable += 1;
            if stable >= DEADLOCK_STABLE_POLLS {
                monitor.abort();
                drain_stragglers(&done_rx, &mut slots, &mut finished);
                if let Some(e) = primary_failure(&slots) {
                    return Err(e);
                }
                return Err(RunError::Deadlock {
                    blocked_ranks: waiting_on.iter().map(|w| w.0).collect(),
                    waiting_on,
                });
            }
        }
    }

    if let Some(e) = primary_failure(&slots) {
        return Err(e);
    }
    let mut results = Vec::with_capacity(size);
    let mut local_times = Vec::with_capacity(size);
    let mut stats = Vec::with_capacity(size);
    let mut traces = Vec::with_capacity(size);
    for (rank, slot) in slots.into_iter().enumerate() {
        let Some((end, clock, st, tr)) = slot else {
            return Err(RunError::RankPanicked {
                rank,
                payload: "rank thread vanished without reporting".into(),
            });
        };
        match end {
            RankEnd::Ok(r) => {
                results.push(r);
                local_times.push(clock);
                stats.push(st);
                traces.push(tr);
            }
            // primary_failure() above returned for panics and non-abort
            // comm failures; a stray Aborted still surfaces as an error.
            RankEnd::CommFail(error) => return Err(RunError::Comm { rank, error }),
            RankEnd::Panic(payload) => return Err(RunError::RankPanicked { rank, payload }),
        }
    }
    Ok(RunReport {
        results,
        local_times,
        stats,
        traces,
    })
}

/// After an abort, give rank threads a bounded grace period to report, so
/// the error carries as much context as possible. Threads that still do not
/// finish (e.g. wedged in user compute code) are abandoned, never joined —
/// the engine must not hang.
fn drain_stragglers<R>(
    done_rx: &Receiver<(usize, RankEnd<R>, f64, CommStats, Trace)>,
    slots: &mut [RankSlot<R>],
    finished: &mut usize,
) {
    let deadline = Instant::now() + ABORT_GRACE;
    while *finished < slots.len() && Instant::now() < deadline {
        match done_rx.recv_timeout(COLLECT_POLL) {
            Ok((rank, end, clock, stats, trace)) => {
                slots[rank] = Some((end, clock, stats, trace));
                *finished += 1;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// The primary failure among collected outcomes: a genuine panic wins over
/// secondary communication failures (peers observing the dead rank), and
/// non-abort communication errors win over watchdog-abort fallout.
fn primary_failure<R>(slots: &[RankSlot<R>]) -> Option<RunError> {
    for (rank, slot) in slots.iter().enumerate() {
        if let Some((RankEnd::Panic(payload), ..)) = slot {
            return Some(RunError::RankPanicked {
                rank,
                payload: payload.clone(),
            });
        }
    }
    for (rank, slot) in slots.iter().enumerate() {
        if let Some((RankEnd::CommFail(e), ..)) = slot {
            // `Aborted` is watchdog fallout, never a primary cause — the
            // watchdog's own Deadlock/WallTimeout error describes the run.
            if *e != CommError::Aborted {
                return Some(RunError::Comm {
                    rank,
                    error: e.clone(),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_computes_locally() {
        let report = run_cluster(1, MachineModel::zero_comm(1e-3), |comm| {
            comm.advance_compute(5);
            comm.rank()
        });
        assert_eq!(report.results, vec![0]);
        assert!((report.makespan() - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn ping_pong_virtual_times() {
        let model = MachineModel {
            compute_per_iter: 0.0,
            send_overhead: 1.0,
            recv_overhead: 2.0,
            wire_latency: 4.0,
            per_byte: 0.5,
        };
        let report = run_cluster(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, vec![7.0, 8.0], 16);
                comm.local_time()
            } else {
                let v = comm.recv(0);
                assert_eq!(v, vec![7.0, 8.0]);
                comm.local_time()
            }
        });
        // Sender: 1 + 16·0.5 = 9. Receiver: max(0, 9 + 4) + 2 = 15.
        assert!((report.results[0] - 9.0).abs() < 1e-12);
        assert!((report.results[1] - 15.0).abs() < 1e-12);
        assert!((report.makespan() - 15.0).abs() < 1e-12);
        assert_eq!(report.total_bytes(), 16);
        assert_eq!(report.total_messages(), 1);
        assert_eq!(report.total_retransmissions(), 0);
    }

    #[test]
    fn fifo_order_per_pair() {
        let report = run_cluster(2, MachineModel::zero_comm(0.0), |comm| {
            if comm.rank() == 0 {
                for i in 0..100 {
                    comm.send(1, vec![i as f64], 8);
                }
                0.0
            } else {
                let mut last = -1.0;
                for _ in 0..100 {
                    let v = comm.recv(0)[0];
                    assert!(v > last, "out of order");
                    last = v;
                }
                last
            }
        });
        assert_eq!(report.results[1], 99.0);
    }

    #[test]
    fn pipeline_makespan_reflects_critical_path() {
        // 4-stage pipeline: each rank computes 10 iters then forwards.
        let model = MachineModel {
            compute_per_iter: 1.0,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            wire_latency: 2.0,
            per_byte: 0.0,
        };
        let report = run_cluster(4, model, |comm| {
            let r = comm.rank();
            if r > 0 {
                comm.recv(r - 1);
            }
            comm.advance_compute(10);
            if r < 3 {
                comm.send(r + 1, vec![], 0);
            }
            comm.local_time()
        });
        // Critical path: 4 × 10 compute + 3 × 2 latency = 46.
        assert!((report.makespan() - 46.0).abs() < 1e-12);
    }

    #[test]
    fn wait_time_is_tracked() {
        let model = MachineModel {
            compute_per_iter: 1.0,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            wire_latency: 0.0,
            per_byte: 0.0,
        };
        let report = run_cluster(2, model, |comm| {
            if comm.rank() == 0 {
                comm.advance_compute(100);
                comm.send(1, vec![], 0);
            } else {
                comm.recv(0);
            }
        });
        assert!((report.stats[1].wait_time - 100.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let model = MachineModel::fast_ethernet_p3();
        let run = || {
            run_cluster(4, model, |comm| {
                let r = comm.rank();
                let n = comm.size();
                // Ring: compute, pass a token around twice.
                let mut acc = r as f64;
                for round in 0..2 {
                    comm.advance_compute(50 + r as u64);
                    comm.send((r + 1) % n, vec![acc], 8);
                    acc += comm.recv((r + n - 1) % n)[0] + round as f64;
                }
                (acc, comm.local_time())
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x, y);
        }
        assert_eq!(a.local_times, b.local_times);
    }
}

#[cfg(test)]
mod overlap_tests {
    use super::*;

    fn model() -> MachineModel {
        MachineModel {
            compute_per_iter: 1.0,
            send_overhead: 5.0,
            recv_overhead: 3.0,
            wire_latency: 2.0,
            per_byte: 0.0,
        }
    }

    fn pipeline_run(scheme: CommScheme) -> RunReport<f64> {
        run_cluster_with(3, model(), scheme, |comm| {
            let r = comm.rank();
            if r > 0 {
                comm.recv(r - 1);
            }
            comm.advance_compute(10);
            if r < 2 {
                comm.send(r + 1, vec![], 0);
            }
            comm.local_time()
        })
    }

    #[test]
    fn overlapped_sends_shorten_the_critical_path() {
        let blocking = pipeline_run(CommScheme::Blocking);
        let overlapped = pipeline_run(CommScheme::Overlapped);
        // Blocking: 10 + (5+2+3) + 10 + (5+2+3) + 10 = 50.
        assert!((blocking.makespan() - 50.0).abs() < 1e-12);
        // Overlapped: 10 + (5+2) + 10 + (5+2) + 10 = 44 — injection and
        // receive overheads are off the CPU, wire+bandwidth delay remains.
        assert!((overlapped.makespan() - 44.0).abs() < 1e-12);
    }

    #[test]
    fn drain_sends_pays_only_the_lane_overshoot() {
        let report = run_cluster_with(2, model(), CommScheme::Overlapped, |comm| {
            if comm.rank() == 0 {
                // Two back-to-back sends serialize on the NIC lane: the lane
                // reaches 2 × 5 = 10 while the CPU clock stays at 0.
                comm.send(1, vec![1.0], 0);
                comm.send(1, vec![2.0], 0);
                let before = comm.local_time();
                let paid = comm.drain_sends();
                assert!((before - 0.0).abs() < 1e-12);
                assert!((paid - 10.0).abs() < 1e-12);
                // Idempotent: a second drain finds an empty lane.
                assert_eq!(comm.drain_sends(), 0.0);
                comm.local_time()
            } else {
                comm.recv(0);
                comm.recv(0);
                comm.drain_sends();
                comm.local_time()
            }
        });
        assert!((report.results[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn drain_after_compute_hides_the_lane() {
        // The send's lane time runs concurrently with the compute that
        // follows it, so the drain right after costs nothing.
        let report = run_cluster_with(2, model(), CommScheme::Overlapped, |comm| {
            if comm.rank() == 0 {
                comm.send(1, vec![1.0], 0);
                comm.advance_compute(20); // 20 > send_cost 5: fully hides it
                let paid = comm.drain_sends();
                assert_eq!(paid, 0.0);
                comm.local_time()
            } else {
                comm.recv(0);
                comm.local_time()
            }
        });
        assert!((report.results[0] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn blocking_drain_is_a_no_op() {
        let report = run_cluster_with(2, model(), CommScheme::Blocking, |comm| {
            if comm.rank() == 0 {
                comm.send(1, vec![1.0], 0);
                let t = comm.local_time();
                assert_eq!(comm.drain_sends(), 0.0);
                assert_eq!(comm.local_time(), t);
            } else {
                comm.recv(0);
            }
            comm.local_time()
        });
        assert!((report.results[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn receivers_account_accepted_bytes() {
        let report = pipeline_run(CommScheme::Overlapped);
        assert_eq!(report.total_bytes_received(), report.total_bytes());
        let faulty = run_cluster_opts(
            3,
            MachineModel::fast_ethernet_p3(),
            EngineOptions {
                fault: Some(FaultPlan::chaos(0xABCD, 0.3)),
                ..EngineOptions::default()
            },
            |comm| {
                let r = comm.rank();
                let n = comm.size();
                let mut acc = r as f64;
                for round in 0..6 {
                    comm.advance_compute(10);
                    comm.send_tagged((r + 1) % n, round, vec![acc], 8);
                    acc += comm.recv_tagged((r + n - 1) % n, round)[0];
                }
                acc
            },
        )
        .unwrap();
        // Duplicate-suppressed envelopes must not double-count bytes.
        assert!(faulty.total_duplicates_suppressed() > 0 || faulty.total_retransmissions() > 0);
        assert_eq!(faulty.total_bytes_received(), faulty.total_bytes());
    }

    #[test]
    fn overlap_preserves_payloads_and_order() {
        let report = run_cluster_with(2, model(), CommScheme::Overlapped, |comm| {
            if comm.rank() == 0 {
                for i in 0..10 {
                    comm.send(1, vec![i as f64], 8);
                }
                0.0
            } else {
                (0..10).map(|_| comm.recv(0)[0]).sum()
            }
        });
        assert_eq!(report.results[1], 45.0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    #[test]
    fn traces_record_all_phases() {
        let model = MachineModel {
            compute_per_iter: 1.0,
            send_overhead: 1.0,
            recv_overhead: 1.0,
            wire_latency: 1.0,
            per_byte: 0.0,
        };
        let report = run_cluster_opts(
            2,
            model,
            EngineOptions {
                trace: true,
                ..EngineOptions::default()
            },
            |comm| {
                if comm.rank() == 0 {
                    comm.advance_compute(5);
                    comm.send(1, vec![], 0);
                } else {
                    comm.recv(0);
                    comm.advance_compute(3);
                }
            },
        )
        .unwrap();
        assert_eq!(report.traces.len(), 2);
        assert!((report.traces[0].compute_time() - 5.0).abs() < 1e-12);
        assert!((report.traces[1].compute_time() - 3.0).abs() < 1e-12);
        // Rank 1 waited for rank 0's message: 5 compute + 1 send + 1 wire = 7.
        assert!((report.traces[1].wait_time() - 7.0).abs() < 1e-12);
        let gantt = crate::trace::render_gantt(&report.traces, 60);
        assert!(gantt.contains('#') && gantt.contains('s') && gantt.contains('r'));
    }

    #[test]
    fn tracing_disabled_yields_empty_traces() {
        let report = run_cluster(1, MachineModel::zero_comm(1.0), |comm| {
            comm.advance_compute(1);
        });
        assert!(report.traces[0].events.is_empty());
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;

    fn model() -> MachineModel {
        MachineModel {
            compute_per_iter: 1.0,
            send_overhead: 2.0,
            recv_overhead: 3.0,
            wire_latency: 4.0,
            per_byte: 0.5,
        }
    }

    #[test]
    fn obs_partitions_every_rank_clock() {
        let reg = MetricsRegistry::new();
        let report = run_cluster_opts(
            3,
            model(),
            EngineOptions {
                obs: Some(reg.clone()),
                ..EngineOptions::default()
            },
            |comm| {
                let r = comm.rank();
                if r > 0 {
                    comm.recv(r - 1);
                }
                comm.advance_compute(10);
                if r + 1 < comm.size() {
                    comm.send(r + 1, vec![1.0; 4], 32);
                }
            },
        )
        .unwrap();
        let obs_report = reg.run_report(&report.local_times);
        for r in &obs_report.ranks {
            assert!(
                (r.compute + r.wait + r.comm - r.local_time).abs() < 1e-9,
                "rank {}: {} + {} + {} != {}",
                r.rank,
                r.compute,
                r.wait,
                r.comm,
                r.local_time
            );
        }
        assert_eq!(obs_report.total(Counter::MessagesSent), 2);
        assert_eq!(obs_report.total(Counter::MessagesReceived), 2);
        assert_eq!(obs_report.total(Counter::BytesSent), 64);
        assert_eq!(obs_report.total(Counter::BytesReceived), 64);
        // Send and Recv spans from the ranks were flushed before collection.
        let spans = reg.spans();
        assert!(spans.iter().any(|s| s.phase == Phase::Send));
        assert!(spans.iter().any(|s| s.phase == Phase::Recv));
    }

    #[test]
    fn obs_accounts_faults_and_suppressions() {
        let reg = MetricsRegistry::new();
        let report = run_cluster_opts(
            3,
            MachineModel::fast_ethernet_p3(),
            EngineOptions {
                fault: Some(FaultPlan::chaos(0xBEEF, 0.3)),
                obs: Some(reg.clone()),
                ..EngineOptions::default()
            },
            |comm| {
                let r = comm.rank();
                let n = comm.size();
                let mut acc = r as f64;
                for round in 0..6 {
                    comm.advance_compute(10);
                    comm.send_tagged((r + 1) % n, round, vec![acc], 8);
                    acc += comm.recv_tagged((r + n - 1) % n, round)[0];
                }
                acc
            },
        )
        .unwrap();
        let obs_report = reg.run_report(&report.local_times);
        // Exactly-once delivery under faults.
        assert_eq!(
            obs_report.total(Counter::MessagesReceived),
            obs_report.total(Counter::MessagesSent)
        );
        assert_eq!(
            obs_report.total(Counter::BytesReceived),
            obs_report.total(Counter::BytesSent)
        );
        // Every injected drop costs exactly one retransmission.
        assert_eq!(
            obs_report.total(Counter::Retransmits),
            obs_report.total(Counter::FaultDrops)
        );
        // A duplicate copy can only be suppressed if it was injected.
        assert!(obs_report.total(Counter::DupsSuppressed) <= obs_report.total(Counter::FaultDups));
        // And the obs counters agree with the engine's own stats.
        assert_eq!(
            obs_report.total(Counter::Retransmits),
            report.total_retransmissions()
        );
        assert_eq!(
            obs_report.total(Counter::DupsSuppressed),
            report.total_duplicates_suppressed()
        );
        for r in &obs_report.ranks {
            assert!(
                (r.compute + r.wait + r.comm - r.local_time).abs() < 1e-9,
                "faulty run must still partition rank {} clock",
                r.rank
            );
        }
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    fn zero() -> MachineModel {
        MachineModel::zero_comm(1.0)
    }

    #[test]
    fn rank_panic_is_contained_and_reported() {
        // Rank 1 panics mid-chain; ranks blocked on it must unwind, and the
        // run must report the panic — not abort the process, not hang.
        let err = run_cluster_opts(3, zero(), EngineOptions::default(), |comm| {
            let r = comm.rank();
            if r == 1 {
                comm.advance_compute(1);
                panic!("intentional failure in rank 1");
            }
            // Both other ranks wait on rank 1 forever.
            comm.recv(1);
        })
        .unwrap_err();
        match err {
            RunError::RankPanicked { rank, payload } => {
                assert_eq!(rank, 1);
                assert!(payload.contains("intentional failure"), "{payload}");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn cyclic_schedule_is_reported_as_deadlock() {
        let err = run_cluster_opts(2, zero(), EngineOptions::default(), |comm| {
            // Both ranks receive first: a 2-cycle, classic deadlock.
            let peer = 1 - comm.rank();
            comm.recv_tagged(peer, 7);
            comm.send(peer, vec![], 0);
        })
        .unwrap_err();
        match err {
            RunError::Deadlock {
                blocked_ranks,
                waiting_on,
            } => {
                assert_eq!(blocked_ranks, vec![0, 1]);
                assert!(waiting_on.contains(&(0, 1, 7)), "{waiting_on:?}");
                assert!(waiting_on.contains(&(1, 0, 7)), "{waiting_on:?}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn wall_timeout_bounds_a_wedged_run() {
        let options = EngineOptions {
            wall_timeout: Some(Duration::from_millis(300)),
            // The wedge below blocks only one of two ranks, so the deadlock
            // detector stays quiet and the cap must fire.
            ..EngineOptions::default()
        };
        let err = run_cluster_opts(2, zero(), options, |comm| {
            if comm.rank() == 0 {
                // Wall-clock wedge the virtual engine knows nothing about.
                std::thread::sleep(Duration::from_secs(600));
            } else {
                comm.recv(0);
            }
        })
        .unwrap_err();
        match err {
            RunError::WallTimeout { unfinished, .. } => {
                assert!(unfinished.contains(&0), "{unfinished:?}");
            }
            other => panic!("expected WallTimeout, got {other:?}"),
        }
    }

    #[test]
    fn injected_crash_is_reported_with_virtual_time() {
        let fault = FaultPlan::default().with_crash(2, 5.0);
        let options = EngineOptions {
            fault: Some(fault),
            ..EngineOptions::default()
        };
        let err = run_cluster_opts(4, zero(), options, |comm| {
            let r = comm.rank();
            // A chain 0 → 1 → 2 → 3; rank 2 dies at t = 5.
            if r > 0 {
                comm.recv(r - 1);
            }
            comm.advance_compute(10);
            if r + 1 < comm.size() {
                comm.send(r + 1, vec![], 0);
            }
        })
        .unwrap_err();
        match err {
            RunError::RankPanicked { rank, payload } => {
                assert_eq!(rank, 2);
                assert!(payload.contains("injected crash"), "{payload}");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn lossy_links_converge_to_fault_free_results() {
        let run = |fault: Option<FaultPlan>| {
            run_cluster_opts(
                4,
                MachineModel::fast_ethernet_p3(),
                EngineOptions {
                    fault,
                    ..EngineOptions::default()
                },
                |comm| {
                    let r = comm.rank();
                    let n = comm.size();
                    let mut acc = (r + 1) as f64;
                    for round in 0..8 {
                        comm.advance_compute(20 + r as u64);
                        comm.send_tagged((r + 1) % n, round, vec![acc, acc * 0.5], 16);
                        let got = comm.recv_tagged((r + n - 1) % n, round);
                        acc += got[0] * 0.25 + got[1];
                    }
                    acc
                },
            )
            .unwrap()
        };
        let clean = run(None);
        let faulty = run(Some(FaultPlan::chaos(0xF00D, 0.3)));
        // Bitwise-identical data; only the clocks may differ (retransmission
        // charges), and the reliability layer's work must be visible.
        for (a, b) in clean.results.iter().zip(&faulty.results) {
            assert_eq!(a.to_bits(), b.to_bits(), "data must survive faults bitwise");
        }
        assert!(
            faulty.total_retransmissions() > 0,
            "drops must cause retransmissions"
        );
        assert!(
            faulty.total_duplicates_suppressed() > 0,
            "duplicates must be suppressed"
        );
        assert!(
            faulty.makespan() >= clean.makespan(),
            "faults cannot speed the run up"
        );
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let run = || {
            run_cluster_opts(
                3,
                MachineModel::fast_ethernet_p3(),
                EngineOptions {
                    fault: Some(FaultPlan::chaos(42, 0.25)),
                    ..EngineOptions::default()
                },
                |comm| {
                    let r = comm.rank();
                    let n = comm.size();
                    let mut acc = r as f64;
                    for round in 0..6 {
                        comm.advance_compute(10);
                        comm.send_tagged((r + 1) % n, round, vec![acc], 8);
                        acc += comm.recv_tagged((r + n - 1) % n, round)[0];
                    }
                    (acc, comm.local_time())
                },
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.local_times, b.local_times);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn total_drop_reports_retransmit_exhausted() {
        let fault = FaultPlan {
            max_retries: 4,
            ..FaultPlan::lossy(1, 1.0)
        };
        let options = EngineOptions {
            fault: Some(fault),
            ..EngineOptions::default()
        };
        let err = run_cluster_opts(2, zero(), options, |comm| {
            if comm.rank() == 0 {
                comm.send_tagged(1, 9, vec![1.0], 8);
            } else {
                comm.recv_tagged(0, 9);
            }
        })
        .unwrap_err();
        match err {
            RunError::Comm {
                rank: 0,
                error:
                    CommError::RetransmitExhausted {
                        rank: 1,
                        tag: 9,
                        attempts,
                    },
            } => {
                assert_eq!(attempts, 5);
            }
            other => panic!("expected Comm/RetransmitExhausted, got {other:?}"),
        }
    }

    #[test]
    fn crash_without_recovery_policy_still_fails() {
        let fault = FaultPlan::default().with_crash(1, 5.0);
        let options = EngineOptions {
            fault: Some(fault),
            ..EngineOptions::default()
        };
        let err = run_cluster_opts(2, zero(), options, |comm| {
            comm.advance_compute(10);
            comm.advance_compute(10);
        })
        .unwrap_err();
        match err {
            RunError::RankPanicked { rank, payload } => {
                assert_eq!(rank, 1);
                assert!(payload.contains("injected crash"), "{payload}");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn stall_shifts_the_victims_clock_only() {
        let model = MachineModel::zero_comm(1.0);
        let clean = run_cluster_opts(2, model, EngineOptions::default(), |comm| {
            comm.advance_compute(10);
            comm.local_time()
        })
        .unwrap();
        let stalled = run_cluster_opts(
            2,
            model,
            EngineOptions {
                fault: Some(FaultPlan::default().with_stall(1, 5.0, 100.0)),
                ..EngineOptions::default()
            },
            |comm| {
                comm.advance_compute(10);
                // A second op so the stall (triggered at t >= 5) fires.
                comm.advance_compute(10);
                comm.local_time()
            },
        )
        .unwrap();
        assert_eq!(clean.results[0] + 10.0, stalled.results[0]);
        assert_eq!(stalled.results[1], stalled.results[0] + 100.0);
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use std::panic::resume_unwind;

    /// A ring-exchange chain that checkpoints every `recovery_interval`
    /// rounds and restores from injected crashes — the executor's recovery
    /// loop in miniature. The app snapshot is the accumulator's bit pattern.
    fn resilient_ring(comm: &mut ThreadedComm, rounds: u64) -> f64 {
        let k = comm.recovery_interval().unwrap_or(u64::MAX);
        let mut pos = 0u64;
        let mut acc = (comm.rank() + 1) as f64;
        loop {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let (r, n) = (comm.rank(), comm.size());
                let mut acc = acc;
                for round in pos..rounds {
                    if round % k == 0 {
                        comm.checkpoint(round, &acc.to_bits().to_le_bytes());
                    }
                    comm.advance_compute(10 + r as u64);
                    comm.send_tagged((r + 1) % n, round as i64, vec![acc, acc * 0.5], 16);
                    let got = comm.recv_tagged((r + n - 1) % n, round as i64);
                    acc += got[0] * 0.25 + got[1];
                }
                acc
            }));
            match attempt {
                Ok(v) => return v,
                Err(payload) => {
                    if payload.downcast_ref::<InjectedCrash>().is_some() {
                        if let Some(res) = comm.try_restore() {
                            pos = res.chain_pos;
                            acc = f64::from_bits(u64::from_le_bytes(
                                res.app[..8].try_into().expect("8-byte app snapshot"),
                            ));
                            continue;
                        }
                    }
                    resume_unwind(payload);
                }
            }
        }
    }

    fn run_ring(
        fault: Option<FaultPlan>,
        max_recoveries: u64,
        obs: Option<Arc<MetricsRegistry>>,
    ) -> Result<RunReport<f64>, RunError> {
        run_cluster_opts(
            3,
            MachineModel::fast_ethernet_p3(),
            EngineOptions {
                fault,
                recovery: Some(RecoveryOptions {
                    interval: 3,
                    max_recoveries,
                }),
                obs,
                ..EngineOptions::default()
            },
            |comm| resilient_ring(comm, 9),
        )
    }

    #[test]
    fn injected_crash_recovers_bitwise() {
        let clean = run_ring(None, 1, None).unwrap();
        let crash = FaultPlan::default().with_crash(1, clean.makespan() * 0.5);
        let rec = run_ring(Some(crash), 1, None).unwrap();
        // Data bitwise identical to the fault-free run.
        for (a, b) in clean.results.iter().zip(&rec.results) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "data must survive a crash bitwise"
            );
        }
        // The victim recovered exactly once; everyone else never rewound.
        assert_eq!(rec.stats[1].recoveries, 1);
        assert!(rec.stats[1].recovery_time > 0.0);
        assert_eq!(rec.stats[0].recoveries, 0);
        assert_eq!(rec.stats[2].recoveries, 0);
        // Makespan excluding recovery is bitwise fault-free: the recovered
        // clock is exactly the fault-free clock plus the settled debt.
        for r in 0..3 {
            let expected = clean.local_times[r] + rec.stats[r].recovery_time;
            assert_eq!(
                expected.to_bits(),
                rec.local_times[r].to_bits(),
                "rank {r}: {} + {} != {}",
                clean.local_times[r],
                rec.stats[r].recovery_time,
                rec.local_times[r]
            );
        }
        // Logical counters match the fault-free run.
        for (c, f) in clean.stats.iter().zip(&rec.stats) {
            assert_eq!(c.messages_sent, f.messages_sent);
            assert_eq!(c.bytes_sent, f.bytes_sent);
            assert_eq!(c.messages_received, f.messages_received);
            assert_eq!(c.bytes_received, f.bytes_received);
        }
    }

    #[test]
    fn recovery_preserves_the_partition_identity() {
        let clean = run_ring(None, 1, None).unwrap();
        let reg = MetricsRegistry::new();
        let crash = FaultPlan::default().with_crash(2, clean.makespan() * 0.4);
        let rec = run_ring(Some(crash), 1, Some(reg.clone())).unwrap();
        let obs_report = reg.run_report(&rec.local_times);
        assert_eq!(obs_report.total(Counter::Recoveries), 1);
        assert!(obs_report.total(Counter::Checkpoints) > 0);
        for r in &obs_report.ranks {
            assert!(
                (r.compute + r.wait + r.comm + r.recovery - r.local_time).abs() < 1e-9,
                "rank {}: {} + {} + {} + {} != {}",
                r.rank,
                r.compute,
                r.wait,
                r.comm,
                r.recovery,
                r.local_time
            );
        }
        // Obs counters match a fault-free run with the same cadence (the
        // rewind restores them before re-execution re-adds them).
        let clean_reg = MetricsRegistry::new();
        let clean2 = run_ring(None, 1, Some(clean_reg.clone())).unwrap();
        let clean_report = clean_reg.run_report(&clean2.local_times);
        assert_eq!(
            clean_report.total(Counter::MessagesSent),
            obs_report.total(Counter::MessagesSent)
        );
        assert_eq!(
            clean_report.total(Counter::BytesReceived),
            obs_report.total(Counter::BytesReceived)
        );
        assert_eq!(
            clean_report.total(Counter::Checkpoints),
            obs_report.total(Counter::Checkpoints)
        );
    }

    #[test]
    fn exhausted_recovery_budget_fails_the_run() {
        let clean = run_ring(None, 1, None).unwrap();
        let crash = FaultPlan::default().with_crash(1, clean.makespan() * 0.5);
        let err = run_ring(Some(crash), 0, None).unwrap_err();
        match err {
            RunError::RankPanicked { rank, payload } => {
                assert_eq!(rank, 1);
                assert!(payload.contains("injected crash"), "{payload}");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn crash_overlapping_chaos_recovers_the_checksum() {
        // Satellite: a rank crash overlapping 30% drop/dup/reorder on the
        // same run must still reproduce the fault-free data bitwise.
        let clean = run_ring(None, 1, None).unwrap();
        let fault = FaultPlan::chaos(0xC0FFEE, 0.3).with_crash(1, clean.makespan() * 0.5);
        let rec = run_ring(Some(fault), 1, None).unwrap();
        for (a, b) in clean.results.iter().zip(&rec.results) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "data must survive crash + chaos bitwise"
            );
        }
        assert_eq!(rec.stats[1].recoveries, 1);
        // And the recovered chaos run is itself deterministic.
        let again = run_ring(
            Some(FaultPlan::chaos(0xC0FFEE, 0.3).with_crash(1, clean.makespan() * 0.5)),
            1,
            None,
        )
        .unwrap();
        assert_eq!(rec.results, again.results);
        assert_eq!(rec.local_times, again.local_times);
    }

    #[test]
    fn two_crashes_consume_the_shared_budget() {
        let clean = run_ring(None, 2, None).unwrap();
        let fault = FaultPlan::default()
            .with_crash(0, clean.makespan() * 0.3)
            .with_crash(2, clean.makespan() * 0.6);
        let rec = run_ring(Some(fault), 2, None).unwrap();
        for (a, b) in clean.results.iter().zip(&rec.results) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(rec.stats[0].recoveries, 1);
        assert_eq!(rec.stats[2].recoveries, 1);
    }
}
