//! The threaded cluster engine: one OS thread per logical process,
//! crossbeam channels as links.
//!
//! Execution is *functionally deterministic*: programs only use blocking
//! point-to-point receives on FIFO per-pair channels, so computed values and
//! virtual clocks do not depend on OS scheduling. The engine therefore
//! doubles as a discrete-event simulator — the returned [`RunReport`]
//! contains the exact virtual makespan on the modelled machine.

use crate::comm::{Comm, CommStats, Envelope};
use crate::model::MachineModel;
use crate::trace::{Event, Trace};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::thread;

/// Outcome of a cluster run.
#[derive(Clone, Debug)]
pub struct RunReport<R> {
    /// Per-rank results returned by the SPMD closure.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks.
    pub local_times: Vec<f64>,
    /// Per-rank statistics.
    pub stats: Vec<CommStats>,
    /// Per-rank event traces (empty unless tracing was enabled).
    pub traces: Vec<Trace>,
}

impl<R> RunReport<R> {
    /// The simulated parallel completion time: the latest local clock.
    pub fn makespan(&self) -> f64 {
        self.local_times.iter().copied().fold(0.0, f64::max)
    }

    /// Aggregate bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// Aggregate messages sent across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.stats.iter().map(|s| s.messages_sent).sum()
    }
}

/// Communication scheme for the virtual-time model.
///
/// `Blocking` is the paper's scheme: the CPU pays the full send cost before
/// continuing and the full receive overhead on arrival. `Overlapped` models
/// the computation/communication overlapping of the paper's future-work
/// reference (Goumas/Sotiropoulos/Koziris, IPDPS'01 [8]): transfers proceed
/// in the background (DMA/comm thread), so the sender's clock is not
/// charged for injection and the receiver pays no per-message overhead —
/// only true data-dependence waiting remains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CommScheme {
    #[default]
    Blocking,
    Overlapped,
}

/// Engine options: communication scheme plus optional event tracing.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineOptions {
    pub scheme: CommScheme,
    pub trace: bool,
}

/// Communication endpoint handed to each SPMD thread.
pub struct ThreadedComm {
    rank: usize,
    size: usize,
    model: MachineModel,
    scheme: CommScheme,
    clock: f64,
    stats: CommStats,
    trace: Option<Trace>,
    /// `txs[to]`: channel to each peer (slot `rank` unused).
    txs: Vec<Option<Sender<Envelope>>>,
    /// `rxs[from]`: channel from each peer.
    rxs: Vec<Option<Receiver<Envelope>>>,
    /// Per-peer buffers of arrived-but-unmatched messages (MPI-style tag
    /// matching).
    pending: Vec<Vec<Envelope>>,
}

impl Comm for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_tagged(&mut self, to: usize, tag: i64, payload: Vec<f64>, nominal_bytes: usize) {
        assert!(to != self.rank, "send to self is not supported");
        let ready_at = match self.scheme {
            CommScheme::Blocking => {
                self.clock += self.model.send_cost(nominal_bytes);
                self.clock + self.model.wire_latency
            }
            // Background transfer: injection and wire time off the CPU.
            CommScheme::Overlapped => {
                self.clock + self.model.send_cost(nominal_bytes) + self.model.wire_latency
            }
        };
        let env = Envelope { payload, tag, ready_at };
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += nominal_bytes as u64;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Send { at: self.clock, to, bytes: nominal_bytes });
        }
        self.txs[to]
            .as_ref()
            .expect("no channel to peer")
            .send(env)
            .expect("receiver hung up");
    }

    fn recv_tagged(&mut self, from: usize, tag: i64) -> Vec<f64> {
        assert!(from != self.rank, "recv from self is not supported");
        let start = self.clock;
        // Match against already-arrived messages first (MPI tag matching).
        let env = if let Some(pos) = self.pending[from].iter().position(|e| e.tag == tag) {
            self.pending[from].remove(pos)
        } else {
            loop {
                let env = self.rxs[from]
                    .as_ref()
                    .expect("no channel from peer")
                    .recv()
                    .expect("sender hung up — deadlock or peer panic");
                if env.tag == tag {
                    break env;
                }
                // Arrived but not the requested message: buffer it. Its
                // arrival does not advance the CPU clock (the NIC holds it).
                self.pending[from].push(env);
            }
        };
        if env.ready_at > self.clock {
            self.stats.wait_time += env.ready_at - self.clock;
            self.clock = env.ready_at;
        }
        let ready = self.clock;
        if self.scheme == CommScheme::Blocking {
            self.clock += self.model.recv_overhead;
        }
        self.stats.messages_received += 1;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Recv { start, ready, end: self.clock, from });
        }
        env.payload
    }

    fn advance_compute(&mut self, iters: u64) {
        let dt = self.model.compute_cost(iters);
        let start = self.clock;
        self.clock += dt;
        self.stats.compute_time += dt;
        if let Some(tr) = &mut self.trace {
            tr.events.push(Event::Compute { start, end: self.clock, iters });
        }
    }

    fn local_time(&self) -> f64 {
        self.clock
    }

    fn model(&self) -> &MachineModel {
        &self.model
    }

    fn stats(&self) -> CommStats {
        self.stats
    }
}

/// Run an SPMD program over `size` logical processes. The closure receives
/// each process's [`ThreadedComm`]; its return values, final clocks and
/// statistics are collected into a [`RunReport`] (indexed by rank).
///
/// # Panics
/// Propagates panics from any rank (the whole run is aborted).
pub fn run_cluster<R, F>(size: usize, model: MachineModel, f: F) -> RunReport<R>
where
    R: Send + 'static,
    F: Fn(&mut ThreadedComm) -> R + Send + Sync + 'static,
{
    run_cluster_with(size, model, CommScheme::Blocking, f)
}

/// [`run_cluster`] with an explicit communication scheme.
pub fn run_cluster_with<R, F>(
    size: usize,
    model: MachineModel,
    scheme: CommScheme,
    f: F,
) -> RunReport<R>
where
    R: Send + 'static,
    F: Fn(&mut ThreadedComm) -> R + Send + Sync + 'static,
{
    run_cluster_opts(size, model, EngineOptions { scheme, trace: false }, f)
}

/// [`run_cluster`] with full engine options (scheme + tracing).
pub fn run_cluster_opts<R, F>(
    size: usize,
    model: MachineModel,
    options: EngineOptions,
    f: F,
) -> RunReport<R>
where
    R: Send + 'static,
    F: Fn(&mut ThreadedComm) -> R + Send + Sync + 'static,
{
    let scheme = options.scheme;
    assert!(size > 0, "cluster needs at least one process");
    // Channel matrix: channels[from][to].
    let mut senders: Vec<Vec<Option<Sender<Envelope>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<Receiver<Envelope>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    for from in 0..size {
        for to in 0..size {
            if from == to {
                continue;
            }
            let (tx, rx) = unbounded();
            senders[from][to] = Some(tx);
            receivers[to][from] = Some(rx);
        }
    }

    let f = std::sync::Arc::new(f);
    let mut handles = Vec::with_capacity(size);
    for (rank, (txs, rxs)) in senders.into_iter().zip(receivers).enumerate() {
        let f = f.clone();
        let mut comm = ThreadedComm {
            rank,
            size,
            model,
            scheme,
            clock: 0.0,
            stats: CommStats::default(),
            trace: options.trace.then(Trace::default),
            pending: (0..size).map(|_| Vec::new()).collect(),
            txs,
            rxs,
        };
        handles.push(
            thread::Builder::new()
                .name(format!("tilecc-rank-{rank}"))
                .spawn(move || {
                    let r = f(&mut comm);
                    (r, comm.clock, comm.stats, comm.trace.unwrap_or_default())
                })
                .expect("failed to spawn rank thread"),
        );
    }

    let mut results = Vec::with_capacity(size);
    let mut local_times = Vec::with_capacity(size);
    let mut stats = Vec::with_capacity(size);
    let mut traces = Vec::with_capacity(size);
    for h in handles {
        let (r, t, s, tr) = h.join().expect("rank thread panicked");
        results.push(r);
        local_times.push(t);
        stats.push(s);
        traces.push(tr);
    }
    RunReport { results, local_times, stats, traces }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_computes_locally() {
        let report = run_cluster(1, MachineModel::zero_comm(1e-3), |comm| {
            comm.advance_compute(5);
            comm.rank()
        });
        assert_eq!(report.results, vec![0]);
        assert!((report.makespan() - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn ping_pong_virtual_times() {
        let model = MachineModel {
            compute_per_iter: 0.0,
            send_overhead: 1.0,
            recv_overhead: 2.0,
            wire_latency: 4.0,
            per_byte: 0.5,
        };
        let report = run_cluster(2, model, |comm| {
            if comm.rank() == 0 {
                comm.send(1, vec![7.0, 8.0], 16);
                comm.local_time()
            } else {
                let v = comm.recv(0);
                assert_eq!(v, vec![7.0, 8.0]);
                comm.local_time()
            }
        });
        // Sender: 1 + 16·0.5 = 9. Receiver: max(0, 9 + 4) + 2 = 15.
        assert!((report.results[0] - 9.0).abs() < 1e-12);
        assert!((report.results[1] - 15.0).abs() < 1e-12);
        assert!((report.makespan() - 15.0).abs() < 1e-12);
        assert_eq!(report.total_bytes(), 16);
        assert_eq!(report.total_messages(), 1);
    }

    #[test]
    fn fifo_order_per_pair() {
        let report = run_cluster(2, MachineModel::zero_comm(0.0), |comm| {
            if comm.rank() == 0 {
                for i in 0..100 {
                    comm.send(1, vec![i as f64], 8);
                }
                0.0
            } else {
                let mut last = -1.0;
                for _ in 0..100 {
                    let v = comm.recv(0)[0];
                    assert!(v > last, "out of order");
                    last = v;
                }
                last
            }
        });
        assert_eq!(report.results[1], 99.0);
    }

    #[test]
    fn pipeline_makespan_reflects_critical_path() {
        // 4-stage pipeline: each rank computes 10 iters then forwards.
        let model = MachineModel {
            compute_per_iter: 1.0,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            wire_latency: 2.0,
            per_byte: 0.0,
        };
        let report = run_cluster(4, model, |comm| {
            let r = comm.rank();
            if r > 0 {
                comm.recv(r - 1);
            }
            comm.advance_compute(10);
            if r < 3 {
                comm.send(r + 1, vec![], 0);
            }
            comm.local_time()
        });
        // Critical path: 4 × 10 compute + 3 × 2 latency = 46.
        assert!((report.makespan() - 46.0).abs() < 1e-12);
    }

    #[test]
    fn wait_time_is_tracked() {
        let model = MachineModel {
            compute_per_iter: 1.0,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            wire_latency: 0.0,
            per_byte: 0.0,
        };
        let report = run_cluster(2, model, |comm| {
            if comm.rank() == 0 {
                comm.advance_compute(100);
                comm.send(1, vec![], 0);
            } else {
                comm.recv(0);
            }
        });
        assert!((report.stats[1].wait_time - 100.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let model = MachineModel::fast_ethernet_p3();
        let run = || {
            run_cluster(4, model, |comm| {
                let r = comm.rank();
                let n = comm.size();
                // Ring: compute, pass a token around twice.
                let mut acc = r as f64;
                for round in 0..2 {
                    comm.advance_compute(50 + r as u64);
                    comm.send((r + 1) % n, vec![acc], 8);
                    acc += comm.recv((r + n - 1) % n)[0] + round as f64;
                }
                (acc, comm.local_time())
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x, y);
        }
        assert_eq!(a.local_times, b.local_times);
    }
}

#[cfg(test)]
mod overlap_tests {
    use super::*;

    fn model() -> MachineModel {
        MachineModel {
            compute_per_iter: 1.0,
            send_overhead: 5.0,
            recv_overhead: 3.0,
            wire_latency: 2.0,
            per_byte: 0.0,
        }
    }

    fn pipeline_run(scheme: CommScheme) -> RunReport<f64> {
        run_cluster_with(3, model(), scheme, |comm| {
            let r = comm.rank();
            if r > 0 {
                comm.recv(r - 1);
            }
            comm.advance_compute(10);
            if r < 2 {
                comm.send(r + 1, vec![], 0);
            }
            comm.local_time()
        })
    }

    #[test]
    fn overlapped_sends_shorten_the_critical_path() {
        let blocking = pipeline_run(CommScheme::Blocking);
        let overlapped = pipeline_run(CommScheme::Overlapped);
        // Blocking: 10 + (5+2+3) + 10 + (5+2+3) + 10 = 50.
        assert!((blocking.makespan() - 50.0).abs() < 1e-12);
        // Overlapped: 10 + (5+2) + 10 + (5+2) + 10 = 44 — injection and
        // receive overheads are off the CPU, wire+bandwidth delay remains.
        assert!((overlapped.makespan() - 44.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_preserves_payloads_and_order() {
        let report = run_cluster_with(2, model(), CommScheme::Overlapped, |comm| {
            if comm.rank() == 0 {
                for i in 0..10 {
                    comm.send(1, vec![i as f64], 8);
                }
                0.0
            } else {
                (0..10).map(|_| comm.recv(0)[0]).sum()
            }
        });
        assert_eq!(report.results[1], 45.0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    #[test]
    fn traces_record_all_phases() {
        let model = MachineModel {
            compute_per_iter: 1.0,
            send_overhead: 1.0,
            recv_overhead: 1.0,
            wire_latency: 1.0,
            per_byte: 0.0,
        };
        let report = run_cluster_opts(
            2,
            model,
            EngineOptions { scheme: CommScheme::Blocking, trace: true },
            |comm| {
                if comm.rank() == 0 {
                    comm.advance_compute(5);
                    comm.send(1, vec![], 0);
                } else {
                    comm.recv(0);
                    comm.advance_compute(3);
                }
            },
        );
        assert_eq!(report.traces.len(), 2);
        assert!((report.traces[0].compute_time() - 5.0).abs() < 1e-12);
        assert!((report.traces[1].compute_time() - 3.0).abs() < 1e-12);
        // Rank 1 waited for rank 0's message: 5 compute + 1 send + 1 wire = 7.
        assert!((report.traces[1].wait_time() - 7.0).abs() < 1e-12);
        let gantt = crate::trace::render_gantt(&report.traces, 60);
        assert!(gantt.contains('#') && gantt.contains('s') && gantt.contains('r'));
    }

    #[test]
    fn tracing_disabled_yields_empty_traces() {
        let report = run_cluster(1, MachineModel::zero_comm(1.0), |comm| {
            comm.advance_compute(1);
        });
        assert!(report.traces[0].events.is_empty());
    }
}
