//! The TCMP wire format: length-prefixed binary framing for the TCP
//! cluster backend.
//!
//! Every frame — data envelopes and control messages alike — starts with a
//! fixed 48-byte little-endian header followed by `payload_len` payload
//! bytes. The byte-level layout is specified in
//! [`docs/wire-protocol.md`](../../../../docs/wire-protocol.md); the
//! constants below are the single source of truth and the doc-test in this
//! module plus `tests/wire_format.rs` keep the document honest.
//!
//! ```text
//! offset  size  field
//!      0     4  magic          b"TCMP"
//!      4     2  version        u16, currently 1
//!      6     2  kind           u16, FrameKind discriminant
//!      8     4  src_rank       u32, sender's rank
//!     12     4  payload_len    u32, payload bytes after the header
//!     16     8  tag            i64, MPI-style message tag
//!     24     8  seq            u64, per-link sequence number
//!     32     8  ready_at       f64 bit pattern, virtual arrival time
//!     40     8  nominal_bytes  u64, modelled message size
//!     48     …  payload
//! ```
//!
//! Data payloads are the envelope's `f64` values as consecutive 8-byte
//! little-endian bit patterns, so values survive the wire **bitwise** and a
//! TCP run reproduces the threaded engine's results exactly. Control
//! payloads (rendezvous, results, errors) are defined by their senders;
//! the codec only bounds and transports them.
//!
//! The layout doc-test — the encoder must agree with the documented
//! offsets:
//!
//! ```
//! use tilecc_cluster::wire::*;
//! use tilecc_cluster::Envelope;
//!
//! assert_eq!(HEADER_LEN, 48);
//! assert_eq!((OFF_MAGIC, OFF_VERSION, OFF_KIND, OFF_SRC_RANK), (0, 4, 6, 8));
//! assert_eq!(
//!     (OFF_PAYLOAD_LEN, OFF_TAG, OFF_SEQ, OFF_READY_AT, OFF_NOMINAL_BYTES),
//!     (12, 16, 24, 32, 40)
//! );
//!
//! let env = Envelope { payload: vec![1.5], tag: -2, ready_at: 0.25, seq: 7, bytes: 24 };
//! let bytes = encode_envelope(3, &env);
//! assert_eq!(bytes.len(), HEADER_LEN + 8);
//! assert_eq!(&bytes[OFF_MAGIC..OFF_MAGIC + 4], b"TCMP");
//! let u16_at = |o: usize| u16::from_le_bytes(bytes[o..o + 2].try_into().unwrap());
//! let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
//! let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
//! assert_eq!(u16_at(OFF_VERSION), VERSION);
//! assert_eq!(u16_at(OFF_KIND), FrameKind::Data as u16);
//! assert_eq!(u32_at(OFF_SRC_RANK), 3);
//! assert_eq!(u32_at(OFF_PAYLOAD_LEN), 8);
//! assert_eq!(i64::from_le_bytes(bytes[OFF_TAG..OFF_TAG + 8].try_into().unwrap()), -2);
//! assert_eq!(u64_at(OFF_SEQ), 7);
//! assert_eq!(u64_at(OFF_READY_AT), 0.25f64.to_bits());
//! assert_eq!(u64_at(OFF_NOMINAL_BYTES), 24);
//! assert_eq!(u64_at(HEADER_LEN), 1.5f64.to_bits());
//! ```

use crate::comm::Envelope;
use std::io::{Read, Write};

/// Frame magic, the first four bytes of every frame: `b"TCMP"`.
pub const MAGIC: [u8; 4] = *b"TCMP";
/// Current protocol version. Peers speaking a different version are
/// rejected with [`WireError::BadVersion`] — there is no downgrade path.
pub const VERSION: u16 = 1;
/// Fixed header size in bytes; the payload follows immediately.
pub const HEADER_LEN: usize = 48;
/// Upper bound on `payload_len`. Anything larger is treated as stream
/// corruption ([`WireError::Oversize`]) rather than an allocation request.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// Byte offset of the magic within the header.
pub const OFF_MAGIC: usize = 0;
/// Byte offset of the `u16` protocol version.
pub const OFF_VERSION: usize = 4;
/// Byte offset of the `u16` frame kind.
pub const OFF_KIND: usize = 6;
/// Byte offset of the `u32` sender rank.
pub const OFF_SRC_RANK: usize = 8;
/// Byte offset of the `u32` payload length in bytes.
pub const OFF_PAYLOAD_LEN: usize = 12;
/// Byte offset of the `i64` message tag.
pub const OFF_TAG: usize = 16;
/// Byte offset of the `u64` per-link sequence number.
pub const OFF_SEQ: usize = 24;
/// Byte offset of the `f64` (bit pattern) virtual arrival time.
pub const OFF_READY_AT: usize = 32;
/// Byte offset of the `u64` nominal (modelled) message size.
pub const OFF_NOMINAL_BYTES: usize = 40;

/// What a frame carries. Discriminants are the on-wire `u16` values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum FrameKind {
    /// An [`Envelope`] between ranks: payload is `f64` bit patterns.
    Data = 1,
    /// Worker → rendezvous: "rank `src_rank` listens at `payload`
    /// (UTF-8 `host:port`)"; `seq` carries the world size for validation.
    Hello = 2,
    /// Rendezvous → worker: newline-separated `host:port` listener
    /// addresses of all ranks, in rank order.
    Addrs = 3,
    /// Mesh handshake, written once by the dialing (higher-ranked) side so
    /// the accepting side learns which rank owns the socket.
    Peer = 4,
    /// Worker → driver: the rank finished; `ready_at` is its final virtual
    /// clock, the payload is caller-defined (stats + gathered data).
    Result = 5,
    /// Worker → driver: the rank failed; `seq` is the failure class
    /// (1 panic, 2 comm), `tag`/`nominal_bytes` encode a typed
    /// [`CommError`](crate::CommError), the payload is the message text.
    Error = 6,
    /// Worker → driver heartbeat: `seq` is the local progress counter,
    /// `nominal_bytes` is 0 when running, `from + 1` when blocked on rank
    /// `from` (with `tag` the awaited tag), `u64::MAX` when done.
    Progress = 7,
    /// Driver → worker: all results are in, the worker may exit. Workers
    /// hold their process open until this arrives so no socket carrying
    /// undelivered frames is reset early.
    Bye = 8,
    /// Peer → peer checkpoint acknowledgement: "my latest checkpoint covers
    /// every envelope from you with sequence number below `seq`" — the
    /// receiving sender trims its replay log for that link below `seq`.
    CkptAck = 9,
    /// Peer → peer after a restart-the-world recovery: "I resumed from a
    /// checkpoint whose receive frontier for your link is `seq`; replay
    /// your logged envelopes from `seq` on and skip regenerating anything
    /// below it". Workers barrier on one `Resume` per peer before rerunning.
    Resume = 10,
    /// A replayed [`FrameKind::Data`] envelope, resent from the sender's
    /// replay log in response to a [`FrameKind::Resume`]. Identical layout
    /// to `Data`; the distinct kind keeps recovered streams self-describing.
    Replay = 11,
    /// Worker → driver telemetry: a delta-encoded
    /// [`StatsSnapshot`](crate::obs::StatsSnapshot) of the rank's metrics,
    /// piggybacked on the heartbeat cadence. `seq` is the snapshot counter;
    /// `nominal_bytes` is 1 when the payload is absolute (delta against an
    /// all-zero baseline), 0 when it is a delta against the previous
    /// snapshot on this control stream.
    Stats = 12,
}

impl FrameKind {
    /// Decode the on-wire discriminant.
    pub fn from_u16(v: u16) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Data,
            2 => FrameKind::Hello,
            3 => FrameKind::Addrs,
            4 => FrameKind::Peer,
            5 => FrameKind::Result,
            6 => FrameKind::Error,
            7 => FrameKind::Progress,
            8 => FrameKind::Bye,
            9 => FrameKind::CkptAck,
            10 => FrameKind::Resume,
            11 => FrameKind::Replay,
            12 => FrameKind::Stats,
            _ => return None,
        })
    }
}

/// A decoded frame: header fields plus raw payload bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Sender's rank.
    pub src: u32,
    /// Message tag (0 for most control frames).
    pub tag: i64,
    /// Per-link sequence number, or kind-specific scalar for control frames.
    pub seq: u64,
    /// Virtual arrival time (or final clock for [`FrameKind::Result`]).
    pub ready_at: f64,
    /// Nominal modelled size, or kind-specific scalar for control frames.
    pub nominal: u64,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A header-only control frame with all scalar fields zeroed.
    pub fn control(kind: FrameKind, src: u32) -> Frame {
        Frame {
            kind,
            src,
            tag: 0,
            seq: 0,
            ready_at: 0.0,
            nominal: 0,
            payload: Vec::new(),
        }
    }

    /// Serialize to the on-wire byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len());
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.kind as u16).to_le_bytes());
        buf.extend_from_slice(&self.src.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.tag.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.ready_at.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.nominal.to_le_bytes());
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Decode one frame from the start of `buf`, returning it and the
    /// number of bytes consumed. Rejects bad magic, foreign versions,
    /// unknown kinds, oversize payloads, and buffers shorter than the
    /// frame they announce ([`WireError::Truncated`]).
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let (header, rest) = buf.split_at(HEADER_LEN);
        let frame_rest = decode_header(header.try_into().expect("split size"))?;
        let len = frame_rest.1 as usize;
        if rest.len() < len {
            return Err(WireError::Truncated {
                needed: HEADER_LEN + len,
                got: buf.len(),
            });
        }
        let mut frame = frame_rest.0;
        frame.payload = rest[..len].to_vec();
        Ok((frame, HEADER_LEN + len))
    }
}

/// Validate and decode a header, returning the payload-less frame and the
/// announced payload length.
fn decode_header(h: &[u8; HEADER_LEN]) -> Result<(Frame, u32), WireError> {
    let u16_at = |o: usize| u16::from_le_bytes([h[o], h[o + 1]]);
    let u32_at = |o: usize| u32::from_le_bytes(h[o..o + 4].try_into().expect("slice size"));
    let u64_at = |o: usize| u64::from_le_bytes(h[o..o + 8].try_into().expect("slice size"));
    if h[OFF_MAGIC..OFF_MAGIC + 4] != MAGIC {
        return Err(WireError::BadMagic(
            h[OFF_MAGIC..OFF_MAGIC + 4].try_into().expect("slice size"),
        ));
    }
    let version = u16_at(OFF_VERSION);
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind_raw = u16_at(OFF_KIND);
    let kind = FrameKind::from_u16(kind_raw).ok_or(WireError::UnknownKind(kind_raw))?;
    let payload_len = u32_at(OFF_PAYLOAD_LEN);
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversize(payload_len));
    }
    Ok((
        Frame {
            kind,
            src: u32_at(OFF_SRC_RANK),
            tag: i64::from_le_bytes(h[OFF_TAG..OFF_TAG + 8].try_into().expect("slice size")),
            seq: u64_at(OFF_SEQ),
            ready_at: f64::from_bits(u64_at(OFF_READY_AT)),
            nominal: u64_at(OFF_NOMINAL_BYTES),
            payload: Vec::new(),
        },
        payload_len,
    ))
}

/// Blocking read of exactly one frame from `r`.
///
/// A clean end-of-stream *before the first header byte* is reported as
/// [`WireError::Closed`] (the peer hung up between frames); end-of-stream
/// inside a frame is [`WireError::Truncated`] (the peer died mid-write).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated {
                        needed: HEADER_LEN,
                        got: filled,
                    }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    let (mut frame, payload_len) = decode_header(&header)?;
    let len = payload_len as usize;
    let mut payload = vec![0u8; len];
    if let Err(e) = r.read_exact(&mut payload) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                needed: HEADER_LEN + len,
                got: HEADER_LEN,
            }
        } else {
            WireError::Io(e.kind())
        });
    }
    frame.payload = payload;
    Ok(frame)
}

/// Write one frame to `w` (a single `write_all` of the encoded bytes).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())
}

/// Encode an [`Envelope`] as a [`FrameKind::Data`] frame from rank `src`.
/// Payload values travel as `f64` bit patterns, so decoding reproduces
/// them bitwise.
pub fn encode_envelope(src: u32, env: &Envelope) -> Vec<u8> {
    let mut payload = Vec::with_capacity(env.payload.len() * 8);
    for v in &env.payload {
        payload.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    Frame {
        kind: FrameKind::Data,
        src,
        tag: env.tag,
        seq: env.seq,
        ready_at: env.ready_at,
        nominal: env.bytes as u64,
        payload,
    }
    .encode()
}

/// Encode an [`Envelope`] as a [`FrameKind::Replay`] frame from rank
/// `src`: byte-for-byte the [`encode_envelope`] layout with the `Replay`
/// kind, used when resending logged envelopes after a recovery.
pub fn encode_replay(src: u32, env: &Envelope) -> Vec<u8> {
    let mut bytes = encode_envelope(src, env);
    bytes[OFF_KIND..OFF_KIND + 2].copy_from_slice(&(FrameKind::Replay as u16).to_le_bytes());
    bytes
}

/// Decode a [`FrameKind::Data`] (or [`FrameKind::Replay`] — same layout)
/// frame back into an [`Envelope`]. The payload must be a whole number of
/// 8-byte values ([`WireError::Misaligned`] otherwise) and the frame must
/// actually carry an envelope ([`WireError::UnknownKind`] otherwise).
pub fn decode_envelope(frame: &Frame) -> Result<Envelope, WireError> {
    if frame.kind != FrameKind::Data && frame.kind != FrameKind::Replay {
        return Err(WireError::UnknownKind(frame.kind as u16));
    }
    if !frame.payload.len().is_multiple_of(8) {
        return Err(WireError::Misaligned(frame.payload.len() as u32));
    }
    let payload = frame
        .payload
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunk size"))))
        .collect();
    Ok(Envelope {
        payload,
        tag: frame.tag,
        ready_at: frame.ready_at,
        seq: frame.seq,
        bytes: frame.nominal as usize,
    })
}

/// A malformed or interrupted wire stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion(u16),
    /// Unrecognized frame-kind discriminant.
    UnknownKind(u16),
    /// The buffer or stream ended inside a frame: `needed` bytes were
    /// announced, only `got` were available.
    Truncated {
        /// Bytes the frame announced.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// `payload_len` exceeded [`MAX_PAYLOAD`].
    Oversize(u32),
    /// A data payload was not a whole number of 8-byte values.
    Misaligned(u32),
    /// The stream ended cleanly between frames (peer hung up).
    Closed,
    /// An OS-level read/write error.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => {
                write!(f, "protocol version {v} (this peer speaks {VERSION})")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::Oversize(n) => {
                write!(f, "payload of {n} bytes exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::Misaligned(n) => {
                write!(f, "data payload of {n} bytes is not a whole number of f64s")
            }
            WireError::Closed => write!(f, "stream closed"),
            WireError::Io(kind) => write!(f, "io error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_frame_round_trips() {
        let mut f = Frame::control(FrameKind::Hello, 5);
        f.seq = 4;
        f.payload = b"127.0.0.1:4000".to_vec();
        let bytes = f.encode();
        let (g, consumed) = Frame::decode(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(g, f);
    }

    #[test]
    fn envelope_round_trips_bitwise() {
        let env = Envelope {
            payload: vec![std::f64::consts::PI, -0.0, f64::MIN_POSITIVE, 1e300],
            tag: i64::MIN,
            ready_at: 1.0 + f64::EPSILON,
            seq: u64::MAX,
            bytes: 4096,
        };
        let bytes = encode_envelope(9, &env);
        let (frame, _) = Frame::decode(&bytes).unwrap();
        assert_eq!(frame.src, 9);
        let back = decode_envelope(&frame).unwrap();
        assert_eq!(back.tag, env.tag);
        assert_eq!(back.seq, env.seq);
        assert_eq!(back.bytes, env.bytes);
        assert_eq!(back.ready_at.to_bits(), env.ready_at.to_bits());
        for (a, b) in back.payload.iter().zip(&env.payload) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn replay_frames_share_the_data_layout() {
        let env = Envelope {
            payload: vec![2.5, -0.0],
            tag: 3,
            ready_at: 1.5,
            seq: 11,
            bytes: 16,
        };
        let bytes = encode_replay(4, &env);
        let (frame, _) = Frame::decode(&bytes).unwrap();
        assert_eq!(frame.kind, FrameKind::Replay);
        assert_eq!(frame.src, 4);
        let back = decode_envelope(&frame).unwrap();
        assert_eq!(back.seq, env.seq);
        assert_eq!(back.tag, env.tag);
        for (a, b) in back.payload.iter().zip(&env.payload) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let env = Envelope {
            payload: vec![1.0],
            tag: 0,
            ready_at: 0.0,
            seq: 0,
            bytes: 8,
        };
        let good = encode_envelope(0, &env);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad_magic),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[OFF_VERSION] = 0xFF;
        assert!(matches!(
            Frame::decode(&bad_version),
            Err(WireError::BadVersion(_))
        ));

        let mut bad_kind = good.clone();
        bad_kind[OFF_KIND] = 0x77;
        assert!(matches!(
            Frame::decode(&bad_kind),
            Err(WireError::UnknownKind(_))
        ));

        assert!(matches!(
            Frame::decode(&good[..HEADER_LEN + 3]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            Frame::decode(&good[..10]),
            Err(WireError::Truncated { .. })
        ));

        let mut oversize = good.clone();
        oversize[OFF_PAYLOAD_LEN..OFF_PAYLOAD_LEN + 4]
            .copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&oversize),
            Err(WireError::Oversize(_))
        ));
    }

    #[test]
    fn read_frame_distinguishes_closed_from_truncated() {
        let env = Envelope {
            payload: vec![2.0, 3.0],
            tag: 1,
            ready_at: 0.5,
            seq: 2,
            bytes: 16,
        };
        let bytes = encode_envelope(1, &env);

        let mut cursor = std::io::Cursor::new(bytes.clone());
        let frame = read_frame(&mut cursor).unwrap();
        assert_eq!(decode_envelope(&frame).unwrap().payload, vec![2.0, 3.0]);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Closed)));

        let mut partial = std::io::Cursor::new(bytes[..bytes.len() - 4].to_vec());
        assert!(matches!(
            read_frame(&mut partial),
            Err(WireError::Truncated { .. })
        ));
    }
}
