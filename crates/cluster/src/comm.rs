//! The MPI-like point-to-point communication interface.
//!
//! The generated SPMD programs are written against [`Comm`], mirroring the
//! paper's use of `MPI_Send`/`MPI_Recv`: blocking point-to-point messages
//! with FIFO ordering per (sender, receiver) pair. Implementations also
//! maintain a per-process *virtual clock* advanced by the machine model, so
//! one execution yields both the computed data and the simulated parallel
//! time on the modelled cluster.

use crate::model::MachineModel;

/// A message in flight: payload, matching tag, and the virtual time it
/// becomes available at the receiver.
#[derive(Clone, Debug)]
pub struct Envelope {
    pub payload: Vec<f64>,
    /// MPI-style message tag, matched by [`Comm::recv`]. Needed whenever the
    /// consumption order can differ from the send order — e.g. tile
    /// dependencies whose mapping-dimension components exceed 1 make the
    /// minimum-successor consumption non-monotone in the sender's tiles.
    pub tag: i64,
    pub ready_at: f64,
}

/// Per-process communication statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    pub messages_sent: u64,
    pub bytes_sent: u64,
    pub messages_received: u64,
    /// Virtual seconds spent blocked waiting for messages.
    pub wait_time: f64,
    /// Virtual seconds spent computing.
    pub compute_time: f64,
}

/// Blocking point-to-point communication with a virtual clock.
pub trait Comm {
    /// This process's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of processes.
    fn size(&self) -> usize;

    /// Send `payload` to `to` with matching `tag`. `nominal_bytes` is the
    /// modelled message size (the payload may be elided in timing-only
    /// runs). Advances the local clock by the sender-side cost.
    fn send_tagged(&mut self, to: usize, tag: i64, payload: Vec<f64>, nominal_bytes: usize);

    /// Blocking receive of the next message from `from` with matching `tag`
    /// (out-of-order arrivals are buffered, as in MPI). Advances the local
    /// clock to the message arrival if it is later.
    fn recv_tagged(&mut self, from: usize, tag: i64) -> Vec<f64>;

    /// [`Comm::send_tagged`] with tag 0.
    fn send(&mut self, to: usize, payload: Vec<f64>, nominal_bytes: usize) {
        self.send_tagged(to, 0, payload, nominal_bytes);
    }

    /// [`Comm::recv_tagged`] with tag 0.
    fn recv(&mut self, from: usize) -> Vec<f64> {
        self.recv_tagged(from, 0)
    }

    /// Account `iters` loop iterations of local computation.
    fn advance_compute(&mut self, iters: u64);

    /// Current virtual time of this process.
    fn local_time(&self) -> f64;

    /// The machine model in force.
    fn model(&self) -> &MachineModel;

    /// Statistics accumulated so far.
    fn stats(&self) -> CommStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_plain_data() {
        let e = Envelope { payload: vec![1.0, 2.0], tag: 7, ready_at: 3.5 };
        let f = e.clone();
        assert_eq!(f.payload, vec![1.0, 2.0]);
        assert_eq!(f.tag, 7);
        assert_eq!(f.ready_at, 3.5);
    }

    #[test]
    fn stats_default_is_zero() {
        let s = CommStats::default();
        assert_eq!(s.messages_sent, 0);
        assert_eq!(s.wait_time, 0.0);
    }
}
