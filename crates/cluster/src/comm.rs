//! The MPI-like point-to-point communication interface.
//!
//! The generated SPMD programs are written against [`Comm`], mirroring the
//! paper's use of `MPI_Send`/`MPI_Recv`: blocking point-to-point messages
//! with FIFO ordering per (sender, receiver) pair. Implementations also
//! maintain a per-process *virtual clock* advanced by the machine model, so
//! one execution yields both the computed data and the simulated parallel
//! time on the modelled cluster.
//!
//! Communication is fallible at the substrate level: the required methods
//! are [`Comm::try_send_tagged`] / [`Comm::try_recv_tagged`], which report
//! disconnected or unreachable peers as [`CommError`]s. The infallible
//! [`Comm::send_tagged`] / [`Comm::recv_tagged`] used by generated programs
//! are thin wrappers that panic with a [`CommAbort`] payload — the engine
//! catches that payload and folds it into the run-level error instead of
//! treating it as a program bug.

use crate::error::CommError;
use crate::model::MachineModel;
use crate::obs::RankObs;

/// A message in flight: payload, matching tag, the virtual time it becomes
/// available at the receiver, and a per-link sequence number.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The message values. May be empty in timing-only runs, where only
    /// [`Envelope::bytes`] carries the modelled size.
    pub payload: Vec<f64>,
    /// MPI-style message tag, matched by [`Comm::recv`]. Needed whenever the
    /// consumption order can differ from the send order — e.g. tile
    /// dependencies whose mapping-dimension components exceed 1 make the
    /// minimum-successor consumption non-monotone in the sender's tiles.
    pub tag: i64,
    /// Virtual time at which the message becomes available at the
    /// receiver (sender clock + modelled injection + wire latency).
    pub ready_at: f64,
    /// Per-(sender, receiver) sequence number assigned by the reliability
    /// layer: receivers suppress duplicates and re-sequence out-of-order
    /// arrivals by it, restoring exact FIFO semantics over faulty links.
    pub seq: u64,
    /// Nominal (modelled) message size, carried so the receiver can account
    /// bytes even in timing-only runs where the payload is elided.
    pub bytes: usize,
}

/// Per-process communication statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Messages handed to the transport (each counted once, regardless of
    /// fault-injected duplicates or retransmissions).
    pub messages_sent: u64,
    /// Nominal bytes of every sent message.
    pub bytes_sent: u64,
    /// Messages accepted by this rank's receive path.
    pub messages_received: u64,
    /// Nominal bytes of every *accepted* envelope — duplicates suppressed by
    /// the reliability layer are excluded, so a fault-free or faulty run
    /// both conserve `bytes_received == bytes_sent`.
    pub bytes_received: u64,
    /// Virtual seconds spent blocked waiting for messages.
    pub wait_time: f64,
    /// Virtual seconds spent computing.
    pub compute_time: f64,
    /// Transmission attempts repeated because the fault plan dropped them.
    pub retransmissions: u64,
    /// Virtual seconds the sender's clock was charged for retransmission
    /// backoff and repeated injections.
    pub retrans_time: f64,
    /// Messages discarded by the receiver's duplicate suppression.
    pub duplicates_suppressed: u64,
    /// Times this rank was restored from a checkpoint after a crash.
    pub recoveries: u64,
    /// Virtual seconds of re-execution charged to recovery: the wall the
    /// rank's clock was rewound over, re-charged at the end of the run so
    /// every message timestamp stays bitwise identical to the fault-free
    /// run (`local_time - recovery_time` is the fault-free clock).
    pub recovery_time: f64,
}

/// State handed back by [`Comm::try_restore`]: where to resume the chain
/// walk and the application snapshot taken at that checkpoint.
#[derive(Clone, Debug)]
pub struct Restored {
    /// Chain position the checkpoint was taken at (resume from here).
    pub chain_pos: u64,
    /// Opaque application bytes passed to [`Comm::checkpoint`].
    pub app: Vec<u8>,
}

/// Panic payload used by the infallible [`Comm`] wrappers when the
/// underlying communication fails. The engine downcasts unwind payloads to
/// this type to distinguish substrate failures (peer died, watchdog abort)
/// from genuine bugs in rank closures.
#[derive(Clone, Debug)]
pub struct CommAbort {
    /// Rank that observed the failure.
    pub rank: usize,
    /// The failure itself.
    pub error: CommError,
}

/// Blocking point-to-point communication with a virtual clock.
///
/// # Contract
///
/// * **Blocking semantics** — [`Comm::try_recv_tagged`] blocks until a
///   matching message arrives (or the engine aborts the run); sends may
///   buffer but never reorder. There is no nonblocking probe.
/// * **Tag matching** — receives match on `(from, tag)` like
///   `MPI_Recv`: messages from `from` with a different tag are buffered
///   and do not satisfy the call, in arrival order per tag.
/// * **FIFO per link** — between a fixed (sender, receiver) pair,
///   messages with the same tag are delivered in send order.
/// * **Delivery under faults** — with a [`crate::FaultPlan`] attached,
///   the reliability sublayer restores *exactly-once, in-order* delivery:
///   drops are retransmitted (charged to the sender's virtual clock),
///   duplicates are suppressed at the receiver, reordered arrivals are
///   re-sequenced. Only an unreachable peer (every retry dropped) or a
///   dead peer surfaces as a [`CommError`].
/// * **Virtual time** — every operation advances the caller's clock per
///   the [`MachineModel`]; one run yields both data and simulated time.
///
/// Implementations: [`crate::ThreadedComm`] (in-process channels) and
/// [`crate::TcpComm`] (sockets, in- or multi-process).
pub trait Comm {
    /// This process's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of processes.
    fn size(&self) -> usize;

    /// Fallible send of `payload` to `to` with matching `tag`.
    /// `nominal_bytes` is the modelled message size (the payload may be
    /// elided in timing-only runs). Advances the local clock by the
    /// sender-side cost, including any retransmission charges.
    fn try_send_tagged(
        &mut self,
        to: usize,
        tag: i64,
        payload: Vec<f64>,
        nominal_bytes: usize,
    ) -> Result<(), CommError>;

    /// Fallible blocking receive of the next message from `from` with
    /// matching `tag` (out-of-order arrivals are buffered, as in MPI).
    /// Advances the local clock to the message arrival if it is later.
    fn try_recv_tagged(&mut self, from: usize, tag: i64) -> Result<Vec<f64>, CommError>;

    /// Infallible [`Comm::try_send_tagged`]: panics with a [`CommAbort`]
    /// payload on failure, which the engine converts to a run-level error.
    fn send_tagged(&mut self, to: usize, tag: i64, payload: Vec<f64>, nominal_bytes: usize) {
        let rank = self.rank();
        if let Err(error) = self.try_send_tagged(to, tag, payload, nominal_bytes) {
            std::panic::panic_any(CommAbort { rank, error });
        }
    }

    /// Infallible [`Comm::try_recv_tagged`]: panics with a [`CommAbort`]
    /// payload on failure, which the engine converts to a run-level error.
    fn recv_tagged(&mut self, from: usize, tag: i64) -> Vec<f64> {
        let rank = self.rank();
        match self.try_recv_tagged(from, tag) {
            Ok(payload) => payload,
            Err(error) => std::panic::panic_any(CommAbort { rank, error }),
        }
    }

    /// [`Comm::send_tagged`] with tag 0.
    fn send(&mut self, to: usize, payload: Vec<f64>, nominal_bytes: usize) {
        self.send_tagged(to, 0, payload, nominal_bytes);
    }

    /// [`Comm::recv_tagged`] with tag 0.
    fn recv(&mut self, from: usize) -> Vec<f64> {
        self.recv_tagged(from, 0)
    }

    /// [`Comm::try_send_tagged`] with tag 0.
    fn try_send(
        &mut self,
        to: usize,
        payload: Vec<f64>,
        nominal_bytes: usize,
    ) -> Result<(), CommError> {
        self.try_send_tagged(to, 0, payload, nominal_bytes)
    }

    /// [`Comm::try_recv_tagged`] with tag 0.
    fn try_recv(&mut self, from: usize) -> Result<Vec<f64>, CommError> {
        self.try_recv_tagged(from, 0)
    }

    /// Account `iters` loop iterations of local computation.
    fn advance_compute(&mut self, iters: u64);

    /// Wait for every outstanding (overlapped) send to leave the NIC —
    /// `MPI_Waitall` semantics. Advances the local clock by the comm-lane
    /// overshoot beyond the current clock and returns that overshoot.
    /// The default (and any blocking implementation) has no outstanding
    /// sends, so it is a no-op.
    fn drain_sends(&mut self) -> f64 {
        0.0
    }

    /// Current virtual time of this process.
    fn local_time(&self) -> f64;

    /// The machine model in force.
    fn model(&self) -> &MachineModel;

    /// Statistics accumulated so far.
    fn stats(&self) -> CommStats;

    /// Per-rank observability handle, when the engine was run with a
    /// [`crate::obs::MetricsRegistry`] attached. Generated programs use this
    /// to record phase spans and tile-level counters; the default is `None`
    /// so plain implementations stay observability-free.
    fn obs(&mut self) -> Option<&mut RankObs> {
        None
    }

    /// Checkpoint cadence: `Some(K)` when the engine was configured with a
    /// recovery policy, asking the executor to call [`Comm::checkpoint`]
    /// every `K` chain steps. `None` (the default) disables checkpointing.
    fn recovery_interval(&self) -> Option<u64> {
        None
    }

    /// Record a recovery checkpoint at chain position `chain_pos` with the
    /// caller's serialized application state (LDS snapshot + logical
    /// counters). Implementations snapshot their clock, statistics and
    /// reliability frontiers alongside, and acknowledge received envelopes
    /// so senders can trim their replay logs. Default: no-op.
    fn checkpoint(&mut self, _chain_pos: u64, _app: &[u8]) {}

    /// After an injected crash unwound the chain walk: restore the latest
    /// checkpoint and return the resume state, or `None` when recovery is
    /// disabled, no recovery budget remains, or this implementation recovers
    /// at a different level (e.g. process respawn). Default: `None`.
    fn try_restore(&mut self) -> Option<Restored> {
        None
    }

    /// Resume state loaded *before* the rank body started — a respawned
    /// worker process restores its checkpoint file during transport setup
    /// and hands the chain position + application bytes to the executor
    /// here, exactly once. Default: `None` (fresh start).
    fn resume_state(&mut self) -> Option<Restored> {
        None
    }

    /// Settle the accumulated recovery debt at the end of the rank's run:
    /// charge the re-executed virtual time to the clock once, so
    /// `local_time == fault-free time + recovery_time`. Returns the debt.
    /// Default: no-op.
    fn settle_recovery(&mut self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_plain_data() {
        let e = Envelope {
            payload: vec![1.0, 2.0],
            tag: 7,
            ready_at: 3.5,
            seq: 9,
            bytes: 16,
        };
        let f = e.clone();
        assert_eq!(f.payload, vec![1.0, 2.0]);
        assert_eq!(f.tag, 7);
        assert_eq!(f.ready_at, 3.5);
        assert_eq!(f.seq, 9);
        assert_eq!(f.bytes, 16);
    }

    #[test]
    fn stats_default_is_zero() {
        let s = CommStats::default();
        assert_eq!(s.messages_sent, 0);
        assert_eq!(s.wait_time, 0.0);
        assert_eq!(s.retransmissions, 0);
        assert_eq!(s.duplicates_suppressed, 0);
    }
}
