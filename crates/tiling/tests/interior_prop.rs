//! Property tests (seeded xorshift) for the interior-tile machinery behind
//! the compiled execution path — DESIGN.md §5's `clamp_ablation` as a test:
//!
//! - `tile_volume_fast` agrees with a full membership-tested traversal on
//!   every tile, interior or boundary;
//! - interior tiles enumerate exactly the full TTIS point set, in strided
//!   walk order (the dense fast path and the clamped path visit identical
//!   point sets);
//! - compute-interior tiles have every dependence source inside the space,
//!   so the dense loop's LDS-only reads are justified.

use tilecc_linalg::{vecops::is_lex_positive, IMat, RMat, Rational};
use tilecc_polytope::{Constraint, Polyhedron};
use tilecc_tiling::{tiling_cone_rays, TiledSpace, TilingTransform};

struct G(u64);
impl G {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % ((hi - lo + 1) as u64)) as i64
    }
}

/// Random convex space, uniform non-negative-ish deps, and a legal tiling —
/// the same distribution the end-to-end fuzzer draws from.
fn random_case(g: &mut G) -> Option<(Polyhedron, IMat, TilingTransform)> {
    let n = 3usize;
    let ext: Vec<i64> = (0..n).map(|_| g.range(6, 14)).collect();
    let lo = vec![1i64; n];
    let mut space = Polyhedron::from_box(&lo, &ext);
    for _ in 0..g.range(0, 2) {
        let coeffs: Vec<i64> = (0..n).map(|_| g.range(-1, 1)).collect();
        if coeffs.iter().all(|&c| c == 0) {
            continue;
        }
        let mid: i64 = coeffs
            .iter()
            .zip(&ext)
            .map(|(&c, &e)| c * ((1 + e) / 2))
            .sum();
        space.add(Constraint::new(coeffs, -mid + g.range(0, 10)));
    }
    let q = g.range(2, 4) as usize;
    let mut deps = IMat::zeros(n, q);
    for qq in 0..q {
        loop {
            let c: Vec<i64> = (0..n).map(|_| g.range(0, 2)).collect();
            if is_lex_positive(&c) {
                for k in 0..n {
                    deps[(k, qq)] = c[k];
                }
                break;
            }
        }
    }
    let factors: Vec<i64> = (0..n).map(|_| g.range(2, 4)).collect();
    let h = if g.next().is_multiple_of(2) {
        let rays = tiling_cone_rays(&deps);
        if rays.len() < n {
            return None;
        }
        let mut chosen: Vec<Vec<i64>> = vec![];
        for ray in &rays {
            let mut cand = chosen.clone();
            cand.push(ray.clone());
            let ok = cand.len() < n || {
                let mut sq = IMat::zeros(n, n);
                for (i, r) in cand.iter().enumerate() {
                    for k in 0..n {
                        sq[(i, k)] = r[k];
                    }
                }
                sq.det() != 0
            };
            if ok {
                chosen = cand;
            }
            if chosen.len() == n {
                break;
            }
        }
        if chosen.len() < n {
            return None;
        }
        RMat::from_fn(n, n, |i, j| {
            Rational::new(chosen[i][j] as i128, factors[i] as i128)
        })
    } else {
        RMat::from_fn(n, n, |i, j| {
            if i == j {
                Rational::new(1, factors[i] as i128)
            } else {
                Rational::ZERO
            }
        })
    };
    let t = TilingTransform::new(h).ok()?;
    t.validate_for(&deps).ok()?;
    Some((space, deps, t))
}

#[test]
fn volume_fast_matches_membership_tested_count() {
    let mut g = G(0xC0FFEE | 1);
    let mut cases = 0;
    let mut boundary_tiles = 0usize;
    while cases < 40 {
        let Some((space, _deps, t)) = random_case(&mut g) else {
            continue;
        };
        cases += 1;
        let tiled = TiledSpace::new(t, space).unwrap();
        for tile in tiled.tiles().collect::<Vec<_>>() {
            let exact = tiled.tile_iterations(&tile).count();
            assert_eq!(
                tiled.tile_volume_fast(&tile),
                exact,
                "tile_volume_fast mismatch at tile {tile:?}"
            );
            if !tiled.tile_is_interior(&tile) && exact > 0 {
                boundary_tiles += 1;
            }
        }
    }
    assert!(
        boundary_tiles > 50,
        "property must actually exercise boundary tiles (got {boundary_tiles})"
    );
}

#[test]
fn interior_tiles_enumerate_the_full_ttis_in_order() {
    let mut g = G(0xBADC0DE | 1);
    let mut cases = 0;
    let mut interior_seen = 0usize;
    while cases < 40 {
        let Some((space, _deps, t)) = random_case(&mut g) else {
            continue;
        };
        cases += 1;
        let tiled = TiledSpace::new(t.clone(), space.clone()).unwrap();
        let full: Vec<Vec<i64>> = t.ttis_points().collect();
        for tile in tiled.tiles().collect::<Vec<_>>() {
            if !tiled.tile_is_interior(&tile) {
                continue;
            }
            interior_seen += 1;
            // The dense fast path walks the full TTIS; the clamped path
            // filters by membership. For interior tiles they must agree
            // point for point, in the same strided order.
            let clamped: Vec<(Vec<i64>, Vec<i64>)> = tiled.tile_iterations(&tile).collect();
            assert_eq!(clamped.len(), full.len(), "interior tile {tile:?} clipped");
            for (i, (jp, j)) in clamped.iter().enumerate() {
                assert_eq!(jp, &full[i], "TTIS order diverged at {i}");
                assert!(space.contains(j), "interior point left the space");
            }
        }
    }
    assert!(
        interior_seen > 20,
        "property must actually exercise interior tiles (got {interior_seen})"
    );
}

#[test]
fn compute_interior_tiles_keep_all_sources_in_space() {
    let mut g = G(0xFEED5EED | 1);
    let mut cases = 0;
    let mut compute_interior = 0usize;
    let mut interior_only = 0usize;
    while cases < 40 {
        let Some((space, deps, t)) = random_case(&mut g) else {
            continue;
        };
        cases += 1;
        let tiled = TiledSpace::new(t, space.clone()).unwrap();
        let n = tiled.dim();
        for tile in tiled.tiles().collect::<Vec<_>>() {
            let ci = tiled.tile_is_compute_interior(&tile, &deps);
            if tiled.tile_is_interior(&tile) && !ci {
                interior_only += 1;
            }
            if !ci {
                continue;
            }
            compute_interior += 1;
            for (_jp, j) in tiled.tile_iterations(&tile) {
                for q in 0..deps.cols() {
                    let src: Vec<i64> = (0..n).map(|k| j[k] - deps[(k, q)]).collect();
                    assert!(
                        space.contains(&src),
                        "compute-interior tile {tile:?} reads out-of-space source {src:?}"
                    );
                }
            }
        }
    }
    assert!(
        compute_interior > 20,
        "property must exercise compute-interior tiles (got {compute_interior})"
    );
    // The two notions must genuinely differ somewhere, or the stronger
    // check is vacuous.
    assert!(
        interior_only > 0,
        "expected tiles that are interior but not compute-interior"
    );
}
