//! Seeded property suite for plan-time tile pruning: the rational
//! feasibility test in `TiledSpace::new` (with its lattice-walk fallback)
//! must agree with a brute-force lattice-walk oracle on every candidate
//! tile — the same `nonempty` set and a bitwise-identical `tiles_pruned`
//! count — across random cut spaces under random rectangular and
//! tiling-cone tilings.
//!
//! The oracle enumerates every candidate the convex shadow admits and
//! walks the full TTIS lattice box for each, which is exactly what
//! `TiledSpace::new` did before the rational test; any divergence means
//! the relaxation pruned a tile that still contained an integer point.

use std::collections::BTreeSet;
use tilecc_linalg::{IMat, RMat, Rational};
use tilecc_polytope::{Constraint, Polyhedron};
use tilecc_tiling::{tiling_cone_rays, TiledSpace, TilingTransform};

/// xorshift64* — the same deterministic generator the fuzzer uses.
struct G(u64);
impl G {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % ((hi - lo + 1) as u64)) as i64
    }
}

/// Brute-force oracle: lattice-walk every candidate tile of the shadow.
/// Returns the non-empty tile set and the pruned-candidate count.
fn lattice_walk_oracle(tiled: &TiledSpace) -> (BTreeSet<Vec<i64>>, usize) {
    let t = tiled.transform();
    let lo = vec![0i64; tiled.dim()];
    let mut nonempty = BTreeSet::new();
    let mut candidates = 0usize;
    for tile in tiled.tile_bounds().points() {
        candidates += 1;
        if t.lattice()
            .points_in_box(&lo, t.v())
            .any(|jp| tiled.space().contains(&t.iteration_fast(&tile, &jp)))
        {
            nonempty.insert(tile);
        }
    }
    let pruned = candidates - nonempty.len();
    (nonempty, pruned)
}

fn check_against_oracle(tiled: &TiledSpace, what: &str) -> usize {
    let (want_set, want_pruned) = lattice_walk_oracle(tiled);
    let got_set: BTreeSet<Vec<i64>> = tiled.tiles().collect();
    assert_eq!(got_set, want_set, "{what}: nonempty tile set diverges");
    assert_eq!(
        tiled.tiles_pruned(),
        want_pruned,
        "{what}: tiles_pruned diverges from the lattice-walk oracle"
    );
    want_pruned
}

/// A random box with up to two random half-space cuts through its middle.
fn random_cut_space(g: &mut G, n: usize) -> Polyhedron {
    let ext: Vec<i64> = (0..n).map(|_| g.range(4, 9)).collect();
    let lo = vec![1i64; n];
    let mut space = Polyhedron::from_box(&lo, &ext);
    for _ in 0..g.range(0, 2) {
        let coeffs: Vec<i64> = (0..n).map(|_| g.range(-1, 1)).collect();
        if coeffs.iter().all(|&c| c == 0) {
            continue;
        }
        let mid: i64 = coeffs
            .iter()
            .zip(&ext)
            .map(|(&c, &e)| c * ((1 + e) / 2))
            .sum();
        space.add(Constraint::new(coeffs, -mid + g.range(0, 6)));
    }
    space
}

/// Random lex-positive uniform dependence columns.
fn random_deps(g: &mut G, n: usize) -> IMat {
    let q = g.range(2, 4) as usize;
    let mut deps = IMat::zeros(n, q);
    for qq in 0..q {
        loop {
            let c: Vec<i64> = (0..n).map(|_| g.range(0, 2)).collect();
            if tilecc_linalg::vecops::is_lex_positive(&c) {
                for k in 0..n {
                    deps[(k, qq)] = c[k];
                }
                break;
            }
        }
    }
    deps
}

/// A random tiling: rectangular, or rows greedily drawn from the tiling
/// cone of `deps` (mirroring the fuzzer's generator). `None` when the cone
/// cannot supply `n` independent rays.
fn random_tiling(g: &mut G, n: usize, deps: &IMat) -> Option<RMat> {
    let factors: Vec<i64> = (0..n).map(|_| g.range(2, 4)).collect();
    if g.next().is_multiple_of(2) {
        return Some(RMat::from_fn(n, n, |i, j| {
            if i == j {
                Rational::new(1, i128::from(factors[i]))
            } else {
                Rational::ZERO
            }
        }));
    }
    let rays = tiling_cone_rays(deps);
    let mut chosen: Vec<Vec<i64>> = vec![];
    for ray in &rays {
        let mut cand = chosen.clone();
        cand.push(ray.clone());
        let independent = cand.len() < n || {
            let mut sq = IMat::zeros(n, n);
            for (i, r) in cand.iter().enumerate() {
                for k in 0..n {
                    sq[(i, k)] = r[k];
                }
            }
            sq.det() != 0
        };
        if independent {
            chosen = cand;
        }
        if chosen.len() == n {
            break;
        }
    }
    if chosen.len() < n {
        return None;
    }
    Some(RMat::from_fn(n, n, |i, j| {
        Rational::new(i128::from(chosen[i][j]), i128::from(factors[i]))
    }))
}

#[test]
fn pruning_matches_lattice_walk_oracle_on_random_corpus() {
    let mut g = G(0xA11CE | 1);
    let n = 3usize;
    let mut checked = 0usize;
    let mut pruned_total = 0usize;
    let mut walks_total = 0usize;
    for case in 0..70 {
        let space = random_cut_space(&mut g, n);
        let deps = random_deps(&mut g, n);
        let Some(h) = random_tiling(&mut g, n, &deps) else {
            continue;
        };
        let Ok(t) = TilingTransform::new(h) else {
            continue;
        };
        let Ok(tiled) = TiledSpace::new(t, space) else {
            continue;
        };
        pruned_total += check_against_oracle(&tiled, &format!("case {case}"));
        walks_total += tiled.feasibility_walks();
        checked += 1;
    }
    assert!(
        checked >= 30,
        "corpus too small: only {checked} cases built"
    );
    // The corpus must actually exercise the fallback path — if no case
    // ever walked the lattice, the rational test decided everything and
    // the agreement above proves less than it claims.
    assert!(
        walks_total > 0 || pruned_total == 0,
        "no case took the lattice-walk fallback"
    );
}

#[test]
fn pruning_matches_oracle_where_the_shadow_overapproximates() {
    // Deterministic known-pruning case (from the tile_space unit tests):
    // a cut 2-D space under a non-rectangular tiling whose FM shadow
    // admits one empty candidate tile.
    let mut p = Polyhedron::universe(2);
    p.add(Constraint::new(vec![1, 0], 0));
    p.add(Constraint::new(vec![-1, 0], 7));
    p.add(Constraint::new(vec![0, 1], 0));
    p.add(Constraint::new(vec![0, -1], 4));
    p.add(Constraint::new(vec![-3, 2], 5));
    let h = RMat::from_fractions(&[&[(1, 4), (0, 1)], &[(1, 4), (1, 2)]]);
    let tiled = TiledSpace::new(TilingTransform::new(h).unwrap(), p).unwrap();
    let pruned = check_against_oracle(&tiled, "overapproximating shadow");
    assert_eq!(pruned, 1, "this shadow admits exactly one empty candidate");
}

#[test]
fn walk_accounting_is_consistent_with_the_rational_gate() {
    // The rational gate and the walk partition the non-interior
    // candidates: every candidate is either interior (skipped), rationally
    // empty (pruned without a walk), or walked. With the exact nested-FM
    // candidate enumeration every enumerated tile is already rationally
    // feasible — Fourier–Motzkin projection is rationally exact, so the
    // nested bounds only admit tiles the rational shadow contains — and
    // the gate's prunes can only appear under an over-approximating
    // enumeration. The accounting identity must hold either way.
    let space = Polyhedron::from_box(&[1, 1, 1], &[10, 10, 10]);
    let t = TilingTransform::rectangular(&[4, 4, 4]).unwrap();
    let tiled = TiledSpace::new(t, space).unwrap();
    check_against_oracle(&tiled, "plain box");
    let candidates = tiled.tile_bounds().points().count();
    let interior = tiled
        .tile_bounds()
        .points()
        .filter(|t| tiled.tile_is_interior(t))
        .count();
    let rationally_pruned = candidates - interior - tiled.feasibility_walks();
    assert_eq!(candidates, 27);
    assert_eq!(interior, 1);
    assert_eq!(
        rationally_pruned, 0,
        "exact enumeration admits no rationally empty tile"
    );
    assert_eq!(tiled.tiles_pruned(), 0, "every box candidate holds a point");
}
