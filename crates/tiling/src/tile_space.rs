//! The tile space `J^S` and exact tile dependencies `D^S` (§2.2–2.3).
//!
//! The tile space is the image `{⌊H·j⌋ | j ∈ J^n}`. Its loop bounds are
//! computed once, at compile time, by building the combined polyhedron over
//! `(j^S, j)` — `j ∈ J^n` together with `0 ≤ H'·j − V·j^S ≤ v − 1` — and
//! eliminating the `j` variables with Fourier–Motzkin. The resulting shadow
//! is a convex over-approximation whose integer points include every
//! non-empty tile; the empty candidates it also admits are pruned once at
//! plan time, so [`TiledSpace::tiles`] and [`TiledSpace::tile_valid`] see
//! only tiles that execute at least one iteration — no rank ever computes,
//! packs, or waits on a tile with nothing in it (the paper corrects
//! boundary tiles the same way, with the original iteration-space
//! inequalities).
//!
//! Pruning itself is driven by an exact *rational feasibility test*: for a
//! candidate tile `t` the pinned system `j ∈ J^n ∧ v_k·t_k ≤ H'_k·j ≤
//! v_k·(t_k+1) − 1` has integer points exactly equal to `t`'s iterations
//! (for integer `j`, that conjunction is `⌊H·j⌋ = t`), so rational
//! emptiness proves the tile empty without walking its TTIS lattice. Only
//! when the rational relaxation is non-empty — and could still be
//! integer-empty — does the plan fall back to the early-exit lattice walk,
//! keeping `tiles_pruned` exact while construction cost stops scaling with
//! tile volume (this is what makes the auto-tuner's hundreds of candidate
//! plans affordable).

use crate::transform::{TilingError, TilingTransform};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use tilecc_linalg::IMat;
use tilecc_polytope::{Constraint, LoopNestBounds, Polyhedron};

/// A tiled iteration space: transformation + original space + tile-space
/// shadow with precomputed loop bounds.
pub struct TiledSpace {
    transform: TilingTransform,
    space: Polyhedron,
    shadow: Polyhedron,
    tile_bounds: LoopNestBounds,
    space_bounds: LoopNestBounds,
    /// Number of TTIS lattice points of a full (interior) tile.
    full_tile_volume: usize,
    /// The non-empty tiles, in lexicographic order: shadow integer points
    /// whose tile contains at least one in-space iteration. The convex FM
    /// shadow over-approximates; this is the exact tile set.
    nonempty: BTreeSet<Vec<i64>>,
    /// Empty candidate tiles the shadow admitted and `new` discarded.
    tiles_pruned: usize,
    /// Boundary candidates whose rational relaxation was non-empty, forcing
    /// the lattice-walk fallback during construction. Observable so tests
    /// and benches can show the feasibility test carries the pruning load.
    feasibility_walks: usize,
    /// Number of [`TiledSpace::tile_iterations`] traversals started — the
    /// per-tile TTIS walks the compiled execution path exists to avoid.
    /// Observable via [`TiledSpace::traversal_count`] for regression tests.
    traversals: AtomicU64,
}

impl TiledSpace {
    /// Tile `space` by `transform`. Fails only when the exact polyhedral
    /// machinery overflows `i64` coefficients (user-authored spaces with
    /// extreme bounds).
    pub fn new(transform: TilingTransform, space: Polyhedron) -> Result<Self, TilingError> {
        let n = transform.dim();
        assert_eq!(
            space.dim(),
            n,
            "space and transformation dimension mismatch"
        );
        // Combined system over (j^S[0..n], j[0..n]).
        let mut combined = Polyhedron::universe(2 * n);
        for c in space.constraints() {
            let mut coeffs = vec![0i64; 2 * n];
            coeffs[n..].copy_from_slice(c.coeffs());
            combined.add(Constraint::new(coeffs, c.constant()));
        }
        let hp = transform.h_prime();
        let v = transform.v();
        for k in 0..n {
            // 0 ≤ h'_k·j − v_k·j^S_k ≤ v_k − 1
            let mut lo = vec![0i64; 2 * n];
            let mut hi = vec![0i64; 2 * n];
            lo[k] = -v[k];
            hi[k] = v[k];
            for c in 0..n {
                lo[n + c] = hp[(k, c)];
                hi[n + c] = -hp[(k, c)];
            }
            combined.add(Constraint::new(lo, 0));
            combined.add(Constraint::new(hi, v[k] - 1));
        }
        // FM produces many redundant shadow constraints; prune them (exact
        // over the integer tiles) to keep tile_valid and bounds cheap.
        let shadow = combined.project_onto_first(n)?.remove_redundant()?;
        let tile_bounds = LoopNestBounds::new(&shadow)?;
        let space_bounds = LoopNestBounds::new(&space)?;
        let full_tile_volume = transform.ttis_points().count();
        let mut ts = TiledSpace {
            transform,
            space,
            shadow,
            tile_bounds,
            space_bounds,
            full_tile_volume,
            nonempty: BTreeSet::new(),
            tiles_pruned: 0,
            feasibility_walks: 0,
            traversals: AtomicU64::new(0),
        };
        // Prune the empty candidates the convex shadow admits. Interior
        // tiles are non-empty by construction. Boundary candidates are
        // decided by the exact rational feasibility test on the pinned tile
        // system — emptiness there implies integer emptiness, so the prune
        // is exact without touching the TTIS lattice. Only rationally
        // non-empty candidates (which may still contain no integer point)
        // fall back to the early-exit lattice walk, without touching the
        // traversal counter (this is a plan-time emptiness test, not one
        // of the per-tile walks the compiled path eliminates).
        let mut candidates = 0usize;
        let mut walks = 0usize;
        let mut nonempty = BTreeSet::new();
        let lo = vec![0i64; n];
        for tile in ts.tile_bounds.points() {
            candidates += 1;
            if ts.tile_is_interior(&tile) {
                nonempty.insert(tile);
                continue;
            }
            if ts.pinned_tile_system(&tile).is_empty_rational()? {
                continue;
            }
            walks += 1;
            let t = &ts.transform;
            if t.lattice()
                .points_in_box(&lo, t.v())
                .any(|jp| ts.space.contains(&t.iteration_fast(&tile, &jp)))
            {
                nonempty.insert(tile);
            }
        }
        ts.tiles_pruned = candidates - nonempty.len();
        ts.feasibility_walks = walks;
        ts.nonempty = nonempty;
        Ok(ts)
    }

    /// The "pinned tile" system over `j`: the original space intersected
    /// with `v_k·t_k ≤ H'_k·j ≤ v_k·(t_k+1) − 1` for every `k`. For integer
    /// `j` (where `H'_k·j` is an integer) that conjunction is exactly
    /// `⌊H_k·j⌋ = t_k`, so the system's integer points are precisely the
    /// tile's iterations — rational emptiness proves the tile empty.
    fn pinned_tile_system(&self, tile: &[i64]) -> Polyhedron {
        let n = self.dim();
        let hp = self.transform.h_prime();
        let v = self.transform.v();
        let mut p = self.space.clone();
        for k in 0..n {
            let row: Vec<i64> = (0..n).map(|c| hp[(k, c)]).collect();
            let neg: Vec<i64> = row.iter().map(|&x| -x).collect();
            p.add(Constraint::new(row, -v[k] * tile[k]));
            p.add(Constraint::new(neg, v[k] * (tile[k] + 1) - 1));
        }
        p
    }

    /// Number of candidate tiles whose rational relaxation was non-empty,
    /// forcing the lattice-walk fallback during construction.
    #[inline]
    pub fn feasibility_walks(&self) -> usize {
        self.feasibility_walks
    }

    /// Number of empty candidate tiles the shadow admitted and
    /// [`TiledSpace::new`] pruned.
    #[inline]
    pub fn tiles_pruned(&self) -> usize {
        self.tiles_pruned
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.transform.dim()
    }

    #[inline]
    pub fn transform(&self) -> &TilingTransform {
        &self.transform
    }

    #[inline]
    pub fn space(&self) -> &Polyhedron {
        &self.space
    }

    /// The tile-space shadow polyhedron (over `j^S`).
    #[inline]
    pub fn shadow(&self) -> &Polyhedron {
        &self.shadow
    }

    /// Precomputed tile-space loop bounds (`l^S_k`, `u^S_k`).
    #[inline]
    pub fn tile_bounds(&self) -> &LoopNestBounds {
        &self.tile_bounds
    }

    /// Compile-time validity predicate for a candidate tile: non-empty
    /// (which implies inside the tile-space shadow). Used symmetrically by
    /// send and receive sides, so no channel ever carries a message for a
    /// tile with zero iterations.
    pub fn tile_valid(&self, tile: &[i64]) -> bool {
        self.nonempty.contains(tile)
    }

    /// Enumerate the non-empty tiles in lexicographic order.
    pub fn tiles(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        self.nonempty.iter().cloned()
    }

    /// True iff all `2ⁿ` rational corners of the tile parallelepiped,
    /// shifted by `-shift`, lie inside `J^n` — which suffices for the whole
    /// shifted tile by convexity.
    fn shifted_corners_in_space(&self, tile: &[i64], shift: Option<&[i64]>) -> bool {
        use tilecc_linalg::Rational;
        let t = &self.transform;
        let n = self.dim();
        let p = t.p();
        let mut base = p.mul_ivec(tile);
        if let Some(d) = shift {
            for k in 0..n {
                base[k] = base[k] - Rational::from_int(d[k]);
            }
        }
        // Corner offsets: P'·corner with corner_k ∈ {0, v_k}. P'·(V·e_k·…)
        // column combinations: corner = Σ_k choice_k · v_k · P'_col_k = Σ_k
        // choice_k · P_col_k (since P'V = ... P = P'·V columnwise: P e_k =
        // P' V e_k = v_k · P' e_k). So corners are base + Σ choice_k P·e_k.
        for mask in 0..(1u32 << n) {
            let mut corner: Vec<Rational> = base.clone();
            for k in 0..n {
                if mask & (1 << k) != 0 {
                    for r in 0..n {
                        corner[r] += p[(r, k)];
                    }
                }
            }
            if !self.space.contains_rational(&corner) {
                return false;
            }
        }
        true
    }

    /// True iff tile `tile` lies entirely inside `J^n`. Interior tiles need
    /// no per-point boundary clamping.
    pub fn tile_is_interior(&self, tile: &[i64]) -> bool {
        self.shifted_corners_in_space(tile, None)
    }

    /// The stronger interiority used by the compiled compute fast path: the
    /// tile is interior *and* every dependence source `j − d` of every tile
    /// point is also inside `J^n` (checked on the corners of the tile
    /// parallelepiped shifted by `−d`, which suffices by convexity). Such
    /// tiles run with zero membership tests: every read resolves to an LDS
    /// cell, never to the kernel's boundary value.
    pub fn tile_is_compute_interior(&self, tile: &[i64], deps: &IMat) -> bool {
        if !self.tile_is_interior(tile) {
            return false;
        }
        (0..deps.cols()).all(|q| {
            let d = deps.col(q);
            self.shifted_corners_in_space(tile, Some(&d))
        })
    }

    /// Number of [`TiledSpace::tile_iterations`] walks started so far on
    /// this space (across all threads). The compiled execution path keeps
    /// this flat: interior tiles never traverse.
    pub fn traversal_count(&self) -> u64 {
        self.traversals.load(Ordering::Relaxed)
    }

    /// Enumerate the iterations of tile `tile` (TTIS lattice points whose
    /// global iteration lies in `J^n`), as `(j', j)` pairs in strided loop
    /// order. Boundary tiles are clamped by the original iteration-space
    /// inequalities, exactly as the paper prescribes; interior tiles skip
    /// the per-point membership test.
    pub fn tile_iterations<'a>(
        &'a self,
        tile: &[i64],
    ) -> impl Iterator<Item = (Vec<i64>, Vec<i64>)> + 'a {
        self.traversals.fetch_add(1, Ordering::Relaxed);
        let t = &self.transform;
        let lo = vec![0i64; self.dim()];
        let interior = self.tile_is_interior(tile);
        let tile = tile.to_vec();
        t.lattice().points_in_box(&lo, t.v()).filter_map(move |jp| {
            let j = t.iteration_fast(&tile, &jp);
            (interior || self.space.contains(&j)).then_some((jp, j))
        })
    }

    /// Number of in-space iterations of a tile; O(1) for interior tiles.
    pub fn tile_volume_fast(&self, tile: &[i64]) -> usize {
        if self.tile_is_interior(tile) {
            self.full_tile_volume
        } else {
            self.tile_iterations(tile).count()
        }
    }

    /// Number of TTIS lattice points of a full (interior) tile.
    #[inline]
    pub fn full_tile_volume(&self) -> usize {
        self.full_tile_volume
    }

    /// Number of in-space iterations of a tile.
    pub fn tile_volume(&self, tile: &[i64]) -> usize {
        self.tile_iterations(tile).count()
    }

    /// Exact tile dependence matrix `D^S` (columns, deduplicated, zero
    /// excluded): for every dependence `d` and every TTIS point `j'`,
    /// `d^S_k = ⌊(j'_k + d'_k) / v_k⌋` with `d' = H'·d` (§2.2).
    pub fn tile_deps(&self, deps: &IMat) -> IMat {
        let t = &self.transform;
        let n = self.dim();
        let v = t.v();
        let dp = t.transformed_deps(deps);
        let mut set: BTreeSet<Vec<i64>> = BTreeSet::new();
        for q in 0..dp.cols() {
            let d = dp.col(q);
            for jp in t.ttis_points() {
                let ds: Vec<i64> = (0..n).map(|k| (jp[k] + d[k]).div_euclid(v[k])).collect();
                if ds.iter().any(|&x| x != 0) {
                    set.insert(ds);
                }
            }
        }
        assert!(!set.is_empty(), "algorithm has no cross-tile dependencies");
        let cols: Vec<Vec<i64>> = set.into_iter().collect();
        let mut m = IMat::zeros(n, cols.len());
        for (c, col) in cols.iter().enumerate() {
            for k in 0..n {
                m[(k, c)] = col[k];
            }
        }
        m
    }

    /// Loop bounds of the original space (used for boundary clamping and
    /// sequential scanning).
    #[inline]
    pub fn space_bounds(&self) -> &LoopNestBounds {
        &self.space_bounds
    }

    /// Total number of iterations over all tiles — must equal the size of
    /// `J^n` (each iteration belongs to exactly one tile).
    pub fn total_tiled_iterations(&self) -> usize {
        self.tiles().map(|t| self.tile_volume(&t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilecc_linalg::RMat;

    fn sor_like_space() -> Polyhedron {
        // Skewed-SOR-like space: 1<=t<=4, t+1<=i<=t+6, 2t+1<=j<=2t+6.
        let mut p = Polyhedron::universe(3);
        p.add(Constraint::new(vec![1, 0, 0], -1));
        p.add(Constraint::new(vec![-1, 0, 0], 4));
        p.add(Constraint::new(vec![-1, 1, 0], -1));
        p.add(Constraint::new(vec![1, -1, 0], 6));
        p.add(Constraint::new(vec![-2, 0, 1], -1));
        p.add(Constraint::new(vec![2, 0, -1], 6));
        p
    }

    fn sor_hnr(x: i64, y: i64, z: i64) -> TilingTransform {
        TilingTransform::new(RMat::from_fractions(&[
            &[(1, x), (0, 1), (0, 1)],
            &[(0, 1), (1, y), (0, 1)],
            &[(-1, z), (0, 1), (1, z)],
        ]))
        .unwrap()
    }

    #[test]
    fn every_iteration_in_exactly_one_tile() {
        let space = sor_like_space();
        for ts in [
            TilingTransform::rectangular(&[2, 3, 2]).unwrap(),
            sor_hnr(2, 3, 2),
            sor_hnr(3, 2, 4),
        ] {
            let tiled = TiledSpace::new(ts, space.clone()).unwrap();
            let total_space = tiled.space_bounds().points().count();
            assert_eq!(tiled.total_tiled_iterations(), total_space);
        }
    }

    #[test]
    fn tile_of_matches_enumeration() {
        let space = sor_like_space();
        let tiled = TiledSpace::new(sor_hnr(2, 2, 3), space.clone()).unwrap();
        // Each point's floor(Hj) tile must be valid and contain the point.
        let bounds = LoopNestBounds::new(&space).unwrap();
        for j in bounds.points() {
            let tile = tiled.transform().tile_of(&j);
            assert!(
                tiled.tile_valid(&tile),
                "tile {tile:?} of {j:?} not in shadow"
            );
            assert!(
                tiled.tile_iterations(&tile).any(|(_, jj)| jj == j),
                "point {j:?} missing from its tile {tile:?}"
            );
        }
    }

    #[test]
    fn rectangular_tile_deps_for_unit_deps() {
        let space = Polyhedron::from_box(&[0, 0], &[7, 7]);
        let t = TilingTransform::rectangular(&[4, 4]).unwrap();
        let tiled = TiledSpace::new(t, space).unwrap();
        let deps = IMat::from_rows(&[&[1, 0], &[0, 1]]);
        let ds = tiled.tile_deps(&deps);
        // d = (1,0) crosses tiles only at the boundary row: d^S = (1,0); same
        // for (0,1). Interior points give (0,0), excluded.
        let cols: BTreeSet<Vec<i64>> = (0..ds.cols()).map(|c| ds.col(c)).collect();
        let expected: BTreeSet<Vec<i64>> = [vec![0, 1], vec![1, 0]].into_iter().collect();
        assert_eq!(cols, expected);
    }

    #[test]
    fn long_dependence_spans_two_tiles() {
        let space = Polyhedron::from_box(&[0], &[9]);
        let t = TilingTransform::rectangular(&[2]).unwrap();
        let tiled = TiledSpace::new(t, space).unwrap();
        // d = 3 with tile length 2: d^S in {1, 2}.
        let deps = IMat::from_rows(&[&[3]]);
        let ds = tiled.tile_deps(&deps);
        let cols: BTreeSet<Vec<i64>> = (0..ds.cols()).map(|c| ds.col(c)).collect();
        let expected: BTreeSet<Vec<i64>> = [vec![1], vec![2]].into_iter().collect();
        assert_eq!(cols, expected);
    }

    #[test]
    fn skewed_tiling_tile_deps_match_paper_structure() {
        // SOR-nr with equal factors: D^S components must all be in {0, 1}
        // and lexicographically positive.
        let space = sor_like_space();
        let tiled = TiledSpace::new(sor_hnr(3, 3, 3), space).unwrap();
        let deps = IMat::from_rows(&[&[1, 0, 1, 1, 0], &[1, 1, 0, 1, 0], &[2, 0, 2, 1, 1]]);
        let ds = tiled.tile_deps(&deps);
        for c in 0..ds.cols() {
            let col = ds.col(c);
            assert!(tilecc_linalg::vecops::is_lex_positive(&col), "{col:?}");
            assert!(col.iter().all(|&x| (0..=1).contains(&x)), "{col:?}");
        }
    }

    #[test]
    fn shadow_contains_every_nonempty_tile_and_scan_is_finite() {
        let space = sor_like_space();
        let tiled = TiledSpace::new(sor_hnr(2, 3, 2), space).unwrap();
        let tiles: Vec<_> = tiled.tiles().collect();
        assert!(!tiles.is_empty());
        // All tiles distinct.
        let set: BTreeSet<_> = tiles.iter().cloned().collect();
        assert_eq!(set.len(), tiles.len());
    }

    #[test]
    fn shadow_pruning_drops_empty_candidate_tiles() {
        // 2D space 0<=i<=7, 0<=j<=4 cut by 3i <= 2j + 5, tiled by the
        // non-rectangular H = [[1/4, 0], [1/4, 1/2]]. The FM shadow's
        // parametric integer bounds over-approximate here: they admit one
        // candidate tile whose box contains no iteration point. Plan-time
        // pruning must drop it so no rank ever computes, packs, or waits
        // on an empty tile.
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], 0));
        p.add(Constraint::new(vec![-1, 0], 7));
        p.add(Constraint::new(vec![0, 1], 0));
        p.add(Constraint::new(vec![0, -1], 4));
        p.add(Constraint::new(vec![-3, 2], 5));
        let h = RMat::from_fractions(&[&[(1, 4), (0, 1)], &[(1, 4), (1, 2)]]);
        let tiled = TiledSpace::new(TilingTransform::new(h).unwrap(), p.clone()).unwrap();

        assert_eq!(
            tiled.tiles_pruned(),
            1,
            "shadow should admit one empty candidate"
        );
        // Every surviving tile is genuinely non-empty...
        for tile in tiled.tiles() {
            assert!(
                tiled.tile_volume(&tile) >= 1,
                "empty tile {tile:?} survived pruning"
            );
        }
        // ...and pruning loses no iterations: the per-tile volumes still
        // sum to the full space.
        let total_space = LoopNestBounds::new(&p).unwrap().points().count();
        assert_eq!(tiled.total_tiled_iterations(), total_space);
        // The pruned candidate count matches the raw shadow enumeration.
        let candidates = tiled.tile_bounds().points().count();
        assert_eq!(candidates, tiled.tiles().count() + tiled.tiles_pruned());
    }

    #[test]
    fn pruning_is_a_noop_on_exact_shadows() {
        // For the paper's kernel-style spaces the FM shadow plus redundancy
        // elimination is empirically exact; pruning must keep every
        // candidate and report zero drops.
        let space = sor_like_space();
        for t in [
            TilingTransform::rectangular(&[2, 3, 2]).unwrap(),
            sor_hnr(2, 3, 2),
            sor_hnr(3, 2, 4),
        ] {
            let tiled = TiledSpace::new(t, space.clone()).unwrap();
            assert_eq!(tiled.tiles_pruned(), 0);
        }
    }
}
