//! # tilecc-tiling
//!
//! General parallelepiped tiling transformations (§2.2–§3.2 of *"Compiling
//! Tiled Iteration Spaces for Clusters"*, CLUSTER 2002):
//!
//! * [`TilingTransform`] — `H`, `P = H⁻¹`, the integralized `H' = V·H`, its
//!   Hermite Normal Form (loop strides/offsets) and the TTIS lattice.
//! * [`TiledSpace`] — tile-space loop bounds by Fourier–Motzkin, strided
//!   boundary-clamped tile traversal, exact tile dependencies `D^S`.
//! * [`Distribution`] — computation distribution: chains of tiles along the
//!   longest dimension per processor (§3.1).
//! * [`CommPlan`] — communication vector `CC`, halo offsets, processor
//!   dependencies `D^m`, pack/unpack regions (§3.2).
//! * [`LdsGeometry`]/[`Lds`] — the dense rectangular Local Data Space with
//!   `map`/`map⁻¹` addressing (§3.1, Tables 1–2).
//! * [`tiling_cone_rays`] — extreme rays of the tiling cone, from which the
//!   paper's scheduling-optimal tilings are drawn.

pub mod comm;
pub mod cone;
pub mod lds;
pub mod mapping;
pub mod tile_space;
pub mod transform;

pub use comm::CommPlan;
pub use cone::{candidate_rows, cone_matrix, in_tiling_cone, tiling_cone_rays};
pub use lds::{Lds, LdsGeometry};
pub use mapping::{insert_at, longest_dimension, project_pid, Distribution};
pub use tile_space::TiledSpace;
pub use transform::{TilingError, TilingTransform};
