#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
//! The tiling cone (§2.2, §4): the set of legal tile-hyperplane normals
//! `{ x | x·d ≥ 0 for every dependence d }`, whose extreme rays the paper
//! (following Xue, Boulet et al., Hodzic/Shang) identifies as the source of
//! communication- and scheduling-optimal tilings.
//!
//! Extreme rays are computed exactly for the small dimensions of interest
//! (`n ≤ 4`): every `(n−1)`-subset of dependence vectors of rank `n−1`
//! determines a candidate direction (its null space); a candidate is an
//! extreme ray if it satisfies all constraints and its active set has rank
//! `n−1`.

use tilecc_linalg::{gcd_i128, IMat, RMat, Rational};

/// True iff `x·d ≥ 0` for every dependence column `d`.
pub fn in_tiling_cone(x: &[i64], deps: &IMat) -> bool {
    (0..deps.cols()).all(|q| deps.col(q).iter().zip(x).map(|(&a, &b)| a * b).sum::<i64>() >= 0)
}

/// Rank of a small rational matrix (Gaussian elimination).
fn rank(rows: &[Vec<Rational>]) -> usize {
    if rows.is_empty() {
        return 0;
    }
    let ncols = rows[0].len();
    let mut a: Vec<Vec<Rational>> = rows.to_vec();
    let mut r = 0usize;
    for c in 0..ncols {
        let Some(p) = (r..a.len()).find(|&i| !a[i][c].is_zero()) else {
            continue;
        };
        a.swap(r, p);
        let inv = a[r][c].recip();
        for j in 0..ncols {
            a[r][j] = a[r][j] * inv;
        }
        for i in 0..a.len() {
            if i != r && !a[i][c].is_zero() {
                let f = a[i][c];
                for j in 0..ncols {
                    let v = a[i][j] - f * a[r][j];
                    a[i][j] = v;
                }
            }
        }
        r += 1;
        if r == a.len() {
            break;
        }
    }
    r
}

/// One-dimensional null space of a rank-`(n−1)` set of row vectors; `None`
/// when the rank is lower. The result is a primitive integer vector.
fn nullspace_direction(rows: &[Vec<Rational>], n: usize) -> Option<Vec<i64>> {
    if rank(rows) != n - 1 {
        return None;
    }
    // Reduced row echelon form.
    let mut a: Vec<Vec<Rational>> = rows.to_vec();
    let mut pivots: Vec<usize> = vec![];
    let mut r = 0usize;
    for c in 0..n {
        let Some(p) = (r..a.len()).find(|&i| !a[i][c].is_zero()) else {
            continue;
        };
        a.swap(r, p);
        let inv = a[r][c].recip();
        for j in 0..n {
            a[r][j] = a[r][j] * inv;
        }
        for i in 0..a.len() {
            if i != r && !a[i][c].is_zero() {
                let f = a[i][c];
                for j in 0..n {
                    let v = a[i][j] - f * a[r][j];
                    a[i][j] = v;
                }
            }
        }
        pivots.push(c);
        r += 1;
        if r == n - 1 {
            break;
        }
    }
    let free = (0..n).find(|c| !pivots.contains(c))?;
    let mut x = vec![Rational::ZERO; n];
    x[free] = Rational::ONE;
    for (row, &pc) in pivots.iter().enumerate() {
        x[pc] = -a[row][free];
    }
    // Scale to a primitive integer vector.
    let lcm = x
        .iter()
        .fold(1i128, |acc, v| tilecc_linalg::lcm_i128(acc, v.den()));
    let mut ints: Vec<i128> = x.iter().map(|v| v.num() * (lcm / v.den())).collect();
    let g = ints.iter().fold(0i128, |acc, &v| gcd_i128(acc, v));
    if g > 1 {
        for v in &mut ints {
            *v /= g;
        }
    }
    Some(
        ints.iter()
            .map(|&v| i64::try_from(v).expect("ray overflow"))
            .collect(),
    )
}

/// Compute the extreme rays of the tiling cone of `deps` (columns). Rays are
/// primitive integer vectors, deduplicated, sorted.
///
/// # Panics
/// Panics if `n < 2` or the cone is not pointed enough to be spanned by
/// dependence-orthogonal rays (does not happen for the paper's algorithms).
pub fn tiling_cone_rays(deps: &IMat) -> Vec<Vec<i64>> {
    let n = deps.rows();
    let q = deps.cols();
    assert!(n >= 2, "tiling cone requires n >= 2");
    let dep_rows: Vec<Vec<Rational>> = (0..q)
        .map(|c| deps.col(c).iter().map(|&v| Rational::from_int(v)).collect())
        .collect();
    let mut rays: Vec<Vec<i64>> = vec![];
    if q < n - 1 {
        return rays;
    }
    // Enumerate (n−1)-subsets of constraints.
    let mut subset: Vec<usize> = (0..n - 1).collect();
    loop {
        let rows: Vec<Vec<Rational>> = subset.iter().map(|&i| dep_rows[i].clone()).collect();
        if let Some(dir) = nullspace_direction(&rows, n) {
            for cand in [dir.clone(), dir.iter().map(|&v| -v).collect::<Vec<_>>()] {
                if in_tiling_cone(&cand, deps) && is_extreme(&cand, deps) && !rays.contains(&cand) {
                    rays.push(cand);
                }
            }
        }
        if !next_combination(&mut subset, q) {
            break;
        }
    }
    rays.sort();
    rays
}

/// Advance `subset` to the next k-combination of `0..q`; false at the end.
fn next_combination(subset: &mut [usize], q: usize) -> bool {
    let k = subset.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if subset[i] < q - k + i {
            subset[i] += 1;
            for j in i + 1..k {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// A cone member is extreme iff its active constraints span rank `n−1`.
fn is_extreme(x: &[i64], deps: &IMat) -> bool {
    let n = deps.rows();
    let active: Vec<Vec<Rational>> = (0..deps.cols())
        .filter(|&q| deps.col(q).iter().zip(x).map(|(&a, &b)| a * b).sum::<i64>() == 0)
        .map(|q| deps.col(q).iter().map(|&v| Rational::from_int(v)).collect())
        .collect();
    rank(&active) == n - 1
}

/// Candidate tile-hyperplane normals for the auto-tuner: the cone's extreme
/// rays (the communication-optimal directions of Hodzic/Shang) plus any
/// coordinate unit vectors inside the cone (so rectangular and mixed tilings
/// compete too — for SOR, `e_3` is in the cone but not extreme). Primitive,
/// deduplicated, sorted.
pub fn candidate_rows(deps: &IMat) -> Vec<Vec<i64>> {
    let n = deps.rows();
    let mut rows = tiling_cone_rays(deps);
    for k in 0..n {
        let mut e = vec![0i64; n];
        e[k] = 1;
        if in_tiling_cone(&e, deps) && !rows.contains(&e) {
            rows.push(e);
        }
    }
    rows.sort();
    rows
}

/// Rational matrix whose rows are the cone rays — the paper's matrix `C`.
pub fn cone_matrix(deps: &IMat) -> RMat {
    let rays = tiling_cone_rays(deps);
    assert!(!rays.is_empty(), "empty tiling cone");
    RMat::from_fn(rays.len(), deps.rows(), |i, j| {
        Rational::from_int(rays[i][j])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn ray_set(deps: &IMat) -> BTreeSet<Vec<i64>> {
        tiling_cone_rays(deps).into_iter().collect()
    }

    #[test]
    fn sor_cone_matches_paper() {
        // Skewed SOR dependencies; paper §4.1 gives
        // C = [[1,0,0],[0,1,0],[-1,0,1],[-2,1,1]].
        let deps = IMat::from_rows(&[&[1, 0, 1, 1, 0], &[1, 1, 0, 1, 0], &[2, 0, 2, 1, 1]]);
        let expected: BTreeSet<Vec<i64>> =
            [vec![1, 0, 0], vec![0, 1, 0], vec![-1, 0, 1], vec![-2, 1, 1]]
                .into_iter()
                .collect();
        assert_eq!(ray_set(&deps), expected);
    }

    #[test]
    fn adi_cone_matches_paper() {
        // ADI dependencies; paper §4.3 gives C = [[1,−1,−1],[0,1,0],[0,0,1]].
        let deps = IMat::from_rows(&[&[1, 1, 1], &[0, 1, 0], &[0, 0, 1]]);
        let expected: BTreeSet<Vec<i64>> = [vec![1, -1, -1], vec![0, 1, 0], vec![0, 0, 1]]
            .into_iter()
            .collect();
        assert_eq!(ray_set(&deps), expected);
    }

    #[test]
    fn jacobi_cone_rays_are_valid_and_extreme() {
        // Skewed Jacobi dependencies (derived in tilecc-loopnest).
        let deps = IMat::from_rows(&[&[1, 1, 1, 1, 1], &[2, 0, 1, 1, 1], &[1, 1, 2, 0, 1]]);
        let rays = tiling_cone_rays(&deps);
        assert!(rays.len() >= 3, "3-D pointed cone needs at least 3 rays");
        for r in &rays {
            assert!(in_tiling_cone(r, &deps), "{r:?} not in cone");
        }
        // The paper's non-rectangular Jacobi rows must lie in the cone:
        // H_nr rows (scaled): (2,−1,0), (0,1,0), (0,0,1).
        assert!(in_tiling_cone(&[2, -1, 0], &deps));
        assert!(in_tiling_cone(&[0, 1, 0], &deps));
        assert!(in_tiling_cone(&[0, 0, 1], &deps));
    }

    #[test]
    fn rectangular_rows_are_interior_for_sor() {
        // Hodzic/Shang: rows strictly inside the cone are suboptimal. The
        // rectangular row e_3 = (0,0,1) is in the cone but NOT extreme.
        let deps = IMat::from_rows(&[&[1, 0, 1, 1, 0], &[1, 1, 0, 1, 0], &[2, 0, 2, 1, 1]]);
        assert!(in_tiling_cone(&[0, 0, 1], &deps));
        assert!(!ray_set(&deps).contains(&vec![0, 0, 1]));
    }

    #[test]
    fn candidate_rows_extend_rays_with_in_cone_units() {
        // SOR: e_3 is in the cone but not extreme — the tuner pool must
        // include it alongside the four extreme rays.
        let deps = IMat::from_rows(&[&[1, 0, 1, 1, 0], &[1, 1, 0, 1, 0], &[2, 0, 2, 1, 1]]);
        let rows: BTreeSet<Vec<i64>> = candidate_rows(&deps).into_iter().collect();
        let mut expected = ray_set(&deps);
        expected.insert(vec![0, 0, 1]);
        assert_eq!(rows, expected);
        // Orthant cone: units coincide with the rays, no duplicates.
        let unit = IMat::identity(3);
        assert_eq!(candidate_rows(&unit).len(), 3);
    }

    #[test]
    fn orthant_cone_for_unit_deps() {
        let deps = IMat::identity(3);
        let expected: BTreeSet<Vec<i64>> = [vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]]
            .into_iter()
            .collect();
        assert_eq!(ray_set(&deps), expected);
    }
}
