//! The tiling transformation `H` and its derived machinery (§2.2–2.3).
//!
//! * `H` — rational `n×n` non-singular matrix; row `k` is perpendicular to
//!   the `k`-th family of tile-forming hyperplanes. `P = H⁻¹` holds the tile
//!   side-vectors as columns; the tile size is `|det(P)|`.
//! * `H' = V·H` — the integralized transformation, with `V` the minimal
//!   positive diagonal matrix making every row integral. The Transformed
//!   Tile Iteration Space (TTIS) of a tile is the column lattice of `H'`
//!   intersected with the box `[0, v)` where `v_k = V_kk`.
//! * `H̃'` — the column-style Hermite Normal Form of `H'`; its diagonal
//!   gives the traversal strides `c_k` and its sub-diagonal entries the
//!   incremental offsets `a_kl`.

use tilecc_linalg::{column_hnf, IMat, Lattice, RMat, Rational};
use tilecc_polytope::PolytopeError;

/// Errors produced when constructing or validating a tiling transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TilingError {
    /// `H` is singular and defines no tiling.
    Singular,
    /// `P = H⁻¹` has a non-integer column: the tile side-vectors are not
    /// integer vectors. The paper's dual definition ("matrix P contains the
    /// side-vectors of a tile as column vectors") presumes integral sides;
    /// without it the TTIS of different tiles are *different cosets* of the
    /// `H'` lattice and the uniform `map()` addressing of Table 1 breaks.
    NonIntegralSides { col: usize },
    /// `H·d < 0` for a dependence vector `d` — the tiling is illegal because
    /// a tile dependence would be lexicographically negative.
    IllegalForDependence { dep: Vec<i64> },
    /// The exact polyhedral machinery under plan construction reported an
    /// error (coefficient overflow from user-authored bounds).
    Polytope(PolytopeError),
}

impl From<PolytopeError> for TilingError {
    fn from(e: PolytopeError) -> Self {
        TilingError::Polytope(e)
    }
}

impl std::fmt::Display for TilingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TilingError::Singular => write!(f, "tiling matrix H is singular"),
            TilingError::NonIntegralSides { col } => {
                write!(
                    f,
                    "tile side-vector {col} (column of P = H⁻¹) is not integral"
                )
            }
            TilingError::IllegalForDependence { dep } => {
                write!(
                    f,
                    "tiling is illegal: H·d has a negative component for d = {dep:?}"
                )
            }
            TilingError::Polytope(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TilingError {}

/// A general parallelepiped tiling transformation.
#[derive(Clone, Debug)]
pub struct TilingTransform {
    h: RMat,
    p: RMat,
    v: Vec<i64>,
    h_prime: IMat,
    p_prime: RMat,
    hnf: IMat,
    lattice: Lattice,
    /// Adjugate of `H'` and `det(H')`: `j = adj(H')·w / det(H')` gives the
    /// inverse transform in pure integer arithmetic.
    p_prime_adj: IMat,
    h_prime_det: i64,
}

impl TilingTransform {
    /// Build the transformation from the rational matrix `H`.
    pub fn new(h: RMat) -> Result<Self, TilingError> {
        assert_eq!(h.rows(), h.cols(), "H must be square");
        if h.det().is_zero() {
            return Err(TilingError::Singular);
        }
        let p = h.inverse();
        let n = h.rows();
        // Integral tile sides: v_k·e_k must lie on the H' lattice for every
        // k, so all tiles share one TTIS lattice (see `TilingError`).
        for col in 0..n {
            if (0..n).any(|row| !p[(row, col)].is_integer()) {
                return Err(TilingError::NonIntegralSides { col });
            }
        }
        let v = h.row_denominator_lcms();
        let mut h_prime_r = RMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                h_prime_r[(i, j)] = Rational::from_int(v[i]) * h[(i, j)];
            }
        }
        debug_assert!(h_prime_r.is_integral());
        let h_prime = h_prime_r.to_imat();
        let p_prime = h_prime.inverse();
        let hnf = column_hnf(&h_prime).hnf;
        let lattice = Lattice::from_columns(&h_prime);
        let h_prime_det = h_prime.det();
        // adj(H') = det(H')·H'⁻¹, an integer matrix.
        let mut adj = IMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let e = p_prime[(i, j)] * Rational::from_int(h_prime_det);
                adj[(i, j)] = e.to_integer();
            }
        }
        Ok(TilingTransform {
            h,
            p,
            v,
            h_prime,
            p_prime,
            hnf,
            lattice,
            p_prime_adj: adj,
            h_prime_det,
        })
    }

    /// Rectangular tiling with edge lengths `sizes` (`H = diag(1/size_k)`).
    pub fn rectangular(sizes: &[i64]) -> Result<Self, TilingError> {
        assert!(sizes.iter().all(|&s| s > 0), "tile sizes must be positive");
        let n = sizes.len();
        let h = RMat::from_fn(n, n, |i, j| {
            if i == j {
                Rational::new(1, sizes[i] as i128)
            } else {
                Rational::ZERO
            }
        });
        TilingTransform::new(h)
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.v.len()
    }

    /// The tiling matrix `H`.
    #[inline]
    pub fn h(&self) -> &RMat {
        &self.h
    }

    /// `P = H⁻¹` — tile side-vectors as columns.
    #[inline]
    pub fn p(&self) -> &RMat {
        &self.p
    }

    /// The diagonal of `V` (`v_kk` in the paper).
    #[inline]
    pub fn v(&self) -> &[i64] {
        &self.v
    }

    /// `H' = V·H` (integral).
    #[inline]
    pub fn h_prime(&self) -> &IMat {
        &self.h_prime
    }

    /// `P' = H'⁻¹`.
    #[inline]
    pub fn p_prime(&self) -> &RMat {
        &self.p_prime
    }

    /// The Hermite Normal Form `H̃'` of `H'`.
    #[inline]
    pub fn hnf(&self) -> &IMat {
        &self.hnf
    }

    /// The TTIS lattice (column lattice of `H'`).
    #[inline]
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Traversal stride `c_k = h̃'_kk` of TTIS coordinate `k`.
    #[inline]
    pub fn stride(&self, k: usize) -> i64 {
        self.hnf[(k, k)]
    }

    /// All strides `c`.
    pub fn strides(&self) -> Vec<i64> {
        (0..self.dim()).map(|k| self.stride(k)).collect()
    }

    /// Tile size `|det(P)| = 1/|det(H)|` (number of integer points per full
    /// tile).
    pub fn tile_size(&self) -> i64 {
        let d = self.p.det().abs();
        assert!(d.is_integer(), "tile size must be integral");
        d.to_integer()
    }

    /// The tile containing iteration `j`: `j^S = ⌊H·j⌋`.
    pub fn tile_of(&self, j: &[i64]) -> Vec<i64> {
        self.h.mul_ivec(j).iter().map(|r| r.floor()).collect()
    }

    /// TTIS coordinate of iteration `j` within tile `j^S`:
    /// `j' = H'·(j − P·j^S) = H'·j − V·j^S`.
    pub fn ttis_coord(&self, j: &[i64], tile: &[i64]) -> Vec<i64> {
        let hj = self.h_prime.mul_vec(j);
        hj.iter()
            .zip(self.v.iter().zip(tile))
            .map(|(&a, (&vk, &t))| a - vk * t)
            .collect()
    }

    /// Inverse of [`TilingTransform::ttis_coord`]: `j = P·j^S + P'·j'`.
    ///
    /// # Panics
    /// Panics if `(tile, j')` does not correspond to an integer iteration
    /// (i.e. `j'` is not a TTIS lattice point).
    pub fn iteration(&self, tile: &[i64], jp: &[i64]) -> Vec<i64> {
        let n = self.dim();
        let mut out = Vec::with_capacity(n);
        let a = self.p.mul_ivec(tile);
        let b = self.p_prime.mul_ivec(jp);
        for k in 0..n {
            let r = a[k] + b[k];
            assert!(
                r.is_integer(),
                "({tile:?}, {jp:?}) is not an integer iteration"
            );
            out.push(r.to_integer());
        }
        out
    }

    /// Fast integer-only version of [`TilingTransform::iteration`]:
    /// `j = adj(H')·(V·j^S + j') / det(H')`. Exact for TTIS lattice points.
    ///
    /// # Panics
    /// Panics (in debug builds) if `j'` is not a lattice point of the tile.
    pub fn iteration_fast(&self, tile: &[i64], jp: &[i64]) -> Vec<i64> {
        let n = self.dim();
        let mut w = vec![0i64; n];
        for k in 0..n {
            w[k] = self.v[k] * tile[k] + jp[k];
        }
        let num = self.p_prime_adj.mul_vec(&w);
        num.iter()
            .map(|&x| {
                debug_assert_eq!(x % self.h_prime_det, 0, "not a lattice point");
                x / self.h_prime_det
            })
            .collect()
    }

    /// Transformed dependence vectors `D' = H'·D` (columns).
    pub fn transformed_deps(&self, deps: &IMat) -> IMat {
        self.h_prime.mul(deps)
    }

    /// Legality: every dependence must satisfy `H·d ≥ 0` componentwise, so
    /// that tile dependencies are non-negative (Ramanujam/Sadayappan [12]).
    pub fn validate_for(&self, deps: &IMat) -> Result<(), TilingError> {
        for q in 0..deps.cols() {
            let d = deps.col(q);
            let hd = self.h.mul_ivec(&d);
            if hd.iter().any(|r| r.is_negative()) {
                return Err(TilingError::IllegalForDependence { dep: d });
            }
        }
        Ok(())
    }

    /// Enumerate the TTIS lattice points of a full (interior) tile, in the
    /// strided loop order of the paper.
    pub fn ttis_points(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        let lo = vec![0i64; self.dim()];
        self.lattice.points_in_box(&lo, &self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's SOR non-rectangular tiling (§4.1) with x, y, z factors.
    pub fn sor_hnr(x: i64, y: i64, z: i64) -> RMat {
        RMat::from_fractions(&[
            &[(1, x), (0, 1), (0, 1)],
            &[(0, 1), (1, y), (0, 1)],
            &[(-1, z), (0, 1), (1, z)],
        ])
    }

    #[test]
    fn rectangular_tiling_basics() {
        let t = TilingTransform::rectangular(&[4, 3, 5]).unwrap();
        assert_eq!(t.tile_size(), 60);
        assert_eq!(t.v(), &[4, 3, 5]);
        assert_eq!(t.strides(), vec![1, 1, 1]);
        assert_eq!(t.tile_of(&[4, 2, 9]), vec![1, 0, 1]);
        assert_eq!(t.tile_of(&[-1, 0, 0]), vec![-1, 0, 0]);
    }

    #[test]
    fn sor_nr_tiling_derivations() {
        let t = TilingTransform::new(sor_hnr(4, 3, 5)).unwrap();
        assert_eq!(t.v(), &[4, 3, 5]);
        assert_eq!(t.tile_size(), 60);
        // H' = V·H = [[1,0,0],[0,1,0],[-1,0,1]].
        assert_eq!(
            *t.h_prime(),
            IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[-1, 0, 1]])
        );
        // Unimodular H' ⇒ TTIS lattice is dense, all strides 1.
        assert_eq!(t.strides(), vec![1, 1, 1]);
        assert_eq!(t.ttis_points().count(), 60);
    }

    #[test]
    fn ttis_coord_round_trip() {
        let t = TilingTransform::new(sor_hnr(2, 2, 2)).unwrap();
        for j0 in -3i64..4 {
            for j1 in -3i64..4 {
                for j2 in -3i64..4 {
                    let j = [j0, j1, j2];
                    let tile = t.tile_of(&j);
                    let jp = t.ttis_coord(&j, &tile);
                    // Every TTIS coordinate lies in [0, v).
                    for k in 0..3 {
                        assert!(0 <= jp[k] && jp[k] < t.v()[k], "jp={jp:?} j={j:?}");
                    }
                    assert_eq!(t.iteration(&tile, &jp), j.to_vec());
                }
            }
        }
    }

    #[test]
    fn legality_check_matches_paper() {
        // Skewed SOR dependencies (paper §4.1).
        let deps = IMat::from_rows(&[&[1, 0, 1, 1, 0], &[1, 1, 0, 1, 0], &[2, 0, 2, 1, 1]]);
        let nr = TilingTransform::new(sor_hnr(4, 3, 5)).unwrap();
        assert!(nr.validate_for(&deps).is_ok());
        let rect = TilingTransform::rectangular(&[4, 3, 5]).unwrap();
        assert!(rect.validate_for(&deps).is_ok());
        // An illegal tiling: row pointing against the dependencies.
        let bad = TilingTransform::new(RMat::from_fractions(&[
            &[(-1, 2), (0, 1), (0, 1)],
            &[(0, 1), (1, 2), (0, 1)],
            &[(0, 1), (0, 1), (1, 2)],
        ]))
        .unwrap();
        assert!(matches!(
            bad.validate_for(&deps),
            Err(TilingError::IllegalForDependence { .. })
        ));
    }

    #[test]
    fn non_integral_tile_sides_are_rejected() {
        // Jacobi H_nr with odd y: P = H⁻¹ has the column (y/2, y, 0).
        let h = RMat::from_fractions(&[
            &[(1, 3), (-1, 6), (0, 1)],
            &[(0, 1), (1, 5), (0, 1)],
            &[(0, 1), (0, 1), (1, 4)],
        ]);
        assert_eq!(
            TilingTransform::new(h).unwrap_err(),
            TilingError::NonIntegralSides { col: 1 }
        );
        // Even y is accepted.
        let h = RMat::from_fractions(&[
            &[(1, 3), (-1, 6), (0, 1)],
            &[(0, 1), (1, 6), (0, 1)],
            &[(0, 1), (0, 1), (1, 4)],
        ]);
        assert!(TilingTransform::new(h).is_ok());
    }

    #[test]
    fn singular_h_is_rejected() {
        let h = RMat::from_fractions(&[&[(1, 2), (1, 2)], &[(1, 2), (1, 2)]]);
        assert_eq!(TilingTransform::new(h).unwrap_err(), TilingError::Singular);
    }

    #[test]
    fn transformed_deps_are_integral_lattice_vectors() {
        let t = TilingTransform::new(sor_hnr(3, 4, 5)).unwrap();
        let deps = IMat::from_rows(&[&[1, 0, 1, 1, 0], &[1, 1, 0, 1, 0], &[2, 0, 2, 1, 1]]);
        let dp = t.transformed_deps(&deps);
        for q in 0..dp.cols() {
            assert!(
                t.lattice().contains(&dp.col(q)),
                "H'd must be a TTIS lattice vector"
            );
        }
    }

    #[test]
    fn non_unit_strides_from_skewed_h() {
        // H with a genuinely non-unimodular H': H = [[1/2, 1/2], [0, 1/2]]
        // gives H' = [[1,1],[0,1]]·... -> V = diag(2,2), H' = [[1,1],[0,1]].
        let h = RMat::from_fractions(&[&[(1, 2), (1, 2)], &[(0, 1), (1, 2)]]);
        let t = TilingTransform::new(h).unwrap();
        assert_eq!(*t.h_prime(), IMat::from_rows(&[&[1, 1], &[0, 1]]));
        assert_eq!(t.tile_size(), 4);
        // dense lattice (det H' = 1): strides 1.
        assert_eq!(t.strides(), vec![1, 1]);
        // A genuinely sparse TTIS lattice: H = [[1/2,0],[1/4,1/2]] gives
        // V = diag(2,4), H' = [[1,0],[1,2]] with det 2.
        let h2 = RMat::from_fractions(&[&[(1, 2), (0, 1)], &[(1, 4), (1, 2)]]);
        let t2 = TilingTransform::new(h2).unwrap();
        assert_eq!(t2.v(), &[2, 4]);
        assert_eq!(*t2.h_prime(), IMat::from_rows(&[&[1, 0], &[1, 2]]));
        assert_eq!(t2.tile_size(), 4);
        assert_eq!(t2.strides(), vec![1, 2]);
        // 8 integer points in the [0,2)×[0,4) box, lattice index 2 ⇒ 4
        // TTIS points — exactly the tile size.
        assert_eq!(t2.ttis_points().count(), 4);
    }
}
