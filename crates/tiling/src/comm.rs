#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
//! Communication sets (§3.2): the compile-time communication vector `CC`,
//! LDS halo offsets, tile dependencies `D^S`, processor dependencies `D^m`,
//! and the pack/unpack regions of the send/receive scheme.

use crate::mapping::project_pid;
use crate::tile_space::TiledSpace;
use std::collections::BTreeMap;
use tilecc_linalg::vecops::div_ceil;
use tilecc_linalg::IMat;

/// All compile-time communication information for one (tiling, mapping
/// dimension) pair.
#[derive(Clone, Debug)]
pub struct CommPlan {
    /// Mapping dimension.
    pub m: usize,
    /// Transformed dependence vectors `D' = H'·D` (columns).
    pub d_prime: IMat,
    /// `maxd_k = max_l d'_kl` clamped to ≥ 0 (halo depth per dimension).
    pub maxd: Vec<i64>,
    /// Communication vector `cc_k = v_kk − maxd_k`: `j'` is a communication
    /// point along `k` iff `j'_k ≥ cc_k`.
    pub cc: Vec<i64>,
    /// LDS halo offsets: `off_k = ⌈maxd_k / c_k⌉` for `k ≠ m`,
    /// `off_m = maxS_m · ⌈v_m / c_m⌉` (space for data of predecessor tiles).
    pub off: Vec<i64>,
    /// Tile dependence matrix `D^S` (columns, zero excluded), sorted so that
    /// larger `m`-components come first — receives for earlier predecessor
    /// tiles are posted first, matching FIFO channel order.
    pub tile_deps: Vec<Vec<i64>>,
    /// Processor dependencies `D^m` (projections of `D^S` with dimension `m`
    /// collapsed, zero excluded, deduplicated, in deterministic order).
    pub proc_deps: Vec<Vec<i64>>,
    /// For every `tile_deps[i]`: index into `proc_deps`, or `None` when the
    /// projection is zero (intra-processor dependence, no communication).
    pub dm_of_ds: Vec<Option<usize>>,
}

impl CommPlan {
    /// Build the communication plan for `tiled` with dependencies `deps`
    /// (columns) mapped along dimension `m`.
    pub fn new(tiled: &TiledSpace, deps: &IMat, m: usize) -> Self {
        let t = tiled.transform();
        let n = t.dim();
        assert!(m < n);
        let d_prime = t.transformed_deps(deps);
        let v = t.v();
        let maxd: Vec<i64> = (0..n)
            .map(|k| {
                (0..d_prime.cols())
                    .map(|q| d_prime[(k, q)])
                    .max()
                    .unwrap_or(0)
                    .max(0)
            })
            .collect();
        let cc: Vec<i64> = (0..n).map(|k| v[k] - maxd[k]).collect();

        let ds_mat = tiled.tile_deps(deps);
        let mut tile_deps: Vec<Vec<i64>> = (0..ds_mat.cols()).map(|c| ds_mat.col(c)).collect();
        // Descending m-component: predecessor tiles in ascending order, so
        // that receives posted within one tile match FIFO send order from a
        // given sender.
        tile_deps.sort_by(|a, b| b[m].cmp(&a[m]).then_with(|| a.cmp(b)));

        let max_s_m = tile_deps.iter().map(|d| d[m]).max().unwrap_or(1).max(1);
        let c = t.strides();
        let off: Vec<i64> = (0..n)
            .map(|k| {
                if k == m {
                    max_s_m * div_ceil(v[m], c[m])
                } else {
                    div_ceil(maxd[k], c[k])
                }
            })
            .collect();

        // Deduplicated processor dependencies, in first-seen order over the
        // sorted tile deps (deterministic on both sides of a channel).
        let mut proc_deps: Vec<Vec<i64>> = vec![];
        let mut seen: BTreeMap<Vec<i64>, usize> = BTreeMap::new();
        let mut dm_of_ds = Vec::with_capacity(tile_deps.len());
        for ds in &tile_deps {
            let dm = project_pid(ds, m);
            if dm.iter().all(|&x| x == 0) {
                dm_of_ds.push(None);
                continue;
            }
            let idx = *seen.entry(dm.clone()).or_insert_with(|| {
                proc_deps.push(dm.clone());
                proc_deps.len() - 1
            });
            dm_of_ds.push(Some(idx));
        }
        CommPlan {
            m,
            d_prime,
            maxd,
            cc,
            off,
            tile_deps,
            proc_deps,
            dm_of_ds,
        }
    }

    /// The pack/unpack region for processor dependence `dm`: the lattice box
    /// `[lo, v)` with `lo_k = max(0, cc_k)` in the dimensions `k ≠ m` where
    /// `dm` is non-zero, `lo_k = 0` elsewhere (dimension `m` is always the
    /// full tile range — the paper's SEND/RECEIVE loops).
    pub fn region_lo(&self, dm: &[i64], v: &[i64]) -> Vec<i64> {
        let n = v.len();
        let mut lo = vec![0i64; n];
        let mut pk = 0usize;
        for k in 0..n {
            if k == self.m {
                continue;
            }
            if dm[pk] != 0 {
                lo[k] = self.cc[k].max(0);
            }
            pk += 1;
        }
        lo
    }

    /// All tile-dependence columns whose projection equals `proc_deps[idx]`.
    pub fn ds_of_dm(&self, idx: usize) -> impl Iterator<Item = &Vec<i64>> + '_ {
        self.tile_deps
            .iter()
            .zip(&self.dm_of_ds)
            .filter(move |(_, dm)| **dm == Some(idx))
            .map(|(ds, _)| ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile_space::TiledSpace;
    use crate::transform::TilingTransform;
    use tilecc_linalg::RMat;
    use tilecc_polytope::Polyhedron;

    fn sor_deps() -> IMat {
        IMat::from_rows(&[&[1, 0, 1, 1, 0], &[1, 1, 0, 1, 0], &[2, 0, 2, 1, 1]])
    }

    fn sor_space() -> Polyhedron {
        use tilecc_polytope::Constraint;
        let mut p = Polyhedron::universe(3);
        p.add(Constraint::new(vec![1, 0, 0], -1));
        p.add(Constraint::new(vec![-1, 0, 0], 8));
        p.add(Constraint::new(vec![-1, 1, 0], -1));
        p.add(Constraint::new(vec![1, -1, 0], 8));
        p.add(Constraint::new(vec![-2, 0, 1], -1));
        p.add(Constraint::new(vec![2, 0, -1], 8));
        p
    }

    #[test]
    fn cc_matches_hand_computation_rectangular() {
        // Rectangular 4×4×4 tiling of skewed SOR: D' = H'D = 4·H·D = D
        // scaled... with H = diag(1/4): H' = I·... V = diag(4,4,4), H' = D
        // unchanged: maxd = (1, 1, 2), cc = (3, 3, 2).
        let t = TilingTransform::rectangular(&[4, 4, 4]).unwrap();
        let tiled = TiledSpace::new(t, sor_space()).unwrap();
        let plan = CommPlan::new(&tiled, &sor_deps(), 2);
        assert_eq!(plan.maxd, vec![1, 1, 2]);
        assert_eq!(plan.cc, vec![3, 3, 2]);
        assert_eq!(plan.off[0], 1);
        assert_eq!(plan.off[1], 1);
        assert_eq!(plan.off[2], 4); // v_m / c_m = 4
    }

    #[test]
    fn nr_tiling_reduces_halo_on_skewed_dim() {
        // Non-rectangular SOR tiling: H' = [[1,0,0],[0,1,0],[-1,0,1]]·(x=y=z=4).
        // D' columns: H'·d for each skewed dependence.
        let h = RMat::from_fractions(&[
            &[(1, 4), (0, 1), (0, 1)],
            &[(0, 1), (1, 4), (0, 1)],
            &[(-1, 4), (0, 1), (1, 4)],
        ]);
        let t = TilingTransform::new(h).unwrap();
        let tiled = TiledSpace::new(t, sor_space()).unwrap();
        let plan = CommPlan::new(&tiled, &sor_deps(), 2);
        // d' for d=(1,1,2): (1,1,1); (0,1,0)->(0,1,0); (1,0,2)->(1,0,1);
        // (1,1,1)->(1,1,0); (0,0,1)->(0,0,1). maxd = (1,1,1): the skew
        // shrinks the third-dimension halo from 2 to 1.
        assert_eq!(plan.maxd, vec![1, 1, 1]);
        assert_eq!(plan.cc, vec![3, 3, 3]);
    }

    #[test]
    fn tile_deps_sorted_with_descending_m_component() {
        let t = TilingTransform::rectangular(&[4, 4, 4]).unwrap();
        let tiled = TiledSpace::new(t, sor_space()).unwrap();
        let plan = CommPlan::new(&tiled, &sor_deps(), 2);
        for w in plan.tile_deps.windows(2) {
            assert!(w[0][2] >= w[1][2]);
        }
        // Every projection maps consistently.
        assert_eq!(plan.dm_of_ds.len(), plan.tile_deps.len());
        for (ds, dm_idx) in plan.tile_deps.iter().zip(&plan.dm_of_ds) {
            let proj = project_pid(ds, 2);
            match dm_idx {
                Some(i) => assert_eq!(&plan.proc_deps[*i], &proj),
                None => assert!(proj.iter().all(|&x| x == 0)),
            }
        }
    }

    #[test]
    fn region_lo_uses_cc_only_on_crossing_dims() {
        let t = TilingTransform::rectangular(&[4, 4, 4]).unwrap();
        let tiled = TiledSpace::new(t, sor_space()).unwrap();
        let plan = CommPlan::new(&tiled, &sor_deps(), 2);
        let v = vec![4, 4, 4];
        assert_eq!(plan.region_lo(&[1, 0], &v), vec![3, 0, 0]);
        assert_eq!(plan.region_lo(&[0, 1], &v), vec![0, 3, 0]);
        assert_eq!(plan.region_lo(&[1, 1], &v), vec![3, 3, 0]);
        assert_eq!(plan.region_lo(&[0, 0], &v), vec![0, 0, 0]);
    }

    #[test]
    fn proc_deps_exclude_pure_chain_dependence() {
        let t = TilingTransform::rectangular(&[4, 4, 4]).unwrap();
        let tiled = TiledSpace::new(t, sor_space()).unwrap();
        let plan = CommPlan::new(&tiled, &sor_deps(), 2);
        // (0,0,1) projects to zero: intra-processor, not in proc_deps.
        assert!(plan.proc_deps.iter().all(|dm| dm.iter().any(|&x| x != 0)));
        assert!(plan.dm_of_ds.iter().any(|x| x.is_none()));
    }
}
