#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
//! The Local Data Space (§3.1): a dense rectangular per-processor array
//! condensing the TTIS lattice points of the processor's tile chain plus
//! halo space for received data.
//!
//! Addressing is based on the *unrolled local coordinate* of a global
//! iteration `j` for a processor with anchor `a` (tile coordinates of the
//! processor's first tile):
//!
//! ```text
//! g = H'·j − V·a      (so g_k ∈ [0, v_k) for owned dims k ≠ m,
//!                      g_m ∈ [0, |chain|·v_m) for owned data,
//!                      g_k < 0 for halo data)
//! addr_k = ⌊g_k / c_k⌋ + off_k
//! ```
//!
//! This is exactly the paper's `map(j', t)` (Table 1) written against global
//! coordinates: for an owned point of chain tile `t` with TTIS coordinate
//! `j'`, `g_k = j'_k (k ≠ m)` and `g_m = t·v_m + j'_m`. The floor divisions
//! condense each lattice residue class to consecutive integers, so the
//! computation storage is dense; halo addresses land in the `[0, off_k)`
//! prefix. `map⁻¹`/`loc⁻¹` (Table 2) are implemented by reconstructing the
//! lattice residues by forward substitution over the Hermite basis.

use crate::comm::CommPlan;
use crate::transform::TilingTransform;
use tilecc_linalg::vecops::{div_ceil, div_floor};
use tilecc_linalg::IMat;

/// Rank-independent LDS geometry: strides, offsets, tile box.
#[derive(Clone, Debug)]
pub struct LdsGeometry {
    /// Traversal strides `c_k` (diagonal of the HNF).
    pub c: Vec<i64>,
    /// Halo offsets `off_k`.
    pub off: Vec<i64>,
    /// Tile box `v_k`.
    pub v: Vec<i64>,
    /// Mapping dimension.
    pub m: usize,
    /// Hermite basis `H̃'` (for residue reconstruction in `addr_inv`).
    hnf: IMat,
}

impl LdsGeometry {
    pub fn new(transform: &TilingTransform, plan: &CommPlan) -> Self {
        LdsGeometry {
            c: transform.strides(),
            off: plan.off.clone(),
            v: transform.v().to_vec(),
            m: plan.m,
            hnf: transform.hnf().clone(),
        }
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.v.len()
    }

    /// LDS address (per-dimension) of the unrolled local coordinate `g`.
    pub fn addr(&self, g: &[i64]) -> Vec<i64> {
        (0..self.dim())
            .map(|k| div_floor(g[k], self.c[k]) + self.off[k])
            .collect()
    }

    /// Per-dimension address extents for a chain of `num_tiles` tiles.
    pub fn extents(&self, num_tiles: i64) -> Vec<i64> {
        assert!(num_tiles > 0);
        (0..self.dim())
            .map(|k| {
                let max_g = if k == self.m {
                    (num_tiles - 1) * self.v[k] + self.v[k] - 1
                } else {
                    self.v[k] - 1
                };
                self.off[k] + div_floor(max_g, self.c[k]) + 1
            })
            .collect()
    }

    /// Signed flat (row-major) cell index of the unrolled local coordinate
    /// `g` under the per-dimension `weights`, with **no range checks**: each
    /// dimension's address may be negative or beyond its extent. This is the
    /// compile-time lowering primitive of the flat-index execution path —
    /// for any two coordinates whose per-dimension addresses are in range,
    /// the *difference* of their signed flat indices is their true cell
    /// distance, so relative offsets computed here are exact wherever the
    /// checked [`Lds::index_of`] would succeed.
    pub fn flat_cell_signed(&self, g: &[i64], weights: &[i64]) -> i64 {
        (0..self.dim())
            .map(|k| (div_floor(g[k], self.c[k]) + self.off[k]) * weights[k])
            .sum()
    }

    /// Row-major cell weights for the given per-dimension extents
    /// (`weights[n−1] = 1`, `weights[k] = weights[k+1] · extents[k+1]`).
    pub fn weights(extents: &[i64]) -> Vec<i64> {
        let n = extents.len();
        let mut w = vec![1i64; n];
        for k in (0..n.saturating_sub(1)).rev() {
            w[k] = w[k + 1] * extents[k + 1];
        }
        w
    }

    /// Inverse of [`LdsGeometry::addr`] for a processor anchored at `a`
    /// (full `n`-dim tile coordinates of its first tile): reconstructs `g`
    /// from the address by forward substitution of the lattice residues.
    /// This is the paper's `map⁻¹` (Table 2) in global form.
    pub fn addr_inv(&self, addr: &[i64], anchor: &[i64]) -> Vec<i64> {
        let n = self.dim();
        let mut g = vec![0i64; n];
        let mut mm = vec![0i64; n]; // lattice coordinates of g + V·anchor
        for k in 0..n {
            // base_k = Σ_{l<k} h̃_kl·m_l; the lattice point is
            // g_k + v_k·anchor_k = base_k + c_k·m_k.
            let mut base = 0i64;
            for l in 0..k {
                base += self.hnf[(k, l)] * mm[l];
            }
            let target_residue = (base - self.v[k] * anchor[k]).rem_euclid(self.c[k]);
            g[k] = self.c[k] * (addr[k] - self.off[k]) + target_residue;
            let num = g[k] + self.v[k] * anchor[k] - base;
            debug_assert_eq!(
                num.rem_euclid(self.c[k]),
                0,
                "address not on the LDS lattice"
            );
            mm[k] = num.div_euclid(self.c[k]);
        }
        g
    }
}

/// A per-processor LDS: geometry + anchor + storage (`width` components per
/// cell — one per written array, see `tilecc-loopnest`'s `MultiKernel`).
pub struct Lds {
    geo: LdsGeometry,
    /// Tile coordinates of the processor's first chain tile (dimension `m`
    /// holds `l^S_m`; the others hold the pid).
    anchor: Vec<i64>,
    extents: Vec<i64>,
    width: usize,
    data: Vec<f64>,
}

impl Lds {
    /// Allocate a single-component LDS for the processor anchored at
    /// `anchor` executing `num_tiles` chain tiles.
    pub fn new(geo: LdsGeometry, anchor: Vec<i64>, num_tiles: i64) -> Self {
        Lds::with_width(geo, anchor, num_tiles, 1)
    }

    /// Allocate with `width` components per cell.
    pub fn with_width(geo: LdsGeometry, anchor: Vec<i64>, num_tiles: i64, width: usize) -> Self {
        assert_eq!(anchor.len(), geo.dim());
        assert!(width >= 1);
        let extents = geo.extents(num_tiles);
        let total: i64 = extents.iter().product();
        let total = usize::try_from(total).expect("LDS too large");
        Lds {
            geo,
            anchor,
            extents,
            width,
            data: vec![0.0; total * width],
        }
    }

    /// Components per cell.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    pub fn geometry(&self) -> &LdsGeometry {
        &self.geo
    }

    #[inline]
    pub fn anchor(&self) -> &[i64] {
        &self.anchor
    }

    /// Total allocated cells (× width values).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear index of unrolled local coordinate `g`; `None` when the
    /// address falls outside the allocation (e.g. halo deeper than any
    /// read reaches — such writes are dropped by callers).
    #[inline]
    pub fn index_of(&self, g: &[i64]) -> Option<usize> {
        let mut idx: i64 = 0;
        for k in 0..self.geo.dim() {
            // Inline per-dimension addressing to avoid allocating.
            let a = div_floor(g[k], self.geo.c[k]) + self.geo.off[k];
            if a < 0 || a >= self.extents[k] {
                return None;
            }
            idx = idx * self.extents[k] + a;
        }
        Some(idx as usize)
    }

    /// Read component 0 for `g`.
    ///
    /// # Panics
    /// Panics if `g` is outside the allocation — in a correct compilation
    /// every read is in range, so this indicates a planning bug.
    pub fn get(&self, g: &[i64]) -> f64 {
        let idx = self.index_of(g).expect("LDS read out of range");
        self.data[idx * self.width]
    }

    /// Copy all components for `g` into `out`.
    ///
    /// # Panics
    /// Panics if `g` is outside the allocation.
    pub fn get_into(&self, g: &[i64], out: &mut [f64]) {
        let idx = self.index_of(g).expect("LDS read out of range");
        out.copy_from_slice(&self.data[idx * self.width..(idx + 1) * self.width]);
    }

    /// Store component 0 for `g`; silently drops writes outside the
    /// allocation (unpacked halo cells that no read ever touches).
    pub fn set(&mut self, g: &[i64], val: f64) {
        if let Some(idx) = self.index_of(g) {
            self.data[idx * self.width] = val;
        }
    }

    /// Store all components for `g`; drops out-of-range writes.
    pub fn set_all(&mut self, g: &[i64], vals: &[f64]) {
        debug_assert_eq!(vals.len(), self.width);
        if let Some(idx) = self.index_of(g) {
            self.data[idx * self.width..(idx + 1) * self.width].copy_from_slice(vals);
        }
    }

    /// The unrolled local coordinate of chain-relative tile `t` and TTIS
    /// coordinate `j'` — the paper's `map(j', t)` input convention.
    pub fn unrolled(&self, t: i64, jp: &[i64]) -> Vec<i64> {
        let mut g = jp.to_vec();
        g[self.geo.m] += t * self.geo.v[self.geo.m];
        g
    }

    /// Per-dimension address extents of this allocation.
    #[inline]
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// The raw value storage, `width` consecutive `f64`s per cell in
    /// row-major cell order — the flat-index execution path reads and
    /// writes cells directly by linear index instead of re-deriving
    /// per-dimension addresses point by point.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw value storage (see [`Lds::values`]).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// Convenience: the halo-region extent check `off_k ≥ ⌈maxd_k / c_k⌉` used
/// in tests and assertions.
pub fn halo_covers(geo: &LdsGeometry, maxd: &[i64]) -> bool {
    (0..geo.dim()).all(|k| {
        if k == geo.m {
            true
        } else {
            geo.off[k] >= div_ceil(maxd[k], geo.c[k])
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommPlan;
    use crate::tile_space::TiledSpace;
    use crate::transform::TilingTransform;
    use tilecc_linalg::RMat;
    use tilecc_polytope::Polyhedron;

    fn setup(h: RMat, m: usize) -> (TilingTransform, LdsGeometry, CommPlan) {
        let t = TilingTransform::new(h).unwrap();
        let space = Polyhedron::from_box(&[0, 0, 0], &[15, 15, 15]);
        let deps = IMat::from_rows(&[&[1, 0, 1, 1, 0], &[1, 1, 0, 1, 0], &[2, 0, 2, 1, 1]]);
        let tiled = TiledSpace::new(t.clone(), space).unwrap();
        let plan = CommPlan::new(&tiled, &deps, m);
        let geo = LdsGeometry::new(&t, &plan);
        (t, geo, plan)
    }

    fn rect_h(x: i64, y: i64, z: i64) -> RMat {
        RMat::from_fractions(&[
            &[(1, x), (0, 1), (0, 1)],
            &[(0, 1), (1, y), (0, 1)],
            &[(0, 1), (0, 1), (1, z)],
        ])
    }

    fn nr_h(x: i64, y: i64, z: i64) -> RMat {
        RMat::from_fractions(&[
            &[(1, x), (0, 1), (0, 1)],
            &[(0, 1), (1, y), (0, 1)],
            &[(-1, z), (0, 1), (1, z)],
        ])
    }

    #[test]
    fn owned_addresses_are_dense_and_unique() {
        for h in [rect_h(4, 4, 4), nr_h(4, 4, 4), nr_h(3, 4, 5)] {
            let (t, geo, _plan) = setup(h, 2);
            let lds = Lds::new(geo, vec![0, 0, 0], 3);
            let mut seen = std::collections::HashSet::new();
            let mut count = 0usize;
            for chain_t in 0..3i64 {
                for jp in t.ttis_points() {
                    let g = lds.unrolled(chain_t, &jp);
                    let idx = lds.index_of(&g).expect("owned point must be addressable");
                    assert!(
                        seen.insert(idx),
                        "address collision at t={chain_t} jp={jp:?}"
                    );
                    count += 1;
                }
            }
            assert_eq!(count, 3 * t.tile_size() as usize);
            // Density: owned cells fill the non-halo sub-box exactly (these
            // transformations have unit strides, so the box is tight).
            let e = lds.geo.extents(3);
            let owned: i64 = (0..3).map(|k| e[k] - lds.geo.off[k]).product();
            assert_eq!(owned as usize, count);
        }
    }

    #[test]
    fn addr_inv_round_trips_owned_and_halo() {
        for h in [rect_h(4, 4, 4), nr_h(4, 4, 4), nr_h(2, 3, 4)] {
            let (t, geo, plan) = setup(h, 2);
            let anchor = vec![1, 2, 0];
            let lds = Lds::new(geo.clone(), anchor.clone(), 2);
            // Owned points.
            for chain_t in 0..2i64 {
                for jp in t.ttis_points() {
                    let g = lds.unrolled(chain_t, &jp);
                    let addr = geo.addr(&g);
                    assert_eq!(geo.addr_inv(&addr, &anchor), g);
                }
            }
            // Halo points: lattice points shifted by −d' for every dep.
            for q in 0..plan.d_prime.cols() {
                let d = plan.d_prime.col(q);
                for jp in t.ttis_points() {
                    let mut g = lds.unrolled(0, &jp);
                    for k in 0..3 {
                        g[k] -= d[k];
                    }
                    let addr = geo.addr(&g);
                    assert_eq!(geo.addr_inv(&addr, &anchor), g, "halo g={g:?}");
                }
            }
        }
    }

    #[test]
    fn halo_addresses_fit_allocation() {
        let (t, geo, plan) = setup(nr_h(4, 4, 4), 2);
        let lds = Lds::new(geo.clone(), vec![0, 0, 0], 2);
        assert!(halo_covers(&geo, &plan.maxd));
        for q in 0..plan.d_prime.cols() {
            let d = plan.d_prime.col(q);
            for chain_t in 0..2i64 {
                for jp in t.ttis_points() {
                    let mut g = lds.unrolled(chain_t, &jp);
                    for k in 0..3 {
                        g[k] -= d[k];
                    }
                    assert!(
                        lds.index_of(&g).is_some(),
                        "read target outside LDS: t={chain_t} jp={jp:?} d={d:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn flat_cell_signed_matches_index_of_in_range() {
        for h in [rect_h(4, 4, 4), nr_h(4, 4, 4), nr_h(2, 3, 4)] {
            let (t, geo, _plan) = setup(h, 2);
            let lds = Lds::new(geo.clone(), vec![0, 0, 0], 3);
            let weights = LdsGeometry::weights(lds.extents());
            for chain_t in 0..3i64 {
                for jp in t.ttis_points() {
                    let g = lds.unrolled(chain_t, &jp);
                    let checked = lds.index_of(&g).expect("owned point addressable");
                    assert_eq!(geo.flat_cell_signed(&g, &weights), checked as i64);
                }
            }
        }
    }

    #[test]
    fn get_set_round_trip() {
        let (_t, geo, _plan) = setup(rect_h(2, 2, 2), 2);
        let mut lds = Lds::new(geo, vec![0, 0, 0], 4);
        let g = vec![1, 1, 5];
        lds.set(&g, 42.5);
        assert_eq!(lds.get(&g), 42.5);
        // Out-of-range set is dropped silently; get panics.
        lds.set(&[-100, 0, 0], 1.0);
    }

    #[test]
    #[should_panic(expected = "LDS read out of range")]
    fn out_of_range_read_panics() {
        let (_t, geo, _plan) = setup(rect_h(2, 2, 2), 2);
        let lds = Lds::new(geo, vec![0, 0, 0], 1);
        let _ = lds.get(&[-100, 0, 0]);
    }
}
