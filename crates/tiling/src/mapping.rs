//! Computation distribution (§3.1): chains of tiles along the mapping
//! dimension `m` are assigned to the same processor; the remaining `n−1`
//! tile coordinates identify the processor (`pid`).
//!
//! Following the paper (and the UET-UCT optimality result it cites), `m`
//! defaults to the dimension with the maximum number of tiles. Because the
//! tile-space shadow is convex, each processor's chain is a contiguous range
//! of tile indices along `m`.

use crate::tile_space::TiledSpace;
use crate::transform::TilingError;
use std::collections::HashMap;

/// The processor assignment of a tiled space.
#[derive(Clone, Debug)]
pub struct Distribution {
    /// Mapping dimension (tiles along this dimension share a processor).
    pub m: usize,
    /// Distinct processor ids in rank order (lexicographic). A pid holds the
    /// `n−1` tile coordinates with dimension `m` removed.
    pub pids: Vec<Vec<i64>>,
    /// Per-rank inclusive tile range `[l^S_m, u^S_m]` along `m`.
    pub chains: Vec<(i64, i64)>,
    rank_of: HashMap<Vec<i64>, usize>,
}

impl Distribution {
    /// Distribute `tiled` over processors, mapping along `m`
    /// (`None` selects the dimension with the maximum tile count, as the
    /// paper prescribes).
    pub fn new(tiled: &TiledSpace, m: Option<usize>) -> Result<Self, TilingError> {
        let n = tiled.dim();
        let m = match m {
            Some(m) => m,
            None => longest_dimension(tiled)?,
        };
        assert!(m < n, "mapping dimension out of range");
        let mut chains_map: HashMap<Vec<i64>, (i64, i64)> = HashMap::new();
        for tile in tiled.tiles() {
            let pid = project_pid(&tile, m);
            let t = tile[m];
            chains_map
                .entry(pid)
                .and_modify(|(lo, hi)| {
                    *lo = (*lo).min(t);
                    *hi = (*hi).max(t);
                })
                .or_insert((t, t));
        }
        let mut pids: Vec<Vec<i64>> = chains_map.keys().cloned().collect();
        pids.sort();
        let chains: Vec<(i64, i64)> = pids.iter().map(|p| chains_map[p]).collect();
        let rank_of: HashMap<Vec<i64>, usize> = pids
            .iter()
            .cloned()
            .enumerate()
            .map(|(r, p)| (p, r))
            .collect();
        Ok(Distribution {
            m,
            pids,
            chains,
            rank_of,
        })
    }

    /// Number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.pids.len()
    }

    /// Rank of a processor id, if it exists.
    pub fn rank(&self, pid: &[i64]) -> Option<usize> {
        self.rank_of.get(pid).copied()
    }

    /// The full tile coordinates of chain element `t` of processor `pid`.
    pub fn tile_coords(&self, pid: &[i64], t: i64) -> Vec<i64> {
        insert_at(pid, self.m, t)
    }

    /// Longest chain length (tiles) over all processors.
    pub fn max_chain_len(&self) -> i64 {
        self.chains
            .iter()
            .map(|&(lo, hi)| hi - lo + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Remove coordinate `m` from a tile index, yielding the pid.
pub fn project_pid(tile: &[i64], m: usize) -> Vec<i64> {
    tile.iter()
        .enumerate()
        .filter(|&(k, _)| k != m)
        .map(|(_, &v)| v)
        .collect()
}

/// Insert value `t` at position `m`, inverse of [`project_pid`].
pub fn insert_at(pid: &[i64], m: usize, t: i64) -> Vec<i64> {
    let mut out = Vec::with_capacity(pid.len() + 1);
    out.extend_from_slice(&pid[..m]);
    out.push(t);
    out.extend_from_slice(&pid[m..]);
    out
}

/// The dimension of the tile space with the maximum extent (number of
/// candidate tile indices).
pub fn longest_dimension(tiled: &TiledSpace) -> Result<usize, TilingError> {
    let n = tiled.dim();
    let mut best = 0usize;
    let mut best_len = -1i64;
    for k in 0..n {
        // Project the shadow onto dimension k alone.
        let mut p = tiled.shadow().clone();
        for v in (0..n).rev() {
            if v != k {
                p = p.eliminate(v)?;
            }
        }
        if let Some((lo, hi)) = p.integer_bounds(0, &[]) {
            let len = hi - lo + 1;
            if len > best_len {
                best_len = len;
                best = k;
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::TilingTransform;
    use tilecc_polytope::Polyhedron;

    fn tiled_box(extents: &[i64], sizes: &[i64]) -> TiledSpace {
        let lo = vec![0i64; extents.len()];
        let hi: Vec<i64> = extents.iter().map(|&e| e - 1).collect();
        TiledSpace::new(
            TilingTransform::rectangular(sizes).unwrap(),
            Polyhedron::from_box(&lo, &hi),
        )
        .unwrap()
    }

    #[test]
    fn longest_dimension_picks_max_tile_count() {
        let tiled = tiled_box(&[8, 32, 8], &[4, 4, 4]);
        assert_eq!(longest_dimension(&tiled).unwrap(), 1);
    }

    #[test]
    fn distribution_covers_all_tiles_exactly_once() {
        let tiled = tiled_box(&[8, 12, 8], &[4, 4, 4]);
        let dist = Distribution::new(&tiled, None).unwrap();
        assert_eq!(dist.m, 1);
        assert_eq!(dist.num_procs(), 2 * 2); // 2 tiles in dims 0 and 2
        let mut count = 0;
        for (r, pid) in dist.pids.iter().enumerate() {
            let (lo, hi) = dist.chains[r];
            assert_eq!((lo, hi), (0, 2));
            for t in lo..=hi {
                let tile = dist.tile_coords(pid, t);
                assert!(tiled.tile_valid(&tile));
                count += 1;
            }
        }
        assert_eq!(count, tiled.tiles().count());
    }

    #[test]
    fn rank_lookup_round_trip() {
        let tiled = tiled_box(&[8, 8, 8], &[4, 4, 4]);
        let dist = Distribution::new(&tiled, Some(2)).unwrap();
        for (r, pid) in dist.pids.iter().enumerate() {
            assert_eq!(dist.rank(pid), Some(r));
        }
        assert_eq!(dist.rank(&[99, 99]), None);
    }

    #[test]
    fn project_insert_round_trip() {
        let tile = vec![3, 7, 9];
        for m in 0..3 {
            let pid = project_pid(&tile, m);
            assert_eq!(insert_at(&pid, m, tile[m]), tile);
        }
    }

    #[test]
    fn explicit_mapping_dimension_is_respected() {
        let tiled = tiled_box(&[8, 32, 8], &[4, 4, 4]);
        let dist = Distribution::new(&tiled, Some(0)).unwrap();
        assert_eq!(dist.m, 0);
        assert_eq!(dist.num_procs(), 8 * 2);
    }
}
