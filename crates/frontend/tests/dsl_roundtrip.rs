//! AST round-trip discipline for the `.tk` DSL: `parse → pretty → parse`
//! must be the identity on the pretty form, and the pretty form must
//! compile to a program that is *bitwise identical* in sequential
//! execution to the original source. Runs over the shipped corpus in
//! `examples/kernels/` and over a seeded random-kernel generator so the
//! pretty-printer is exercised far beyond the hand-written examples.

use std::path::{Path, PathBuf};
use tilecc_frontend::{compile_kernel, parse_kernel};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/kernels")
}

/// Assert the full round-trip contract for one kernel source.
fn assert_round_trip(name: &str, src: &str) {
    let p1 = parse_kernel(src).unwrap_or_else(|e| panic!("{name}: fails to parse: {e}"));
    let pretty = p1.pretty();
    let p2 = parse_kernel(&pretty)
        .unwrap_or_else(|e| panic!("{name}: pretty form fails to re-parse: {e}\n{pretty}"));
    assert_eq!(
        pretty,
        p2.pretty(),
        "{name}: pretty-print is not a fixed point"
    );

    // Semantic identity: the pretty form must compile to the same
    // program — same dependence columns, bitwise-identical execution.
    let a1 = compile_kernel(src).unwrap_or_else(|e| panic!("{name}: fails to compile: {e}"));
    let a2 = compile_kernel(&pretty)
        .unwrap_or_else(|e| panic!("{name}: pretty form fails to compile: {e}"));
    assert_eq!(
        a1.nest.deps(),
        a2.nest.deps(),
        "{name}: dependence matrix changed across round-trip"
    );
    let d1 = a1.execute_sequential();
    let d2 = a2.execute_sequential();
    assert_eq!(
        d1.diff(&d2),
        None,
        "{name}: sequential execution differs after round-trip"
    );
    assert_eq!(
        d1.checksum().to_bits(),
        d2.checksum().to_bits(),
        "{name}: checksum bits differ after round-trip"
    );
}

#[test]
fn corpus_round_trips() {
    let mut count = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("examples/kernels exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "tk") {
            let src = std::fs::read_to_string(&path).unwrap();
            assert_round_trip(&path.display().to_string(), &src);
            count += 1;
        }
    }
    assert_eq!(count, 10, "corpus size drifted");
}

// ---------------------------------------------------------------------
// Seeded random-kernel generator
// ---------------------------------------------------------------------

/// xorshift64* — same generator family the fuzzer uses; deterministic
/// across platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

const VARS: [&str; 4] = ["t", "i", "j", "k"];
// Exact binary fractions: their shortest decimal form re-parses to the
// same f64, so coefficients survive pretty-printing bit-for-bit.
const COEFS: [&str; 6] = ["0.125", "0.25", "0.375", "0.5", "0.625", "0.75"];

/// Render a read of `arr` at offset `d` from the current point:
/// offset component `c` on variable `v` prints as `v-c` (a dependence
/// reaching back `c` along that axis).
fn read_at(arr: &str, d: &[i64]) -> String {
    let idx: Vec<String> = d
        .iter()
        .enumerate()
        .map(|(k, &c)| {
            let v = VARS[k];
            match c.cmp(&0) {
                std::cmp::Ordering::Equal => v.to_string(),
                std::cmp::Ordering::Greater => format!("{v}-{c}"),
                std::cmp::Ordering::Less => format!("{v}+{}", -c),
            }
        })
        .collect();
    format!("{arr}[{}]", idx.join(","))
}

/// Generate one random-but-valid kernel: 1–3 dims, 1–4 distinct
/// lex-positive dependence offsets, optional `let`, optional second
/// array coupled through the first.
fn gen_kernel(rng: &mut Rng, case: usize) -> String {
    let dim = 1 + rng.below(3) as usize;
    let n = 4 + rng.below(4) as i64;
    let mut src = format!("kernel gen{case}\nparam N = {n}\n");
    for v in VARS.iter().take(dim) {
        src.push_str(&format!("iter {v} = 1 to N\n"));
    }

    // Distinct lex-positive offsets: a positive leading component keeps
    // every offset legal regardless of the trailing ones. Cap the count
    // by the size of the offset alphabet (2·3^(dim−1)) so the dedup
    // loop terminates for 1-D kernels.
    let mut offsets: Vec<Vec<i64>> = Vec::new();
    let alphabet = 2 * 3usize.pow(dim as u32 - 1);
    let want = (1 + rng.below(4) as usize).min(alphabet);
    while offsets.len() < want {
        let mut d = vec![1 + rng.below(2) as i64];
        for _ in 1..dim {
            d.push(rng.below(3) as i64 - 1);
        }
        if !offsets.contains(&d) {
            offsets.push(d);
        }
    }

    let two_arrays = rng.below(4) == 0;
    src.push_str("array A = bnd()\n");
    if two_arrays {
        src.push_str("array B = 1 + bnd()\n");
    }

    let use_let = rng.below(3) == 0;
    if use_let {
        let c = rng.pick(&COEFS);
        src.push_str(&format!("let s = {c}*{}\n", read_at("A", &offsets[0])));
    }

    let vars = VARS[..dim].join(",");
    let mut body: Vec<String> = offsets
        .iter()
        .map(|d| format!("{}*{}", rng.pick(&COEFS), read_at("A", d)))
        .collect();
    if use_let {
        body.push("s".to_string());
    }
    if two_arrays {
        body.push(format!("0.125*{}", read_at("B", &offsets[0])));
    }
    src.push_str(&format!("A[{vars}] = {}\n", body.join(" + ")));
    if two_arrays {
        src.push_str(&format!(
            "B[{vars}] = 0.5*{} - 0.25*{}\n",
            read_at("B", offsets.last().unwrap()),
            read_at("A", &offsets[0]),
        ));
    }
    src
}

#[test]
fn random_kernels_round_trip() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut multi = 0;
    for case in 0..60 {
        let src = gen_kernel(&mut rng, case);
        assert_round_trip(&format!("gen{case}\n{src}"), &src);
        if src.contains("array B") {
            multi += 1;
        }
    }
    // The generator must actually cover the multi-array path.
    assert!(multi >= 5, "only {multi} multi-array kernels generated");
}
