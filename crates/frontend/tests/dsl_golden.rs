//! Golden tests over malformed `.tk` kernels: every diagnostic must name
//! the exact source position and render the documented caret snippet.
//! These lock the *shape* of the error experience — `file:line:col`,
//! offending line, caret under the offending column — not just the
//! message text.

use tilecc_frontend::compile_kernel;

/// Compile a malformed kernel and return its error, asserting position
/// and message substring.
fn expect_error(src: &str, line: usize, col: usize, contains: &str) -> String {
    let e = compile_kernel(src).expect_err("malformed kernel must not compile");
    assert!(
        e.message.contains(contains),
        "message {:?} does not contain {contains:?}",
        e.message
    );
    assert_eq!(
        (e.line, e.col),
        (line, col),
        "wrong source position for {:?}",
        e.message
    );
    e.render("bad.tk", src)
}

#[test]
fn non_uniform_access_names_the_index() {
    let src = "\
kernel bad
param N = 8
iter t = 1 to N
iter i = 1 to N
array A = bnd()
A[t,i] = A[t-1,2*i]
";
    // Column of the `2` in `2*i` (index 2 of the read, 1-based).
    let rendered = expect_error(src, 6, 16, "non-uniform access: index 2 of `A`");
    assert!(rendered.starts_with("bad.tk:6:16: non-uniform access"));
    assert!(rendered.contains("  6 | A[t,i] = A[t-1,2*i]"));
    // Caret sits under column 16.
    let caret_line = rendered.lines().last().unwrap();
    assert_eq!(caret_line, format!("    | {}^", " ".repeat(15)));
}

#[test]
fn unbound_index_variable_is_located() {
    let src = "\
kernel bad
param N = 8
iter t = 1 to N
iter i = 1 to N
array A = bnd()
A[t,i] = A[t-1,k]
";
    let rendered = expect_error(src, 6, 16, "unknown identifier `k`");
    assert!(rendered.contains("  6 | A[t,i] = A[t-1,k]"));
}

#[test]
fn negative_lag_cycle_is_located_at_the_read() {
    let src = "\
kernel bad
param N = 8
iter t = 1 to N
iter i = 1 to N
array A = bnd()
A[t,i] = 0.5*A[t,i+1]
";
    let rendered = expect_error(src, 6, 14, "negative-lag cycle");
    assert!(rendered.contains("dependence offset (0,-1)"));
    assert!(rendered.contains("  6 | A[t,i] = 0.5*A[t,i+1]"));
}

#[test]
fn zero_offset_self_read_is_rejected() {
    let src = "\
kernel bad
param N = 8
iter i = 1 to N
array A = bnd()
A[i] = A[i] + 1
";
    expect_error(src, 5, 8, "reads the point being written");
}

#[test]
fn non_unimodular_skew_points_at_the_skew() {
    let src = "\
kernel bad
param N = 8
iter t = 1 to N
iter i = 1 to N
skew = [2,0; 0,1]
array A = bnd()
A[t,i] = A[t-1,i]
";
    expect_error(src, 5, 1, "skew matrix must be unimodular");
}

#[test]
fn skew_breaking_a_dependence_names_both_vectors() {
    let src = "\
kernel bad
param N = 8
iter t = 1 to N
iter i = 1 to N
skew = [0,1; 1,0]
array A = bnd()
A[t,i] = A[t-1,i+2]
";
    let rendered = expect_error(src, 5, 1, "not lexicographically positive");
    assert!(
        rendered.contains("(1,-2)") && rendered.contains("(-2,1)"),
        "must name original and mapped dependence: {rendered}"
    );
}

#[test]
fn unknown_array_on_lhs_is_located() {
    let src = "\
kernel bad
param N = 8
iter i = 1 to N
array A = bnd()
B[i] = A[i-1]
";
    expect_error(src, 5, 1, "unknown array `B`");
}

#[test]
fn duplicate_name_is_located_at_the_redefinition() {
    let src = "\
kernel bad
param N = 8
iter i = 1 to N
iter i = 1 to N
array A = bnd()
A[i] = A[i-1]
";
    expect_error(src, 4, 6, "name `i` is already defined");
}

#[test]
fn declared_but_unread_dependence_points_at_deps() {
    let src = "\
kernel bad
param N = 8
iter i = 1 to N
deps = (1), (2)
array A = bnd()
A[i] = A[i-1]
";
    expect_error(src, 4, 1, "declared dependence (2) is never read");
}

#[test]
fn lexical_error_names_the_character() {
    let src = "\
kernel bad
param N = 8
iter i = 1 to N
array A = bnd()
A[i] = A[i-1] @ 2
";
    expect_error(src, 5, 15, "unexpected character `@`");
}

#[test]
fn missing_statement_for_declared_array() {
    let src = "\
kernel bad
param N = 8
iter i = 1 to N
array A = bnd()
array B = bnd()
A[i] = A[i-1] + B[i-1]
";
    let e = compile_kernel(src).expect_err("must fail");
    assert!(e.message.contains("array `B` is never written"), "{e}");
}

#[test]
fn render_survives_out_of_range_line() {
    // A TkError pointing past the end of the source must degrade to the
    // bare position line rather than panic.
    let e = tilecc_frontend::TkError::new(99, 1, "boom");
    let rendered = e.render("bad.tk", "kernel x\n");
    assert_eq!(rendered, "bad.tk:99:1: boom");
}
