//! Doc-lock for `docs/kernel-dsl.md`: every fenced ```tk example in the
//! language reference must parse, compile, and round-trip through the
//! pretty-printer; every ```tk-error example must fail to compile with
//! the message its `#=>` line promises. The reference cannot drift from
//! the implementation (same discipline as `tests/wire_format.rs` locking
//! `docs/wire-protocol.md`).

use std::path::Path;
use tilecc_frontend::{compile_kernel, parse_kernel};

fn doc_source() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/kernel-dsl.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("unreadable {path:?}: {e}"))
}

/// Extract fenced blocks of the given info string: `(start_line, body)`.
fn fenced_blocks(markdown: &str, info: &str) -> Vec<(usize, String)> {
    let mut blocks = Vec::new();
    let mut current: Option<(usize, Vec<&str>)> = None;
    for (lineno, line) in markdown.lines().enumerate() {
        let trimmed = line.trim_start();
        match &mut current {
            Some((start, body)) => {
                if trimmed.starts_with("```") {
                    blocks.push((*start, body.join("\n")));
                    current = None;
                } else {
                    body.push(line);
                }
            }
            None => {
                if let Some(rest) = trimmed.strip_prefix("```") {
                    if rest.trim() == info {
                        current = Some((lineno + 1, Vec::new()));
                    }
                }
            }
        }
    }
    assert!(
        current.is_none(),
        "unterminated fence in docs/kernel-dsl.md"
    );
    blocks
}

#[test]
fn every_tk_example_compiles_and_round_trips() {
    let doc = doc_source();
    let blocks = fenced_blocks(&doc, "tk");
    assert!(
        blocks.len() >= 5,
        "expected at least 5 ```tk examples in docs/kernel-dsl.md, found {}",
        blocks.len()
    );
    for (line, src) in blocks {
        let alg = compile_kernel(&src)
            .unwrap_or_else(|e| panic!("docs/kernel-dsl.md:{line}: example fails to compile: {e}"));
        // Every example must execute, not merely type-check: a tiny
        // sequential run exercises initial data, reads, and the tape.
        let _ = alg.execute_sequential();
        // Round-trip: parse → pretty → parse must be the identity on the
        // pretty form.
        let p1 = parse_kernel(&src)
            .unwrap_or_else(|e| panic!("docs/kernel-dsl.md:{line}: example fails to parse: {e}"));
        let pretty = p1.pretty();
        let p2 = parse_kernel(&pretty).unwrap_or_else(|e| {
            panic!(
                "docs/kernel-dsl.md:{line}: pretty-printed form fails to re-parse: {e}\n{pretty}"
            )
        });
        assert_eq!(
            pretty,
            p2.pretty(),
            "docs/kernel-dsl.md:{line}: pretty-print round-trip is not a fixed point"
        );
    }
}

#[test]
fn every_tk_error_example_fails_as_documented() {
    let doc = doc_source();
    let blocks = fenced_blocks(&doc, "tk-error");
    assert!(
        blocks.len() >= 5,
        "expected at least 5 ```tk-error examples in docs/kernel-dsl.md, found {}",
        blocks.len()
    );
    for (line, block) in blocks {
        let expect = block
            .lines()
            .find_map(|l| l.trim().strip_prefix("#=>"))
            .unwrap_or_else(|| {
                panic!("docs/kernel-dsl.md:{line}: tk-error block lacks a `#=>` expectation")
            })
            .trim()
            .to_string();
        match compile_kernel(&block) {
            Ok(_) => panic!(
                "docs/kernel-dsl.md:{line}: tk-error example unexpectedly compiled \
                 (expected error containing {expect:?})"
            ),
            Err(e) => assert!(
                e.message.contains(&expect),
                "docs/kernel-dsl.md:{line}: error {:?} does not contain documented \
                 substring {expect:?}",
                e.message
            ),
        }
    }
}

#[test]
fn shipped_corpus_is_documented() {
    // The reference promises ten corpus kernels; hold it to that.
    let doc = doc_source();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/kernels");
    let mut names = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("examples/kernels exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "tk") {
            names.push(path.file_stem().unwrap().to_string_lossy().into_owned());
        }
    }
    assert_eq!(names.len(), 10, "corpus size drifted: {names:?}");
    for name in &names {
        assert!(
            doc.contains(&format!("`{name}`")),
            "docs/kernel-dsl.md does not mention corpus kernel `{name}`"
        );
    }
}
