//! Lowering: AST → `tilecc_loopnest::Algorithm`.
//!
//! Bounds become half-space constraints (`j_k ≥ lower`, `j_k ≤ upper`), the
//! reference offsets become dependence-matrix columns, and the statement
//! body becomes an interpreted [`Kernel`]. The optional skewing matrix is
//! applied afterwards through the standard `Algorithm::skewed` path, so the
//! kernel keeps evaluating coordinates in original coordinates.

use crate::ast::{Expr, Program};
use crate::lexer::ParseError;
use crate::parser::parse;
use std::sync::Arc;
use tilecc_linalg::IMat;
use tilecc_loopnest::{Algorithm, Kernel, LoopNest};
use tilecc_polytope::{Constraint, Polyhedron};

/// Kernel interpreting the parsed statement body.
struct ExprKernel {
    body: Expr,
    boundary: Expr,
}

impl Kernel for ExprKernel {
    fn compute(&self, j: &[i64], reads: &[f64]) -> f64 {
        self.body.eval(j, reads)
    }

    fn initial(&self, j: &[i64]) -> f64 {
        self.boundary.eval(j, &[])
    }
}

/// Lower a parsed [`Program`] into an [`Algorithm`] (without skewing).
pub fn lower(program: &Program) -> Result<Algorithm, ParseError> {
    let n = program.dim();
    let mut space = Polyhedron::universe(n);
    for (k, lp) in program.loops.iter().enumerate() {
        for lo in &lp.lowers {
            // j_k − lo(j) ≥ 0
            let mut coeffs: Vec<i64> = lo.coeffs.iter().map(|c| -c).collect();
            coeffs[k] += 1;
            space.add(Constraint::new(coeffs, -lo.constant));
        }
        for hi in &lp.uppers {
            // hi(j) − j_k ≥ 0
            let mut coeffs: Vec<i64> = hi.coeffs.clone();
            coeffs[k] -= 1;
            space.add(Constraint::new(coeffs, hi.constant));
        }
    }
    let mut deps = IMat::zeros(n, program.deps.len());
    for (q, d) in program.deps.iter().enumerate() {
        for k in 0..n {
            deps[(k, q)] = d[k];
        }
    }
    let kernel = Arc::new(ExprKernel {
        body: program.body.clone(),
        boundary: program.boundary.clone(),
    });
    let nest = LoopNest::new(space, deps);
    let alg = Algorithm::new(program.array.clone(), nest, kernel);
    if let Some(rows) = &program.skew {
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let t = IMat::from_rows(&refs);
        if t.det().abs() != 1 {
            return Err(ParseError {
                line: 0,
                message: "skew matrix must be unimodular (|det| = 1)".into(),
            });
        }
        Ok(alg.skewed(&t))
    } else {
        Ok(alg)
    }
}

/// Parse and lower in one step.
pub fn compile(source: &str) -> Result<Algorithm, ParseError> {
    let program = parse(source)?;
    lower(&program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilecc_loopnest::kernels;

    const JACOBI_SRC: &str = r#"
param T = 4
param N = 6
skew = [1,0,0; 1,1,0; 1,0,1]
for t = 1 to T
for i = 1 to N
for j = 1 to N
A[t,i,j] = 0.25*(A[t-1,i-1,j] + A[t-1,i,j-1] + A[t-1,i+1,j] + A[t-1,i,j+1])
"#;

    #[test]
    fn compiled_jacobi_matches_builtin_kernel() {
        // Same dependence pattern and same computation as the built-in
        // skewed Jacobi, except for boundary values — compare structure.
        let alg = compile(JACOBI_SRC).unwrap();
        let builtin = kernels::jacobi_skewed(4, 6, 6);
        assert_eq!(alg.nest.num_points(), builtin.nest.num_points());
        let cols: std::collections::HashSet<Vec<i64>> = (0..alg.nest.deps().cols())
            .map(|c| alg.nest.deps().col(c))
            .collect();
        let expected: std::collections::HashSet<Vec<i64>> = (0..builtin.nest.deps().cols())
            .map(|c| builtin.nest.deps().col(c))
            .collect();
        assert_eq!(cols, expected);
    }

    #[test]
    fn compiled_program_executes() {
        let src = r#"
param N = 5
for t = 1 to N
for i = 1 to N
A[t,i] = A[t-1,i] + 2
boundary = 1.0
"#;
        let alg = compile(src).unwrap();
        let ds = alg.execute_sequential();
        // Column accumulates +2 per time step from the 1.0 boundary.
        assert_eq!(ds.get(&[1, 3]), Some(3.0));
        assert_eq!(ds.get(&[5, 3]), Some(11.0));
    }

    #[test]
    fn triangular_space_from_max_min_bounds() {
        let src = r#"
param N = 6
for t = 1 to N
for i = t to min(N, t + 2)
A[t,i] = A[t-1,i] + 1
"#;
        let alg = compile(src).unwrap();
        // Count points: i from t..=min(6, t+2).
        let expected: usize = (1..=6).map(|t| ((t + 2).min(6) - t + 1) as usize).sum();
        assert_eq!(alg.nest.num_points(), expected);
    }

    #[test]
    fn skew_must_be_unimodular() {
        let src = r#"
skew = [2,0; 0,1]
for t = 1 to 3
for i = 1 to 3
A[t,i] = A[t-1,i]
"#;
        let e = compile(src).unwrap_err();
        assert!(e.message.contains("unimodular"), "{e}");
    }

    #[test]
    fn boundary_uses_coordinates() {
        let src = r#"
for t = 1 to 2
for i = 1 to 2
A[t,i] = A[t-1,i]
boundary = 0.5 * i
"#;
        let alg = compile(src).unwrap();
        let ds = alg.execute_sequential();
        // A[1,2] reads A[0,2] = boundary(0,2) = 1.0.
        assert_eq!(ds.get(&[1, 2]), Some(1.0));
        assert_eq!(ds.get(&[2, 2]), Some(1.0));
    }
}
