//! Abstract syntax of the loop-nest language.
//!
//! A program is: parameter bindings, an optional skewing matrix, a perfect
//! FOR nest with affine `max`/`min` bounds, one single-assignment statement
//! over one array with uniform references, and an optional boundary
//! expression.

/// An affine expression over loop variables and (resolved) constants:
/// `Σ coeff_k · var_k + constant`. Coefficients are integers after parameter
/// substitution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffineExpr {
    /// Coefficient per loop variable (indexed by nest depth).
    pub coeffs: Vec<i64>,
    pub constant: i64,
}

impl AffineExpr {
    pub fn constant(dim: usize, c: i64) -> Self {
        AffineExpr {
            coeffs: vec![0; dim],
            constant: c,
        }
    }

    pub fn var(dim: usize, k: usize) -> Self {
        let mut coeffs = vec![0; dim];
        coeffs[k] = 1;
        AffineExpr {
            coeffs,
            constant: 0,
        }
    }

    pub fn add(&self, other: &AffineExpr) -> Self {
        AffineExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: self.constant + other.constant,
        }
    }

    pub fn sub(&self, other: &AffineExpr) -> Self {
        AffineExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a - b)
                .collect(),
            constant: self.constant - other.constant,
        }
    }

    pub fn scale(&self, s: i64) -> Self {
        AffineExpr {
            coeffs: self.coeffs.iter().map(|c| c * s).collect(),
            constant: self.constant * s,
        }
    }

    /// Evaluate at an iteration point.
    pub fn eval(&self, j: &[i64]) -> i64 {
        self.coeffs.iter().zip(j).map(|(&c, &v)| c * v).sum::<i64>() + self.constant
    }

    /// True iff the expression is exactly `var_k + constant`.
    pub fn as_shifted_var(&self, k: usize) -> Option<i64> {
        for (i, &c) in self.coeffs.iter().enumerate() {
            let want = i64::from(i == k);
            if c != want {
                return None;
            }
        }
        Some(self.constant)
    }
}

/// A loop level: `for <var> = max(lo…) to min(hi…)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Loop {
    pub var: String,
    /// Lower bounds — the effective bound is their maximum.
    pub lowers: Vec<AffineExpr>,
    /// Upper bounds — the effective bound is their minimum.
    pub uppers: Vec<AffineExpr>,
}

/// A scalar expression node in the statement body.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Floating constant.
    Num(f64),
    /// The value of loop variable `k` at the current iteration.
    Coord(usize),
    /// The `i`-th distinct uniform array read (dependence column `i`).
    Read(usize),
    Neg(Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Render as a C expression: reads become `read[q]`, coordinates become
    /// `(double)<coord>[k]` — matching the signature of the emitted
    /// `kernel()`. `coord` names the iteration-coordinate array (use a
    /// skew-inverted local when the program was skewed).
    pub fn to_c(&self, coord: &str) -> String {
        match self {
            Expr::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Expr::Coord(k) => format!("(double){coord}[{k}]"),
            Expr::Read(i) => format!("read[{i}]"),
            Expr::Neg(e) => format!("(-{})", e.to_c(coord)),
            Expr::Add(a, b) => format!("({} + {})", a.to_c(coord), b.to_c(coord)),
            Expr::Sub(a, b) => format!("({} - {})", a.to_c(coord), b.to_c(coord)),
            Expr::Mul(a, b) => format!("({} * {})", a.to_c(coord), b.to_c(coord)),
            Expr::Div(a, b) => format!("({} / {})", a.to_c(coord), b.to_c(coord)),
        }
    }

    /// Evaluate given the iteration point and the dependence reads.
    pub fn eval(&self, j: &[i64], reads: &[f64]) -> f64 {
        match self {
            Expr::Num(v) => *v,
            Expr::Coord(k) => j[*k] as f64,
            Expr::Read(i) => reads[*i],
            Expr::Neg(e) => -e.eval(j, reads),
            Expr::Add(a, b) => a.eval(j, reads) + b.eval(j, reads),
            Expr::Sub(a, b) => a.eval(j, reads) - b.eval(j, reads),
            Expr::Mul(a, b) => a.eval(j, reads) * b.eval(j, reads),
            Expr::Div(a, b) => a.eval(j, reads) / b.eval(j, reads),
        }
    }
}

/// A parsed program.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Array name (one array, per the paper's model).
    pub array: String,
    /// Loop levels, outermost first.
    pub loops: Vec<Loop>,
    /// Distinct dependence vectors, in first-occurrence order (columns of D).
    pub deps: Vec<Vec<i64>>,
    /// The statement body.
    pub body: Expr,
    /// Boundary expression (reads outside the space); `Num(0.0)` default.
    pub boundary: Expr,
    /// Optional skewing matrix rows.
    pub skew: Option<Vec<Vec<i64>>>,
}

impl Program {
    pub fn dim(&self) -> usize {
        self.loops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_eval_and_ops() {
        let a = AffineExpr {
            coeffs: vec![1, 2],
            constant: -3,
        };
        assert_eq!(a.eval(&[5, 7]), 5 + 14 - 3);
        let b = AffineExpr::var(2, 0);
        assert_eq!(a.add(&b).eval(&[5, 7]), 21);
        assert_eq!(a.sub(&b).eval(&[5, 7]), 11);
        assert_eq!(a.scale(2).eval(&[5, 7]), 32);
    }

    #[test]
    fn shifted_var_detection() {
        let e = AffineExpr {
            coeffs: vec![0, 1, 0],
            constant: -2,
        };
        assert_eq!(e.as_shifted_var(1), Some(-2));
        assert_eq!(e.as_shifted_var(0), None);
        let f = AffineExpr {
            coeffs: vec![0, 2, 0],
            constant: 0,
        };
        assert_eq!(f.as_shifted_var(1), None);
    }

    #[test]
    fn expr_to_c_renders_parenthesized() {
        let e = Expr::Mul(
            Box::new(Expr::Num(0.25)),
            Box::new(Expr::Add(Box::new(Expr::Read(0)), Box::new(Expr::Coord(2)))),
        );
        assert_eq!(e.to_c("j"), "(0.25 * (read[0] + (double)j[2]))");
        assert_eq!(Expr::Num(2.0).to_c("j"), "2.0");
        assert_eq!(Expr::Neg(Box::new(Expr::Read(1))).to_c("jo"), "(-read[1])");
    }

    #[test]
    fn expr_eval() {
        // 0.5 * reads[0] + j[1] - 1
        let e = Expr::Sub(
            Box::new(Expr::Add(
                Box::new(Expr::Mul(Box::new(Expr::Num(0.5)), Box::new(Expr::Read(0)))),
                Box::new(Expr::Coord(1)),
            )),
            Box::new(Expr::Num(1.0)),
        );
        assert_eq!(e.eval(&[9, 4], &[6.0]), 0.5 * 6.0 + 4.0 - 1.0);
    }
}
