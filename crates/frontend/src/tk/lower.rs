//! Lowering: [`KernelProgram`] → [`Algorithm`] with a tape-compiled
//! [`MultiKernel`].
//!
//! Expressions are flattened into a flat instruction tape (one slot per AST
//! node; `let` bindings compile once and are referenced by slot). The batch
//! entry `compute_run` evaluates the tape op-at-a-time over the whole affine
//! run, so interpreter dispatch is amortized across the run — the DSL
//! analogue of the hand-written kernels' lane blocks — while each *point*
//! keeps the exact per-point floating-point operation order. Batched results
//! are therefore bitwise identical to the per-point path, which the fuzzer's
//! three-way cross-check locks.

use crate::tk::ast::{KernelProgram, TkExpr};
use crate::tk::error::TkError;
use crate::tk::parse::parse_kernel;
use std::cell::RefCell;
use std::sync::Arc;
use tilecc_linalg::IMat;
use tilecc_loopnest::kernels::boundary_value;
use tilecc_loopnest::{Algorithm, LoopNest, MultiKernel};
use tilecc_polytope::{Constraint, Polyhedron};

/// One instruction of the flattened expression tape. Operands are slot
/// indices of earlier instructions.
#[derive(Clone, Debug)]
enum Op {
    Const(f64),
    /// Original coordinate `j[k]` as `f64`.
    Coord(usize),
    /// `reads[(dep·count + p)·width + comp]` (batch) / `reads[dep·width + comp]`.
    Read {
        dep: usize,
        comp: usize,
    },
    /// `boundary_value(j)`.
    Bnd,
    /// `(Σ coeffs·j + constant).rem_euclid(modulus)` as `f64`.
    Mod {
        coeffs: Vec<i64>,
        constant: i64,
        modulus: i64,
    },
    Neg(usize),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
}

/// A compiled expression tape with its output slots.
#[derive(Clone, Debug, Default)]
struct Tape {
    ops: Vec<Op>,
    /// `outputs[c]` is the slot whose value goes to `out[c]`.
    outputs: Vec<usize>,
}

impl Tape {
    /// Scalar evaluation into `slots` (resized as needed).
    fn eval(&self, j: &[i64], reads: &[f64], width: usize, slots: &mut Vec<f64>, out: &mut [f64]) {
        slots.clear();
        slots.resize(self.ops.len(), 0.0);
        for (s, op) in self.ops.iter().enumerate() {
            slots[s] = match op {
                Op::Const(v) => *v,
                Op::Coord(k) => j[*k] as f64,
                Op::Read { dep, comp } => reads[dep * width + comp],
                Op::Bnd => boundary_value(j),
                Op::Mod {
                    coeffs,
                    constant,
                    modulus,
                } => {
                    let v: i64 = coeffs.iter().zip(j).map(|(&c, &x)| c * x).sum::<i64>() + constant;
                    v.rem_euclid(*modulus) as f64
                }
                Op::Neg(a) => -slots[*a],
                Op::Add(a, b) => slots[*a] + slots[*b],
                Op::Sub(a, b) => slots[*a] - slots[*b],
                Op::Mul(a, b) => slots[*a] * slots[*b],
                Op::Div(a, b) => slots[*a] / slots[*b],
            };
        }
        for (c, &s) in self.outputs.iter().enumerate() {
            out[c] = slots[s];
        }
    }

    /// Batched evaluation over the affine run `j0 + p·dj`, `0 ≤ p < count`.
    /// Slot `s` of point `p` lives at `slots[s·count + p]`; per-point
    /// operation order equals the scalar path's, so results are bitwise
    /// identical point for point.
    #[allow(clippy::too_many_arguments)]
    fn eval_run(
        &self,
        j0: &[i64],
        dj: &[i64],
        count: usize,
        reads: &[f64],
        width: usize,
        slots: &mut Vec<f64>,
        out: &mut [f64],
    ) {
        slots.clear();
        slots.resize(self.ops.len() * count, 0.0);
        let w = width;
        for (s, op) in self.ops.iter().enumerate() {
            let base = s * count;
            match op {
                Op::Const(v) => slots[base..base + count].fill(*v),
                Op::Coord(k) => {
                    let mut v = j0[*k];
                    for p in 0..count {
                        slots[base + p] = v as f64;
                        v += dj[*k];
                    }
                }
                Op::Read { dep, comp } => {
                    for p in 0..count {
                        slots[base + p] = reads[(dep * count + p) * w + comp];
                    }
                }
                Op::Bnd => {
                    let mut j = j0.to_vec();
                    for p in 0..count {
                        slots[base + p] = boundary_value(&j);
                        for (jk, d) in j.iter_mut().zip(dj) {
                            *jk += d;
                        }
                    }
                }
                Op::Mod {
                    coeffs,
                    constant,
                    modulus,
                } => {
                    let mut v: i64 =
                        coeffs.iter().zip(j0).map(|(&c, &x)| c * x).sum::<i64>() + constant;
                    let step: i64 = coeffs.iter().zip(dj).map(|(&c, &x)| c * x).sum();
                    for p in 0..count {
                        slots[base + p] = v.rem_euclid(*modulus) as f64;
                        v += step;
                    }
                }
                Op::Neg(a) => {
                    let a = a * count;
                    for p in 0..count {
                        slots[base + p] = -slots[a + p];
                    }
                }
                Op::Add(a, b) => {
                    let (a, b) = (a * count, b * count);
                    for p in 0..count {
                        slots[base + p] = slots[a + p] + slots[b + p];
                    }
                }
                Op::Sub(a, b) => {
                    let (a, b) = (a * count, b * count);
                    for p in 0..count {
                        slots[base + p] = slots[a + p] - slots[b + p];
                    }
                }
                Op::Mul(a, b) => {
                    let (a, b) = (a * count, b * count);
                    for p in 0..count {
                        slots[base + p] = slots[a + p] * slots[b + p];
                    }
                }
                Op::Div(a, b) => {
                    let (a, b) = (a * count, b * count);
                    for p in 0..count {
                        slots[base + p] = slots[a + p] / slots[b + p];
                    }
                }
            }
        }
        for (c, &s) in self.outputs.iter().enumerate() {
            let sbase = s * count;
            for p in 0..count {
                out[p * w + c] = slots[sbase + p];
            }
        }
    }
}

/// Tape builder: post-order walk; `let` bindings compile once (their result
/// slot is shared by every reference, matching once-per-point semantics).
struct TapeBuilder {
    ops: Vec<Op>,
    let_slots: Vec<usize>,
}

impl TapeBuilder {
    fn push(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn emit(&mut self, e: &TkExpr) -> usize {
        match e {
            TkExpr::Num(v) => self.push(Op::Const(*v)),
            TkExpr::Coord(k) => self.push(Op::Coord(*k)),
            TkExpr::LetRef(i) => self.let_slots[*i],
            TkExpr::Read { dep, comp } => self.push(Op::Read {
                dep: *dep,
                comp: *comp,
            }),
            TkExpr::Bnd => self.push(Op::Bnd),
            TkExpr::Mod(aff, m) => self.push(Op::Mod {
                coeffs: aff.coeffs.clone(),
                constant: aff.constant,
                modulus: *m,
            }),
            TkExpr::Neg(a) => {
                let a = self.emit(a);
                self.push(Op::Neg(a))
            }
            TkExpr::Add(a, b) => {
                let (a, b) = (self.emit(a), self.emit(b));
                self.push(Op::Add(a, b))
            }
            TkExpr::Sub(a, b) => {
                let (a, b) = (self.emit(a), self.emit(b));
                self.push(Op::Sub(a, b))
            }
            TkExpr::Mul(a, b) => {
                let (a, b) = (self.emit(a), self.emit(b));
                self.push(Op::Mul(a, b))
            }
            TkExpr::Div(a, b) => {
                let (a, b) = (self.emit(a), self.emit(b));
                self.push(Op::Div(a, b))
            }
        }
    }
}

thread_local! {
    /// Reusable slot scratch shared by all tape kernels on a thread.
    static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// The generated kernel: body tape + init tape.
pub struct TkKernel {
    width: usize,
    body: Tape,
    init: Tape,
}

impl MultiKernel for TkKernel {
    fn width(&self) -> usize {
        self.width
    }

    fn compute(&self, j: &[i64], reads: &[f64], out: &mut [f64]) {
        SCRATCH.with(|s| {
            self.body
                .eval(j, reads, self.width, &mut s.borrow_mut(), out);
        });
    }

    fn initial(&self, j: &[i64], out: &mut [f64]) {
        SCRATCH.with(|s| {
            self.init.eval(j, &[], self.width, &mut s.borrow_mut(), out);
        });
    }

    fn compute_run(&self, j0: &[i64], dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        if count == 0 {
            return;
        }
        SCRATCH.with(|s| {
            self.body
                .eval_run(j0, dj, count, reads, self.width, &mut s.borrow_mut(), out);
        });
    }
}

/// Lower a parsed program into an [`Algorithm`] (applying the skew, if any).
///
/// All validation already happened in the parser, so this is pure
/// construction. The iteration-space constraints are emitted in
/// `Polyhedron::from_box` order (lower then upper, per dimension) so a DSL
/// kernel over a box is *structurally identical* — not merely equivalent —
/// to its hand-coded counterpart.
pub fn lower_kernel(p: &KernelProgram) -> Algorithm {
    let n = p.dim();
    let mut space = Polyhedron::universe(n);
    for (k, lp) in p.loops.iter().enumerate() {
        for lo in &lp.lowers {
            // j_k − lo(j) ≥ 0
            let mut coeffs: Vec<i64> = lo.coeffs.iter().map(|c| -c).collect();
            coeffs[k] += 1;
            space.add(Constraint::new(coeffs, -lo.constant));
        }
        for hi in &lp.uppers {
            // hi(j) − j_k ≥ 0
            let mut coeffs: Vec<i64> = hi.coeffs.clone();
            coeffs[k] -= 1;
            space.add(Constraint::new(coeffs, hi.constant));
        }
    }
    let mut deps = IMat::zeros(n, p.deps.len());
    for (q, d) in p.deps.iter().enumerate() {
        for k in 0..n {
            deps[(k, q)] = d[k];
        }
    }

    let mut body = TapeBuilder {
        ops: Vec::new(),
        let_slots: Vec::new(),
    };
    for (_, e) in &p.lets {
        let slot = body.emit(e);
        body.let_slots.push(slot);
    }
    let mut outputs = vec![0usize; p.width()];
    for s in &p.stmts {
        outputs[s.array] = body.emit(&s.rhs);
    }
    let body = Tape {
        ops: body.ops,
        outputs,
    };

    let mut init = TapeBuilder {
        ops: Vec::new(),
        let_slots: Vec::new(),
    };
    let init_outputs: Vec<usize> = p.arrays.iter().map(|a| init.emit(&a.init)).collect();
    let init = Tape {
        ops: init.ops,
        outputs: init_outputs,
    };

    let kernel = Arc::new(TkKernel {
        width: p.width(),
        body,
        init,
    });
    let alg = Algorithm::new_multi(p.name.clone(), LoopNest::new(space, deps), kernel);
    match &p.skew {
        Some(rows) => {
            let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            alg.skewed(&IMat::from_rows(&refs))
        }
        None => alg,
    }
}

/// Parse and lower in one step.
pub fn compile_kernel(source: &str) -> Result<Algorithm, TkError> {
    Ok(lower_kernel(&parse_kernel(source)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilecc_loopnest::kernels;

    /// The six-point SOR body written in the DSL, sized like `sor(3, 4, w)`.
    const SOR_TK: &str = "\
kernel sor
param M = 3
param N = 4
iter t = 1 to M
iter i = 1 to N
iter j = 1 to N
skew = [1,0,0; 1,1,0; 2,0,1]
deps = (0,1,0), (0,0,1), (1,-1,0), (1,0,-1), (1,0,0)
array A = bnd()
A[t,i,j] = 1.1/4*(A[t,i-1,j] + A[t,i,j-1] + A[t-1,i+1,j] + A[t-1,i,j+1]) + (1 - 1.1)*A[t-1,i,j]
";

    #[test]
    fn dsl_sor_is_bitwise_identical_to_hand_coded() {
        let dsl = compile_kernel(SOR_TK).unwrap();
        let hand = kernels::sor_skewed(3, 4, 1.1);
        assert_eq!(dsl.nest.deps(), hand.nest.deps(), "dependence columns");
        assert_eq!(dsl.nest.num_points(), hand.nest.num_points());
        let a = dsl.execute_sequential();
        let b = hand.execute_sequential();
        assert_eq!(a.diff(&b), None, "data spaces differ");
    }

    #[test]
    fn dsl_adi_paper_is_bitwise_identical_to_hand_coded() {
        let src = "\
kernel adi_paper
param T = 3
param N = 4
iter t = 1 to T
iter i = 1 to N
iter j = 1 to N
deps = (1,0,0), (1,1,0), (1,0,1)
array X = bnd()
array B = 2 + bnd()
let a = 0.1 + mod(13*i + 7*j, 17)*0.01
X[t,i,j] = X[t-1,i,j] + X[t-1,i,j-1]*a/B[t-1,i,j-1] - X[t-1,i-1,j]*a/B[t-1,i-1,j]
B[t,i,j] = B[t-1,i,j] - a*a/B[t-1,i,j-1] - a*a/B[t-1,i-1,j]
";
        let dsl = compile_kernel(src).unwrap();
        let hand = kernels::adi_paper(3, 4);
        assert_eq!(dsl.width(), 2);
        assert_eq!(dsl.nest.deps(), hand.nest.deps());
        let a = dsl.execute_sequential();
        let b = hand.execute_sequential();
        assert_eq!(a.diff(&b), None, "data spaces differ");
    }

    #[test]
    fn compute_run_matches_per_point_bitwise() {
        let p = parse_kernel(SOR_TK).unwrap();
        let alg = lower_kernel(&p);
        let k = &alg.kernel;
        let q = alg.nest.num_deps();
        let w = alg.width();
        // Deterministic pseudo-random reads.
        for count in [1usize, 5, 8, 23] {
            let reads: Vec<f64> = (0..q * count * w)
                .map(|i| ((i * 37 + 11) % 101) as f64 * 0.013 + 0.2)
                .collect();
            let j0 = [2i64, 5, 7];
            let dj = [0i64, 1, 2];
            let mut out = vec![0.0; count * w];
            k.compute_run(&j0, &dj, count, &reads, &mut out);
            let mut rbuf = vec![0.0; q * w];
            let mut expect = vec![0.0; w];
            for p in 0..count {
                let j: Vec<i64> = (0..3).map(|i| j0[i] + p as i64 * dj[i]).collect();
                for i in 0..q {
                    rbuf[i * w..(i + 1) * w]
                        .copy_from_slice(&reads[(i * count + p) * w..(i * count + p) * w + w]);
                }
                k.compute(&j, &rbuf, &mut expect);
                for c in 0..w {
                    assert_eq!(
                        out[p * w + c].to_bits(),
                        expect[c].to_bits(),
                        "count={count} p={p} c={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn triangular_bounds_lower() {
        let src = "\
kernel tri
param N = 6
iter t = 1 to N
iter i = t to min(N, t + 2)
array A = 1.0
A[t,i] = A[t-1,i] + 1
";
        let alg = compile_kernel(src).unwrap();
        let expected: usize = (1..=6).map(|t| ((t + 2).min(6) - t + 1) as usize).sum();
        assert_eq!(alg.nest.num_points(), expected);
    }
}
