//! Tokenizer for the `.tk` kernel DSL.
//!
//! Unlike the `.tcc` nest-file lexer, every token carries a full
//! line **and column** span so parse and lowering errors can point at the
//! offending character with a caret snippet (see [`crate::tk::TkError`]).

use crate::tk::error::TkError;
use std::fmt;

/// A lexical token of the kernel DSL.
#[derive(Clone, Debug, PartialEq)]
pub enum TkToken {
    Keyword(TkKeyword),
    /// Identifier (loop variable, parameter, array, or `let` name).
    Ident(String),
    Int(i64),
    Float(f64),
    Plus,
    Minus,
    Star,
    Slash,
    Equals,
    Comma,
    Semicolon,
    LParen,
    RParen,
    LBracket,
    RBracket,
    /// End of one logical line.
    Newline,
    Eof,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TkKeyword {
    Kernel,
    Param,
    Iter,
    To,
    Skew,
    Deps,
    Array,
    Let,
    Max,
    Min,
    /// `bnd` builtin: deterministic boundary hash of the original coordinates.
    Bnd,
    /// `mod` builtin: `rem_euclid` of an integer affine form.
    Mod,
}

impl fmt::Display for TkToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TkToken::Keyword(k) => write!(f, "{}", k.as_str()),
            TkToken::Ident(s) => write!(f, "{s}"),
            TkToken::Int(v) => write!(f, "{v}"),
            TkToken::Float(v) => write!(f, "{v}"),
            TkToken::Plus => write!(f, "+"),
            TkToken::Minus => write!(f, "-"),
            TkToken::Star => write!(f, "*"),
            TkToken::Slash => write!(f, "/"),
            TkToken::Equals => write!(f, "="),
            TkToken::Comma => write!(f, ","),
            TkToken::Semicolon => write!(f, ";"),
            TkToken::LParen => write!(f, "("),
            TkToken::RParen => write!(f, ")"),
            TkToken::LBracket => write!(f, "["),
            TkToken::RBracket => write!(f, "]"),
            TkToken::Newline => write!(f, "<newline>"),
            TkToken::Eof => write!(f, "<eof>"),
        }
    }
}

impl TkKeyword {
    pub fn as_str(&self) -> &'static str {
        match self {
            TkKeyword::Kernel => "kernel",
            TkKeyword::Param => "param",
            TkKeyword::Iter => "iter",
            TkKeyword::To => "to",
            TkKeyword::Skew => "skew",
            TkKeyword::Deps => "deps",
            TkKeyword::Array => "array",
            TkKeyword::Let => "let",
            TkKeyword::Max => "max",
            TkKeyword::Min => "min",
            TkKeyword::Bnd => "bnd",
            TkKeyword::Mod => "mod",
        }
    }
}

/// A token with its 1-based source position.
#[derive(Clone, Debug, PartialEq)]
pub struct TkSpanned {
    pub token: TkToken,
    pub line: usize,
    pub col: usize,
}

/// Tokenize the whole input. `#` starts a comment until end of line; blank
/// lines are collapsed; every non-empty line ends with a `Newline` token.
/// Columns are 1-based character (not byte) offsets.
pub fn tokenize(input: &str) -> Result<Vec<TkSpanned>, TkError> {
    let mut out = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let text = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        // Track the 1-based character column alongside byte indices.
        let cols: Vec<(usize, usize)> = text
            .char_indices()
            .enumerate()
            .map(|(ci, (bi, _))| (bi, ci + 1))
            .collect();
        let col_of = |byte: usize| -> usize {
            cols.iter()
                .find(|&&(b, _)| b == byte)
                .map_or(1, |&(_, c)| c)
        };
        let mut chars = text.char_indices().peekable();
        let mut emitted = false;
        while let Some(&(i, ch)) = chars.peek() {
            let col = col_of(i);
            match ch {
                c if c.is_whitespace() => {
                    chars.next();
                }
                c if c.is_ascii_digit() => {
                    let mut end = i;
                    let mut is_float = false;
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_ascii_digit() {
                            end = j;
                            chars.next();
                        } else if c2 == '.'
                            && text[j + 1..]
                                .chars()
                                .next()
                                .is_some_and(|n| n.is_ascii_digit())
                        {
                            is_float = true;
                            end = j;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let lit = &text[i..=end];
                    let token = if is_float {
                        TkToken::Float(lit.parse().map_err(|_| {
                            TkError::new(line, col, format!("invalid float literal `{lit}`"))
                        })?)
                    } else {
                        TkToken::Int(lit.parse().map_err(|_| {
                            TkError::new(line, col, format!("invalid integer literal `{lit}`"))
                        })?)
                    };
                    out.push(TkSpanned { token, line, col });
                    emitted = true;
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut end = i;
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_ascii_alphanumeric() || c2 == '_' {
                            end = j;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let word = &text[i..=end];
                    let token = match word {
                        "kernel" => TkToken::Keyword(TkKeyword::Kernel),
                        "param" => TkToken::Keyword(TkKeyword::Param),
                        "iter" => TkToken::Keyword(TkKeyword::Iter),
                        "to" => TkToken::Keyword(TkKeyword::To),
                        "skew" => TkToken::Keyword(TkKeyword::Skew),
                        "deps" => TkToken::Keyword(TkKeyword::Deps),
                        "array" => TkToken::Keyword(TkKeyword::Array),
                        "let" => TkToken::Keyword(TkKeyword::Let),
                        "max" => TkToken::Keyword(TkKeyword::Max),
                        "min" => TkToken::Keyword(TkKeyword::Min),
                        "bnd" => TkToken::Keyword(TkKeyword::Bnd),
                        "mod" => TkToken::Keyword(TkKeyword::Mod),
                        _ => TkToken::Ident(word.to_string()),
                    };
                    out.push(TkSpanned { token, line, col });
                    emitted = true;
                }
                _ => {
                    chars.next();
                    let token = match ch {
                        '+' => TkToken::Plus,
                        '-' => TkToken::Minus,
                        '*' => TkToken::Star,
                        '/' => TkToken::Slash,
                        '=' => TkToken::Equals,
                        ',' => TkToken::Comma,
                        ';' => TkToken::Semicolon,
                        '(' => TkToken::LParen,
                        ')' => TkToken::RParen,
                        '[' => TkToken::LBracket,
                        ']' => TkToken::RBracket,
                        other => {
                            return Err(TkError::new(
                                line,
                                col,
                                format!("unexpected character `{other}`"),
                            ))
                        }
                    };
                    out.push(TkSpanned { token, line, col });
                    emitted = true;
                }
            }
        }
        if emitted {
            let col = cols.last().map_or(1, |&(_, c)| c + 1);
            out.push(TkSpanned {
                token: TkToken::Newline,
                line,
                col,
            });
        }
    }
    let (line, col) = out.last().map_or((1, 1), |s| (s.line, s.col));
    out.push(TkSpanned {
        token: TkToken::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_carry_columns() {
        let t = tokenize("iter t = 1 to T").unwrap();
        assert_eq!(t[0].token, TkToken::Keyword(TkKeyword::Iter));
        assert_eq!(t[0].col, 1);
        assert_eq!(t[1].token, TkToken::Ident("t".into()));
        assert_eq!(t[1].col, 6);
        assert_eq!(t[3].token, TkToken::Int(1));
        assert_eq!(t[3].col, 10);
    }

    #[test]
    fn comments_blank_lines_and_keywords() {
        let t = tokenize("# header\n\nkernel demo # name\n").unwrap();
        assert_eq!(t[0].token, TkToken::Keyword(TkKeyword::Kernel));
        assert_eq!(t[0].line, 3);
        assert_eq!(t[1].token, TkToken::Ident("demo".into()));
    }

    #[test]
    fn bad_character_reports_line_and_col() {
        let e = tokenize("kernel k\nA[t] = @").unwrap_err();
        assert_eq!((e.line, e.col), (2, 8));
        assert!(e.message.contains('@'));
    }
}
