//! Typed AST of the `.tk` kernel DSL, plus the canonical pretty-printer.
//!
//! The AST is fully *resolved*: parameters are substituted, loop variables
//! and `let` names are indices, and every array read is a
//! `(dependence, component)` pair into the program's dependence-column list.
//! `parse(pretty(p)) == p` holds for every well-formed program — the
//! round-trip tests lock this.

use tilecc_loopnest::kernels::boundary_value;

/// Integer affine form over the loop variables:
/// `Σ coeffs[k]·j_k + constant`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffForm {
    pub coeffs: Vec<i64>,
    pub constant: i64,
}

impl AffForm {
    pub fn constant(dim: usize, c: i64) -> Self {
        AffForm {
            coeffs: vec![0; dim],
            constant: c,
        }
    }

    pub fn var(dim: usize, k: usize) -> Self {
        let mut coeffs = vec![0; dim];
        coeffs[k] = 1;
        AffForm {
            coeffs,
            constant: 0,
        }
    }

    pub fn add(&self, other: &AffForm) -> Self {
        AffForm {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: self.constant + other.constant,
        }
    }

    pub fn sub(&self, other: &AffForm) -> Self {
        AffForm {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a - b)
                .collect(),
            constant: self.constant - other.constant,
        }
    }

    pub fn scale(&self, s: i64) -> Self {
        AffForm {
            coeffs: self.coeffs.iter().map(|c| c * s).collect(),
            constant: self.constant * s,
        }
    }

    pub fn eval(&self, j: &[i64]) -> i64 {
        self.coeffs.iter().zip(j).map(|(&c, &v)| c * v).sum::<i64>() + self.constant
    }
}

/// One loop of the nest: `iter var = max(lowers) to min(uppers)`.
/// Bounds are affine in the *outer* loop variables only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TkLoop {
    pub var: String,
    pub lowers: Vec<AffForm>,
    pub uppers: Vec<AffForm>,
}

/// A written array: component `c` of every data-space cell, with a
/// deterministic initial (boundary) expression.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDecl {
    pub name: String,
    /// Boundary expression: no reads, no `let` references.
    pub init: TkExpr,
}

/// One update statement `A[j] = expr` (identity write reference).
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// Index into [`KernelProgram::arrays`] (the component written).
    pub array: usize,
    pub rhs: TkExpr,
}

/// Resolved expression. Array reads are `(dep, comp)` pairs: the value of
/// component `comp` at point `j − d_dep`.
#[derive(Clone, Debug, PartialEq)]
pub enum TkExpr {
    Num(f64),
    /// Loop variable `k`, evaluated in *original* coordinates as `f64`.
    Coord(usize),
    /// Reference to `lets[i]` (computed once per point).
    LetRef(usize),
    /// `arrays[comp]` read at offset `deps[dep]`.
    Read {
        dep: usize,
        comp: usize,
    },
    /// `bnd()`: the framework's deterministic boundary hash of `j`.
    Bnd,
    /// `mod(affine, m)`: `affine(j).rem_euclid(m)` as `f64`.
    Mod(AffForm, i64),
    Neg(Box<TkExpr>),
    Add(Box<TkExpr>, Box<TkExpr>),
    Sub(Box<TkExpr>, Box<TkExpr>),
    Mul(Box<TkExpr>, Box<TkExpr>),
    Div(Box<TkExpr>, Box<TkExpr>),
}

impl TkExpr {
    /// Tree-walking evaluation (reference semantics; the lowered kernel uses
    /// an instruction tape with the identical post-order operation order).
    pub fn eval(&self, j: &[i64], reads: &[f64], lets: &[f64], width: usize) -> f64 {
        match self {
            TkExpr::Num(v) => *v,
            TkExpr::Coord(k) => j[*k] as f64,
            TkExpr::LetRef(i) => lets[*i],
            TkExpr::Read { dep, comp } => reads[dep * width + comp],
            TkExpr::Bnd => boundary_value(j),
            TkExpr::Mod(aff, m) => aff.eval(j).rem_euclid(*m) as f64,
            TkExpr::Neg(a) => -a.eval(j, reads, lets, width),
            TkExpr::Add(a, b) => a.eval(j, reads, lets, width) + b.eval(j, reads, lets, width),
            TkExpr::Sub(a, b) => a.eval(j, reads, lets, width) - b.eval(j, reads, lets, width),
            TkExpr::Mul(a, b) => a.eval(j, reads, lets, width) * b.eval(j, reads, lets, width),
            TkExpr::Div(a, b) => a.eval(j, reads, lets, width) / b.eval(j, reads, lets, width),
        }
    }

    /// True if the expression contains an array read or a `let` reference
    /// (both are illegal inside `array … = init` expressions).
    pub fn has_reads_or_lets(&self) -> bool {
        match self {
            TkExpr::Read { .. } | TkExpr::LetRef(_) => true,
            TkExpr::Num(_) | TkExpr::Coord(_) | TkExpr::Bnd | TkExpr::Mod(..) => false,
            TkExpr::Neg(a) => a.has_reads_or_lets(),
            TkExpr::Add(a, b) | TkExpr::Sub(a, b) | TkExpr::Mul(a, b) | TkExpr::Div(a, b) => {
                a.has_reads_or_lets() || b.has_reads_or_lets()
            }
        }
    }
}

/// A complete, resolved kernel program.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelProgram {
    pub name: String,
    pub params: Vec<(String, i64)>,
    pub loops: Vec<TkLoop>,
    /// Optional unimodular skewing matrix (row-major).
    pub skew: Option<Vec<Vec<i64>>>,
    /// True iff the source carried an explicit `deps = …` line pinning the
    /// dependence-column order (otherwise it is first-occurrence order).
    pub deps_declared: bool,
    /// Dependence columns in original coordinates, all lexicographically
    /// positive.
    pub deps: Vec<Vec<i64>>,
    pub arrays: Vec<ArrayDecl>,
    pub lets: Vec<(String, TkExpr)>,
    /// Exactly one statement per array, in source order.
    pub stmts: Vec<Stmt>,
}

impl KernelProgram {
    pub fn dim(&self) -> usize {
        self.loops.len()
    }

    pub fn width(&self) -> usize {
        self.arrays.len()
    }

    /// Canonical source form; `parse(pretty(p)) == p`.
    pub fn pretty(&self) -> String {
        let mut out = format!("kernel {}\n", self.name);
        for (name, v) in &self.params {
            out.push_str(&format!("param {name} = {v}\n"));
        }
        for lp in &self.loops {
            out.push_str(&format!(
                "iter {} = {} to {}\n",
                lp.var,
                self.bound(&lp.lowers, "max"),
                self.bound(&lp.uppers, "min"),
            ));
        }
        if let Some(rows) = &self.skew {
            let body = rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
                .join("; ");
            out.push_str(&format!("skew = [{body}]\n"));
        }
        if self.deps_declared {
            let body = self
                .deps
                .iter()
                .map(|d| {
                    format!(
                        "({})",
                        d.iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("deps = {body}\n"));
        }
        for a in &self.arrays {
            out.push_str(&format!("array {} = {}\n", a.name, self.expr(&a.init, 1)));
        }
        for (name, e) in &self.lets {
            out.push_str(&format!("let {name} = {}\n", self.expr(e, 1)));
        }
        for s in &self.stmts {
            let idx = self
                .loops
                .iter()
                .map(|l| l.var.clone())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{}[{idx}] = {}\n",
                self.arrays[s.array].name,
                self.expr(&s.rhs, 1)
            ));
        }
        out
    }

    fn bound(&self, forms: &[AffForm], combiner: &str) -> String {
        if forms.len() == 1 {
            self.aff(&forms[0])
        } else {
            format!(
                "{combiner}({})",
                forms
                    .iter()
                    .map(|f| self.aff(f))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    }

    /// Canonical affine rendering: terms in loop order, constant last.
    fn aff(&self, f: &AffForm) -> String {
        let mut out = String::new();
        for (k, &c) in f.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let var = &self.loops[k].var;
            if out.is_empty() {
                match c {
                    1 => out.push_str(var),
                    -1 => out.push_str(&format!("-{var}")),
                    _ => out.push_str(&format!("{c}*{var}")),
                }
            } else if c > 0 {
                if c == 1 {
                    out.push_str(&format!(" + {var}"));
                } else {
                    out.push_str(&format!(" + {c}*{var}"));
                }
            } else if c == -1 {
                out.push_str(&format!(" - {var}"));
            } else {
                out.push_str(&format!(" - {}*{var}", -c));
            }
        }
        if out.is_empty() {
            out = f.constant.to_string();
        } else if f.constant > 0 {
            out.push_str(&format!(" + {}", f.constant));
        } else if f.constant < 0 {
            out.push_str(&format!(" - {}", -f.constant));
        }
        out
    }

    /// Precedence-aware expression rendering. `min_prec`: 1 = additive,
    /// 2 = multiplicative, 3 = unary/atom.
    fn expr(&self, e: &TkExpr, min_prec: u8) -> String {
        let (s, prec) = match e {
            TkExpr::Num(v) => (format!("{v}"), 4),
            TkExpr::Coord(k) => (self.loops[*k].var.clone(), 4),
            TkExpr::LetRef(i) => (self.lets[*i].0.clone(), 4),
            TkExpr::Read { dep, comp } => {
                let d = &self.deps[*dep];
                let idx = (0..self.dim())
                    .map(|k| {
                        let var = &self.loops[k].var;
                        let off = -d[k];
                        match off.cmp(&0) {
                            std::cmp::Ordering::Equal => var.clone(),
                            std::cmp::Ordering::Greater => format!("{var}+{off}"),
                            std::cmp::Ordering::Less => format!("{var}-{}", -off),
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                (format!("{}[{idx}]", self.arrays[*comp].name), 4)
            }
            TkExpr::Bnd => ("bnd()".to_string(), 4),
            TkExpr::Mod(aff, m) => (format!("mod({}, {m})", self.aff(aff)), 4),
            TkExpr::Neg(a) => (format!("-{}", self.expr(a, 3)), 3),
            TkExpr::Add(a, b) => (format!("{} + {}", self.expr(a, 1), self.expr(b, 2)), 1),
            TkExpr::Sub(a, b) => (format!("{} - {}", self.expr(a, 1), self.expr(b, 2)), 1),
            TkExpr::Mul(a, b) => (format!("{}*{}", self.expr(a, 2), self.expr(b, 3)), 2),
            TkExpr::Div(a, b) => (format!("{}/{}", self.expr(a, 2), self.expr(b, 3)), 2),
        };
        if prec < min_prec {
            format!("({s})")
        } else {
            s
        }
    }
}
