//! Source-located errors for the `.tk` kernel DSL.
//!
//! Every parse and lowering failure carries a 1-based `line:col` position;
//! [`TkError::render`] turns it into a compiler-style caret snippet naming
//! the file, so CLI users see exactly which character broke.

use std::fmt;

/// A kernel-DSL error anchored to a source position.
#[derive(Clone, Debug, PartialEq)]
pub struct TkError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl TkError {
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        TkError {
            line,
            col,
            message: message.into(),
        }
    }

    /// Render as `file:line:col: message` plus a caret snippet:
    ///
    /// ```text
    /// demo.tk:3:12: non-uniform access: index 2 of `A` must be `i + constant`
    ///   3 | A[t,i,j] = A[t-1,2*i,j]
    ///     |            ^
    /// ```
    pub fn render(&self, file: &str, source: &str) -> String {
        let mut out = format!("{file}:{}:{}: {}", self.line, self.col, self.message);
        if let Some(text) = source.lines().nth(self.line.saturating_sub(1)) {
            let num = self.line.to_string();
            let pad = " ".repeat(num.len());
            let offset = " ".repeat(self.col.saturating_sub(1));
            out.push_str(&format!("\n  {num} | {text}\n  {pad} | {offset}^"));
        }
        out
    }
}

impl fmt::Display for TkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for TkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_places_caret_under_column() {
        let e = TkError::new(2, 8, "unexpected character `@`");
        let src = "kernel k\nA[t] = @";
        let r = e.render("demo.tk", src);
        assert!(r.starts_with("demo.tk:2:8: unexpected character `@`"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1], "  2 | A[t] = @");
        assert_eq!(lines[2], "    |        ^");
    }

    #[test]
    fn render_without_matching_line_degrades_gracefully() {
        let e = TkError::new(99, 1, "boom");
        assert_eq!(e.render("f.tk", "one line"), "f.tk:99:1: boom");
    }
}
